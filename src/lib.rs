//! # byzreg
//!
//! A Rust reproduction of **Hu & Toueg, "You can lie but not deny: SWMR
//! registers with signature properties in systems with Byzantine
//! processes"** (PODC 2025, arXiv:2504.09805).
//!
//! The paper shows how to build three kinds of single-writer multi-reader
//! registers that emulate unforgeable digital signatures **without any
//! cryptography**, in asynchronous shared memory with `n > 3f` processes of
//! which `f` may be Byzantine — and proves `n > 3f` optimal.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`runtime`] — shared-memory substrate: registers with owner-only write
//!   ports, deterministic/chaotic schedulers, Byzantine fault injection,
//!   history recording;
//! * [`core`] — Algorithms 1–3 (verifiable, authenticated, sticky
//!   registers) behind the generic `SignatureRegister` trait layer
//!   ([`core::api`]), test-or-set (§10), canned attacks;
//! * [`spec`] — sequential specs, linearizability and Byzantine
//!   linearizability checkers, property monitors for every Observation;
//! * [`crypto`] — the idealized-signature baseline the paper is positioned
//!   against;
//! * [`mp`] — a message-passing SWMR emulation (`n > 3f`, signature-free)
//!   over which the core algorithms run unchanged;
//! * [`apps`] — signature-free applications: non-equivocating broadcast,
//!   reliable broadcast, atomic snapshot, asset transfer;
//! * [`store`] — a sharded keyed store of register instances (any family,
//!   any backend) with batched verification and a seeded workload driver.
//!
//! # Quick start
//!
//! ```
//! use byzreg::core::VerifiableRegister;
//! use byzreg::runtime::{ProcessId, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = System::builder(4).build(); // n = 4 processes, f = 1
//! let reg = VerifiableRegister::install(&system, 0u64);
//!
//! let mut writer = reg.writer();
//! let mut reader = reg.reader(ProcessId::new(2));
//!
//! writer.write(7)?;
//! writer.sign(&7)?;
//! assert!(reader.verify(&7)?); // "signed" — and deniable never again
//! system.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! # Generic over register families
//!
//! The same workload, written once against the trait layer and usable
//! with any of the three families:
//!
//! ```
//! use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
//! use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
//! use byzreg::runtime::{ProcessId, Result, System};
//!
//! fn workload<R: SignatureRegister<u64>>(system: &System) -> Result<bool> {
//!     let reg = R::install_default(system, 0);
//!     let mut writer = reg.signer();
//!     let mut reader = reg.verifier(ProcessId::new(2));
//!     writer.write_value(7)?;
//!     writer.sign_value(&7)?;
//!     reader.verify_value(&7)
//! }
//!
//! # fn main() -> Result<()> {
//! let system = System::builder(4).build();
//! assert!(workload::<VerifiableRegister<u64>>(&system)?);
//! assert!(workload::<AuthenticatedRegister<u64>>(&system)?);
//! assert!(workload::<StickyRegister<u64>>(&system)?);
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use byzreg_apps as apps;
pub use byzreg_core as core;
pub use byzreg_crypto as crypto;
pub use byzreg_mp as mp;
pub use byzreg_runtime as runtime;
pub use byzreg_spec as spec;
pub use byzreg_store as store;
