//! Store quickstart: from one register to a keyed store of many, with
//! batched verification and a measured mixed workload.
//!
//! ```sh
//! cargo run --release --example store_quickstart
//! ```

use byzreg::core::api::SignatureRegister;
use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::runtime::{LocalFactory, ProcessId, System};
use byzreg::store::store::{ByzStore, StoreConfig};
use byzreg::store::workload::{build_system, run_workload, WorkloadConfig};

fn main() -> byzreg::runtime::Result<()> {
    // -- the store surface --------------------------------------------------
    // A sharded map from keys to register instances, created on first
    // touch. Every key is its own SWMR register of the chosen family.
    let system = System::builder(4).build();
    let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
        ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 8 });

    store.write(7, 700)?;
    store.write(9, 900)?;
    let p2 = ProcessId::new(2);
    println!("store: {} keys over {} shards", store.len(), store.shard_count());
    println!("read(7)  -> {:?}", store.read(p2, &7)?);

    // The batched path: checks are grouped by key and deduped, so the hot
    // key 7 pays one quorum round sequence for all three of its checks.
    let checks = [(7, 700), (9, 900), (7, 123), (7, 700), (11, 42)];
    let got = store.verify_many(p2, &checks)?;
    println!("verify_many({checks:?})\n         -> {got:?}");
    system.shutdown();

    // -- the workload driver -------------------------------------------------
    // A seeded mixed workload: 1024-key space, 8 shards, 40/30/30
    // read/write/verify, Zipf-like skew, two writer + two reader threads,
    // one declared-Byzantine process out of five.
    let cfg = WorkloadConfig::smoke();
    println!(
        "\nworkload: {} ops, {} keys, skew {}, n={} (byzantine={})",
        cfg.ops, cfg.keys, cfg.skew, cfg.n, cfg.byzantine
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>6}",
        "family", "ops/sec", "verify p50", "verify p99", "keys"
    );
    report_family::<VerifiableRegister<u64>>(&cfg);
    report_family::<AuthenticatedRegister<u64>>(&cfg);
    report_family::<StickyRegister<u64>>(&cfg);
    Ok(())
}

fn report_family<R: SignatureRegister<u64>>(cfg: &WorkloadConfig) {
    let system = build_system(cfg);
    let report = run_workload::<R, _>(&system, LocalFactory, "shm", cfg).expect("workload");
    system.shutdown();
    println!(
        "{:<14} {:>10.0} {:>9.2} ms {:>9.2} ms {:>6}",
        report.family,
        report.ops_per_sec,
        report.verify.p50_ns as f64 / 1e6,
        report.verify.p99_ns as f64 / 1e6,
        report.distinct_keys,
    );
}
