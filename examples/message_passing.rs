//! The message-passing corollary, live (§1, §11).
//!
//! SWMR registers can be emulated — without signatures — in Byzantine
//! asynchronous message-passing systems with `n > 3f`, so the paper's
//! registers exist there too. This example first exercises the emulated
//! base register under a Byzantine message flooder, then runs Algorithm 1
//! *unchanged* on top of the emulation.
//!
//! ```sh
//! cargo run --example message_passing
//! ```

use byzreg::core::VerifiableRegister;
use byzreg::mp::{MpConfig, MpFactory, MpRegister, Msg};
use byzreg::runtime::{ProcessId, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== layer 1: a signature-free SWMR register over messages ==");
    let mut config = MpConfig::new(4);
    config.byzantine = vec![ProcessId::new(4)];
    let register = MpRegister::spawn(&config, 0u64);

    // The Byzantine node floods fabricated protocol messages.
    let byz = register.byzantine_endpoint(ProcessId::new(4));
    for i in 0..100 {
        byz.broadcast(Msg::Echo { sn: 1_000 + i, v: 666 });
        byz.broadcast(Msg::Valid { sn: 2_000 + i, v: 667 });
        byz.broadcast(Msg::State { rid: i % 4, ts: 99_999, v: 668 });
    }

    let writer = register.client(ProcessId::new(1));
    let reader = register.client(ProcessId::new(2));
    writer.write(7);
    let (ts, v) = reader.read();
    println!("after write(7) under flooding: read -> (ts = {ts}, v = {v})");
    assert_eq!((ts, v), (1, 7), "fabricated values must never surface");
    register.shutdown();

    println!("\n== layer 2: Algorithm 1 running unchanged over messages ==");
    let system = System::builder(4).build();
    let factory = MpFactory::default();
    let verifiable = VerifiableRegister::install_with(&system, 0u64, &factory);
    println!("installed one verifiable register = {} emulated MP registers", factory.spawned());

    let mut w = verifiable.writer();
    let mut r = verifiable.reader(ProcessId::new(2));
    w.write(42)?;
    w.sign(&42)?;
    println!("verify(42) over the network -> {}", r.verify(&42)?);
    println!("verify(41) over the network -> {}", r.verify(&41)?);
    assert!(r.verify(&42)?);
    assert!(!r.verify(&41)?);

    println!("\nevery shared-memory step became a quorum round trip — and the");
    println!("signature properties carried over, exactly as §1 promises.");
    system.shutdown();
    Ok(())
}
