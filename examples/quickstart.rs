//! Quickstart: the three register types in two minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A system of n = 4 processes, of which f = 1 may be Byzantine.
    // (4 > 3·1, the bound Theorem 31 proves optimal.)
    let system = System::builder(4).build();
    println!("system: n = {}, f = {}", system.env().n(), system.env().f());

    // --- Verifiable register (Algorithm 1) --------------------------------
    // Write/Read like a normal register, plus Sign/Verify that emulate
    // unforgeable signatures without any cryptography.
    let verifiable = VerifiableRegister::install(&system, 0u64);
    let mut writer = verifiable.writer();
    let mut reader = verifiable.reader(ProcessId::new(2));

    writer.write(7)?;
    println!("verifiable: read  -> {}", reader.read()?);
    println!("verifiable: verify(7) before Sign -> {}", reader.verify(&7)?);
    writer.sign(&7)?;
    println!("verifiable: verify(7) after  Sign -> {}", reader.verify(&7)?);

    // --- Authenticated register (Algorithm 2) -----------------------------
    // Every write is atomically "signed": no separate Sign operation.
    let authenticated = AuthenticatedRegister::install(&system, 0u64);
    let mut writer = authenticated.writer();
    let mut reader = authenticated.reader(ProcessId::new(3));

    writer.write(42)?;
    println!("authenticated: read -> {}", reader.read()?);
    println!("authenticated: verify(42) -> {}", reader.verify(&42)?);
    println!("authenticated: verify(41) -> {}", reader.verify(&41)?);

    // --- Sticky register (Algorithm 3) -------------------------------------
    // The first written value can never be changed — even by a Byzantine
    // writer. Ideal for one-shot proposals (non-equivocation).
    let sticky = StickyRegister::install(&system);
    let mut writer = sticky.writer();
    let mut reader = sticky.reader(ProcessId::new(4));

    println!("sticky: read before write -> {:?}", reader.read()?);
    writer.write("proposal-A")?;
    writer.write("proposal-B")?; // too late: no effect
    println!("sticky: read after two writes -> {:?}", reader.read()?);

    system.shutdown();
    Ok(())
}
