//! Quickstart: the three register types in two minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, System};

/// One workload, any register family: write a value, "sign" it (a no-op
/// for the implicitly-signed families), and verify it from a reader.
/// This is the `SignatureRegister` trait layer — harnesses, benches, and
/// tests iterate over all three families through it.
fn demo<R: SignatureRegister<u64>>(system: &System) -> Result<(), Box<dyn std::error::Error>> {
    let reg = R::install_default(system, 0);
    let mut writer = reg.signer();
    let mut reader = reg.verifier(ProcessId::new(2));

    writer.write_value(7)?;
    writer.sign_value(&7)?;
    println!(
        "{:>13}: read -> {:?}, verify(7) -> {}, verify(8) -> {}",
        R::FAMILY.label(),
        reader.read_value()?,
        reader.verify_value(&7)?,
        reader.verify_value(&8)?,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A system of n = 4 processes, of which f = 1 may be Byzantine.
    // (4 > 3·1, the bound Theorem 31 proves optimal.)
    let system = System::builder(4).build();
    println!("system: n = {}, f = {}\n", system.env().n(), system.env().f());

    println!("-- the trait layer: one workload, three families ------------------");
    demo::<VerifiableRegister<u64>>(&system)?;
    demo::<AuthenticatedRegister<u64>>(&system)?;
    demo::<StickyRegister<u64>>(&system)?;

    // What makes the families different is *when* a value becomes
    // verifiable; the concrete APIs expose exactly that.
    println!("\n-- family-specific surfaces ---------------------------------------");

    // Verifiable (Algorithm 1): Sign is a separate, explicit operation.
    let verifiable = VerifiableRegister::install(&system, 0u64);
    let mut writer = verifiable.writer();
    let mut reader = verifiable.reader(ProcessId::new(2));
    writer.write(7)?;
    println!("verifiable: verify(7) before Sign -> {}", reader.verify(&7)?);
    writer.sign(&7)?;
    println!("verifiable: verify(7) after  Sign -> {}", reader.verify(&7)?);

    // Authenticated (Algorithm 2): every write is atomically signed.
    let authenticated = AuthenticatedRegister::install(&system, 0u64);
    let mut writer = authenticated.writer();
    let mut reader = authenticated.reader(ProcessId::new(3));
    writer.write(42)?;
    println!("authenticated: read (verified) -> {}", reader.read()?);

    // Sticky (Algorithm 3): the first written value never changes — even
    // if the writer is Byzantine. Ideal for one-shot proposals.
    let sticky = StickyRegister::install(&system);
    let mut writer = sticky.writer();
    let mut reader = sticky.reader(ProcessId::new(4));
    writer.write("proposal-A")?;
    writer.write("proposal-B")?; // too late: no effect
    println!("sticky: read after two writes -> {:?}", reader.read()?);

    system.shutdown();
    Ok(())
}
