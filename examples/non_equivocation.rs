//! Non-equivocating proposals for a consensus-style protocol (§1, §8).
//!
//! Each process must propose a *unique* value. With plain registers a
//! Byzantine process could show different proposals to different peers
//! ("equivocation"); broadcasting through sticky registers makes that
//! impossible — all correct processes agree on what each process proposed.
//!
//! ```sh
//! cargo run --example non_equivocation
//! ```

use byzreg::apps::NonEquivocatingBroadcast;
use byzreg::runtime::{ProcessId, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let equivocator = ProcessId::new(1);
    let system = System::builder(4).byzantine(equivocator).build();
    let broadcast = NonEquivocatingBroadcast::<&str>::install(&system);

    // The Byzantine process tries to propose different values to different
    // peers by flapping its registers as fast as it can.
    let ports = broadcast.attack_ports(equivocator);
    let shared = ports.shared.clone();
    let mut i = 0u64;
    system.spawn_byzantine(equivocator, move || {
        i += 1;
        let value = if i % 2 == 0 { "ATTACK-AT-DAWN" } else { "RETREAT" };
        ports.echo.write(Some(value));
        for (k, rep) in ports.replies.iter().enumerate() {
            let round = shared.askers[k].read();
            rep.write((Some(if i % 3 == 0 { "ATTACK-AT-DAWN" } else { "RETREAT" }), round));
        }
        i < 200_000
    });

    // The three correct processes propose and then exchange proposals.
    let mut endpoints: Vec<_> = (2..=4).map(|k| broadcast.endpoint(ProcessId::new(k))).collect();
    let proposals = ["hold", "advance", "regroup"];
    for (ep, proposal) in endpoints.iter_mut().zip(proposals) {
        ep.broadcast(proposal)?;
    }

    println!("correct proposals, as seen by every correct process:");
    for ep in endpoints.iter_mut() {
        for s in 2..=4 {
            let sender = ProcessId::new(s);
            if sender == ep.pid() {
                continue;
            }
            let got = ep.deliver_from(sender)?;
            println!("  {} sees {} -> {:?}", ep.pid(), sender, got);
            assert_eq!(got, Some(proposals[s - 2]));
        }
    }

    println!("\nthe equivocator's slot, polled repeatedly by everyone:");
    let mut seen = Vec::new();
    for ep in endpoints.iter_mut() {
        for _ in 0..3 {
            if let Some(m) = ep.deliver_from(equivocator)? {
                println!("  {} sees {} -> {:?}", ep.pid(), equivocator, m);
                seen.push(m);
            }
        }
    }
    seen.dedup();
    assert!(seen.len() <= 1, "equivocation observed!");
    println!(
        "\nno equivocation possible: every correct process sees {} from {equivocator}.",
        if seen.is_empty() { "nothing (yet)".to_string() } else { format!("only {:?}", seen[0]) }
    );

    system.shutdown();
    Ok(())
}
