//! A consensusless bank: asset transfer over signature-free reliable
//! broadcast (the Cohen–Keidar object, translated per §1–§2).
//!
//! ```sh
//! cargo run --example asset_transfer
//! ```

use byzreg::apps::AssetTransfer;
use byzreg::runtime::{ProcessId, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::builder(4).build();
    let bank = AssetTransfer::install(&system, 100, 8);

    let mut alice = bank.wallet(ProcessId::new(1));
    let mut bob = bank.wallet(ProcessId::new(2));
    let mut carol = bank.wallet(ProcessId::new(3));

    println!("everyone starts with 100 units");

    assert!(alice.transfer(ProcessId::new(2), 30)?);
    println!("alice -> bob: 30");
    assert!(bob.transfer(ProcessId::new(3), 120)?);
    println!("bob -> carol: 120 (valid only thanks to alice's incoming 30)");
    assert!(!carol.transfer(ProcessId::new(1), 10_000)?);
    println!("carol -> alice: 10000 rejected (insufficient funds)");

    println!("\nledger as seen by each wallet:");
    for (name, wallet) in [("alice", &mut alice), ("bob", &mut bob), ("carol", &mut carol)] {
        let balances: Vec<u64> = (1..=4).map(|a| wallet.balance(a)).collect::<Result<_, _>>()?;
        println!("  {name:>5}: {balances:?} (total {})", balances.iter().sum::<u64>());
        assert_eq!(balances.iter().sum::<u64>(), 400, "money is conserved");
    }

    println!("\nall observers agree without consensus — single-owner accounts");
    println!("plus non-equivocating broadcast are enough (Cohen & Keidar [5]).");

    system.shutdown();
    Ok(())
}
