//! The title scenario: **you can lie but not deny**.
//!
//! A Byzantine writer writes and "signs" a value, waits until a correct
//! reader has verified it, then erases everything and denies ever having
//! written it. The witness mechanism of Algorithm 1 makes the denial fail:
//! every correct reader keeps verifying the value forever.
//!
//! ```sh
//! cargo run --example lie_but_not_deny
//! ```

use std::collections::BTreeSet;

use byzreg::core::VerifiableRegister;
use byzreg::runtime::{ProcessId, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let liar = ProcessId::new(1);
    let system = System::builder(4).byzantine(liar).build();
    let register = VerifiableRegister::install(&system, 0u64);
    let ports = register.attack_ports(liar);

    println!("== phase 1: the Byzantine writer behaves (write + sign 7) ==");
    ports.r_star.as_ref().expect("writer ports").write(7);
    ports.witness.update(|set| {
        set.insert(7);
    });

    let mut alice = register.reader(ProcessId::new(2));
    while !alice.verify(&7)? {
        // Wait for the helpers to spread the witness information.
    }
    println!("alice: verify(7) -> true     (the signature checked out)");

    println!("== phase 2: the writer erases everything and lies ==");
    ports.witness.write(BTreeSet::new()); // "I never signed 7!"
    ports.r_star.as_ref().expect("writer ports").write(666); // "I wrote 666!"

    println!("writer registers now: R* = 666, R1 = {{}} — the lie is in place");

    println!("== phase 3: the denial fails ==");
    println!("alice: verify(7) -> {}     (her witnesses persist)", alice.verify(&7)?);
    let mut bob = register.reader(ProcessId::new(3));
    println!("bob:   verify(7) -> {}     (relay: he can check independently)", bob.verify(&7)?);
    let mut carol = register.reader(ProcessId::new(4));
    println!("carol: verify(7) -> {}     (no reader can be fooled)", carol.verify(&7)?);

    assert!(alice.verify(&7)? && bob.verify(&7)? && carol.verify(&7)?);
    println!("\nthe writer lied (R* = 666) — but it could not deny having signed 7.");

    system.shutdown();
    Ok(())
}
