//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] with
//! [`Rng::random_range`]. The generator is xorshift64* over a
//! splitmix64-expanded seed — statistically fine for scheduling
//! decisions, not for cryptography.

/// Types that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Random-value generation.
pub trait Rng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The standard deterministic generator (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            // Expand the seed so 0 and small seeds produce good streams.
            let state = splitmix64(&mut s) | 1;
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna): passes BigCrush's small-state tier.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values should appear");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
