//! Offline stand-in for the `proptest` crate.
//!
//! Provides the macro-and-strategy surface this workspace uses:
//! `proptest!` with `#![proptest_config(..)]`, `prop_assert!`,
//! `prop_oneof!`, `Just`, `prop_map`, integer-range strategies, and
//! `collection::vec`. Cases are generated from a deterministic
//! per-test seed (derived from the test name), so failures are
//! reproducible; there is **no shrinking** — a failing case is
//! reported as-is.

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// The deterministic generator threaded through strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream depends only on `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 pseudo-random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of random values (object-safe; no shrinking).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-valued strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current case (see `proptest!`) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "prop_assert_eq failed: {:?} != {:?}", a, b);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest {} case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Step {
        A,
        B(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..4, y in 10u64..20) {
            prop_assert!(x < 4);
            prop_assert!((10..20).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_and_oneof_compose(
            steps in prop::collection::vec(
                prop_oneof![Just(Step::A), (0u8..3).prop_map(Step::B)],
                1..5,
            ),
        ) {
            prop_assert!(!steps.is_empty() && steps.len() < 5, "{steps:?}");
            for s in &steps {
                match s {
                    Step::A => {}
                    Step::B(v) => prop_assert!(*v < 3),
                }
            }
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
