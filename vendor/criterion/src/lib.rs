//! Offline stand-in for the `criterion` crate.
//!
//! Provides the structural API (`Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `criterion_group!`/`criterion_main!`)
//! with a deliberately simple measurement loop: each benchmark runs a
//! short warm-up followed by `sample_size` timed iterations and reports
//! the mean. No statistics, plots, or saved baselines — the goal is
//! that `cargo bench` compiles and produces readable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per measured routine call.
    PerIteration,
    /// Batched small inputs (treated as per-iteration here).
    SmallInput,
    /// Batched large inputs (treated as per-iteration here).
    LargeInput,
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, 10, &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in ignores target times.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.iters == 0 {
        println!("{label:<52} (no iterations)");
    } else {
        let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
        println!("{label:<52} {:>14} /iter ({} iters)", fmt_ns(mean_ns), b.iters);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The per-benchmark measurement handle.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.sample_size as u64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); ignored here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_accumulates_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut count = 0u32;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count >= 5, "warm-up + samples must run");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(4);
        let mut setups = 0u32;
        group.bench_with_input(BenchmarkId::new("b", 1), &1, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| {},
                BatchSize::PerIteration,
            );
        });
        group.finish();
        assert_eq!(setups, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("write", 7).id, "write/7");
    }
}
