//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the parking_lot 0.12 API used by this
//! workspace on top of `std::sync`: locks return guards directly (no
//! `Result`), and poisoning is transparently ignored — a panic while a
//! lock is held leaves the protected data accessible, exactly like the
//! real parking_lot.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses; reports which.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let timed_out = cv.wait_for(&mut g, Duration::from_secs(5)).timed_out();
            assert!(!timed_out || *g, "waiter starved");
        }
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poisoning must be transparent");
    }
}
