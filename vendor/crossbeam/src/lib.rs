//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, layered over
//! `std::sync::mpsc`. Semantic deviation from real crossbeam:
//! [`channel::bounded`] channels are actually unbounded (the workspace
//! only uses `bounded(1)` for single-reply rendezvous, where capacity
//! is irrelevant), and receivers are not clonable (MPSC, not MPMC —
//! again sufficient for this workspace).

/// Multi-producer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    /// The sending half of a channel. Clonable.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks for the next message up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Creates a "bounded" channel (capacity is advisory here; see the
    /// crate docs).
    #[must_use]
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }

        #[test]
        fn try_recv_is_nonblocking() {
            let (tx, rx) = bounded(1);
            assert!(rx.try_recv().is_err());
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 9);
        }
    }
}
