//! Property-based tests: randomized operation schedules, seeds, and
//! adversary choices, with the monitors and checkers as oracles.

use proptest::prelude::*;

use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg::core::{attacks, AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::augment::{check_byzantine_sticky, check_byzantine_verifiable};
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::{
    authenticated_monitor, sticky_uniqueness, verifiable_monitor, verifiable_relay,
};
use byzreg::spec::registers::{AuthenticatedSpec, VerifiableSpec};

/// One randomized reader schedule: which value to verify/read at each step.
#[derive(Clone, Debug)]
enum ReaderStep {
    Read,
    Verify(u8),
}

fn reader_steps() -> impl Strategy<Value = Vec<ReaderStep>> {
    prop::collection::vec(
        prop_oneof![Just(ReaderStep::Read), (0u8..4).prop_map(ReaderStep::Verify)],
        1..5,
    )
}

/// One boundary-resilience workload through the trait layer: random writes
/// (each signed), then the signature contract — the first written value
/// verifies (it is signed for Algorithms 1–2 and the stuck value for
/// Algorithm 3), a never-written probe does not, and the batched
/// `verify_many` agrees with the per-value loop. Exercises the generic
/// `quorum_rounds` engine at the given `(n, f)`.
fn boundary_workload<R: SignatureRegister<u8>>(n: usize, f: usize, seed: u64, writes: &[u8]) {
    let system = System::builder(n).resilience(f).scheduling(Scheduling::Chaotic(seed)).build();
    let reg = R::install_default(&system, 200);
    let mut w = reg.signer();
    let mut r = reg.verifier(ProcessId::new(2));
    for v in writes {
        w.write_value(*v).unwrap();
        assert!(w.sign_value(v).unwrap(), "{}: signing a written value", R::FAMILY);
    }
    let target = writes[0];
    assert!(
        r.verify_value(&target).unwrap(),
        "{} at n={n}, f={f}: the first signed value must verify",
        R::FAMILY
    );
    assert!(
        !r.verify_value(&99).unwrap(),
        "{} at n={n}, f={f}: a never-written value must not verify",
        R::FAMILY
    );
    let batched = r.verify_many(&[target, 99]).unwrap();
    assert_eq!(batched, vec![true, false], "{} at n={n}, f={f}: batched != loop", R::FAMILY);
    system.shutdown();
}

fn boundary_all_families(n: usize, f: usize, seed: u64, writes: &[u8]) {
    boundary_workload::<VerifiableRegister<u8>>(n, f, seed, writes);
    boundary_workload::<AuthenticatedRegister<u8>>(n, f, seed, writes);
    boundary_workload::<StickyRegister<u8>>(n, f, seed, writes);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// `f = 0` boundary: quorums degenerate to unanimity (`n − f = n`) and
    /// a single dissent (`f + 1 = 1`) decides false. The smallest systems
    /// the model admits (n = 2, 3) drive the generic `quorum_rounds`
    /// engine through both decision rules.
    #[test]
    fn quorum_engine_f0_boundary(
        seed in 0u64..1_000,
        writes in prop::collection::vec(0u8..4, 1..3),
    ) {
        for n in [2usize, 3] {
            boundary_all_families(n, 0, seed, &writes);
        }
    }

    /// `n = 3f + 1` boundary: the minimal resilience the paper proves
    /// sufficient (and Theorem 31 proves necessary). `(4, 1)` and `(7, 2)`
    /// leave no slack between `n − f` and `2f + 1`.
    #[test]
    fn quorum_engine_minimal_n_boundary(
        seed in 0u64..1_000,
        writes in prop::collection::vec(0u8..4, 1..3),
    ) {
        for (n, f) in [(4usize, 1usize), (7, 2)] {
            boundary_all_families(n, f, seed, &writes);
        }
    }

    /// Verifiable register: random writer values, random reader schedules,
    /// random seed — the history always linearizes and satisfies
    /// Observations 11–13.
    #[test]
    fn verifiable_random_schedules_linearize(
        seed in 0u64..1_000,
        writes in prop::collection::vec(0u8..4, 1..4),
        signs in prop::collection::vec(0u8..4, 0..3),
        schedule in reader_steps(),
    ) {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = VerifiableRegister::install(&system, 0u8);
        let mut w = reg.writer();
        let schedule2 = schedule.clone();
        let mut r = reg.reader(ProcessId::new(2));
        let t = std::thread::spawn(move || {
            for step in schedule2 {
                match step {
                    ReaderStep::Read => { let _ = r.read().unwrap(); }
                    ReaderStep::Verify(v) => { let _ = r.verify(&v).unwrap(); }
                }
            }
        });
        for v in writes {
            w.write(v).unwrap();
        }
        for v in signs {
            let _ = w.sign(&v).unwrap();
        }
        t.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        prop_assert!(verifiable_monitor(&ops).is_ok(), "monitor: {:?}", ops);
        prop_assert!(check(&VerifiableSpec { v0: 0u8 }, &ops).is_linearizable(), "{:?}", ops);
    }

    /// Verifiable register with a Byzantine writer chosen from the attack
    /// library: relay always holds and the reader history is Byzantine
    /// linearizable.
    #[test]
    fn verifiable_byzantine_writer_relay_holds(
        seed in 0u64..1_000,
        attack_choice in 0usize..2,
        schedule in reader_steps(),
    ) {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(seed))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = VerifiableRegister::install(&system, 0u8);
        let ports = reg.attack_ports(ProcessId::new(1));
        match attack_choice {
            0 => system.spawn_byzantine(
                ProcessId::new(1),
                attacks::verifiable::lie_then_deny(ports, 1, 2),
            ),
            _ => system.spawn_byzantine(
                ProcessId::new(1),
                attacks::verifiable::vote_flipper(ports, 1),
            ),
        }
        let mut r2 = reg.reader(ProcessId::new(2));
        let mut r3 = reg.reader(ProcessId::new(3));
        for step in &schedule {
            match step {
                ReaderStep::Read => { let _ = r2.read().unwrap(); }
                ReaderStep::Verify(v) => {
                    let _ = r2.verify(v).unwrap();
                    let _ = r3.verify(v).unwrap();
                }
            }
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        prop_assert!(verifiable_relay(&ops).is_ok(), "relay: {:?}", ops);
        prop_assert!(check_byzantine_verifiable(&0u8, &ops).is_linearizable(), "{:?}", ops);
    }

    /// Authenticated register: random correct schedules linearize.
    #[test]
    fn authenticated_random_schedules_linearize(
        seed in 0u64..1_000,
        writes in prop::collection::vec(0u8..4, 1..4),
        schedule in reader_steps(),
    ) {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = AuthenticatedRegister::install(&system, 0u8);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(3));
        let t = std::thread::spawn(move || {
            for step in schedule {
                match step {
                    ReaderStep::Read => { let _ = r.read().unwrap(); }
                    ReaderStep::Verify(v) => { let _ = r.verify(&v).unwrap(); }
                }
            }
        });
        for v in writes {
            w.write(v).unwrap();
        }
        t.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        prop_assert!(authenticated_monitor(&0u8, &ops).is_ok(), "{:?}", ops);
        prop_assert!(check(&AuthenticatedSpec { v0: 0u8 }, &ops).is_linearizable(), "{:?}", ops);
    }

    /// Sticky register under a random equivocating adversary: uniqueness
    /// and Byzantine linearizability always hold.
    #[test]
    fn sticky_equivocator_never_defeats_uniqueness(
        seed in 0u64..1_000,
        a in 0u8..4,
        b in 4u8..8,
        reads in 1usize..4,
    ) {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(seed))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = StickyRegister::install(&system);
        let ports = reg.attack_ports(ProcessId::new(1));
        system.spawn_byzantine(ProcessId::new(1), attacks::sticky::equivocator(ports, a, b));
        let mut handles = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..reads {
                    let _ = r.read().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        prop_assert!(sticky_uniqueness(&ops).is_ok(), "{:?}", ops);
        prop_assert!(check_byzantine_sticky(&ops).is_linearizable(), "{:?}", ops);
    }
}
