//! E1 — **Figure 1 / Theorem 29**: test-or-set is impossible from plain
//! SWMR registers when `3 ≤ n ≤ 3f`, and the naive witness-quorum attempts
//! of §5.1 break in exactly the ways the proof's case analysis predicts.
//!
//! The proof constructs histories H1/H2/H3 with partition
//! `{s}, {pa}, {pb}, Q1, Q2, Q3`. We execute them with `f = 1, n = 3`
//! (`s = p1`, `pa = p2`, `pb = p3`, all `Q_i` empty):
//!
//! * **History H2** (relay horn): the Byzantine coalition `{s} ∪ Q1` behaves
//!   correctly until `pa`'s `Test` returns 1 at `t4`, then resets its
//!   registers to their initial state; `pb` — asleep until `t6` — then runs
//!   `Test'`. A *threshold* tester (needs `f + 1` vouchers) now sees only
//!   `f` honest vouchers and returns 0, violating **Lemma 28(3)**.
//! * **History H3** (forgery horn): swap roles — `{pa} ∪ Q2` is Byzantine
//!   and fabricates exactly the register contents it had in H2; `s` is
//!   correct but never invokes `Set`. A *gullible* tester (accepts any
//!   voucher) returns 1, violating **Lemma 28(2)**.
//!
//! The same adversaries are then replayed against `n = 3f + 1 = 4`
//! (threshold rule) and against the register-based constructions of
//! Observation 30 — and fail, which is the possibility half of the story.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use byzreg::core::test_or_set::naive::{NaiveTestOrSet, Rule};
use byzreg::core::test_or_set::{TosFromVerifiable, TosTester};
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::monitors::test_or_set_monitor;

/// History H2 with the threshold rule at `n = 3f`: the relay property
/// (Lemma 28(3)) is violated.
#[test]
fn h2_breaks_threshold_rule_at_n_3f() {
    let s = ProcessId::new(1); // the setter, Byzantine in H2
    let pa = ProcessId::new(2);
    let pb = ProcessId::new(3);

    let system =
        System::builder(3).resilience(1).scheduling(Scheduling::Chaotic(91)).byzantine(s).build();
    // pb is "asleep" until t6 (the adversary controls the schedule).
    let pb_asleep = Arc::new(AtomicBool::new(true));
    let mut sleepers = HashMap::new();
    sleepers.insert(pb, Arc::clone(&pb_asleep));
    let tos = NaiveTestOrSet::install_with_sleepers(&system, Rule::Threshold, sleepers);
    let ports = tos.attack_ports(s);

    // [t1, t2]: {s} behaves exactly like a correct setter: Set = V1 <- true.
    ports.vouch.write(true);

    // [t3, t4]: pa's Test returns 1 (Lemma 28(1) behavior).
    let mut tester_a = tos.tester(pa);
    assert!(tester_a.test().unwrap(), "H1/H2 prefix: pa's Test must return 1");

    // [t4, t5]: the Byzantine coalition resets its registers to initial
    // state "as if these processes never took any step".
    ports.vouch.write(false);

    // [t6, t7]: pb wakes up and runs Test'.
    pb_asleep.store(false, Ordering::SeqCst);
    let mut tester_b = tos.tester(pb);
    let test_b = tester_b.test().unwrap();

    assert!(!test_b, "the threshold tester is left with only f honest vouchers");
    // Lemma 28(3) is violated: Test -> 1 precedes Test' -> 0.
    let violation = test_or_set_monitor(false, &tos.history().complete_ops())
        .expect_err("Theorem 29: the naive implementation cannot be correct at n = 3f");
    assert_eq!(violation.property, "Lemma 28(3)");
    system.shutdown();
}

/// History H3 with the gullible rule: unforgeability (Lemma 28(2)) is
/// violated — `f` Byzantine vouchers forge a `Set` that never happened.
#[test]
fn h3_breaks_gullible_rule_at_n_3f() {
    let pa = ProcessId::new(2); // Byzantine in H3
    let pb = ProcessId::new(3);

    let system =
        System::builder(3).resilience(1).scheduling(Scheduling::Chaotic(92)).byzantine(pa).build();
    let tos = NaiveTestOrSet::install(&system, Rule::Gullible);
    let ports = tos.attack_ports(pa);

    // {pa} ∪ Q2 write exactly the register contents they had in H2 —
    // pa had vouched during its Test there.
    ports.vouch.write(true);

    // The correct setter s never invokes Set. pb's Test' still returns 1.
    let mut tester_b = tos.tester(pb);
    assert!(tester_b.test().unwrap(), "the gullible tester believes the forged voucher");

    let violation = test_or_set_monitor(true, &tos.history().complete_ops())
        .expect_err("Theorem 29: forgery horn");
    assert_eq!(violation.property, "Lemma 28(2)");
    system.shutdown();
}

/// The H2 adversary replayed at `n = 3f + 1`: the threshold rule survives,
/// because `f + 1` honest vouchers outlive the reset.
#[test]
fn h2_adversary_fails_at_n_3f_plus_1() {
    let s = ProcessId::new(1);
    let pa = ProcessId::new(2);
    let pb = ProcessId::new(4);

    let system =
        System::builder(4).resilience(1).scheduling(Scheduling::Chaotic(93)).byzantine(s).build();
    let pb_asleep = Arc::new(AtomicBool::new(true));
    let mut sleepers = HashMap::new();
    sleepers.insert(pb, Arc::clone(&pb_asleep));
    let tos = NaiveTestOrSet::install_with_sleepers(&system, Rule::Threshold, sleepers);
    let ports = tos.attack_ports(s);

    ports.vouch.write(true);
    let mut tester_a = tos.tester(pa);
    assert!(tester_a.test().unwrap());

    // Give the second honest helper (p3) time to vouch before the reset:
    // with n = 4 there are *two* honest vouchers besides V1.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while ports.all.iter().filter(|r| r.read()).count() < 3 {
        assert!(std::time::Instant::now() < deadline, "propagation stalled");
        std::thread::yield_now();
    }
    ports.vouch.write(false);

    pb_asleep.store(false, Ordering::SeqCst);
    let mut tester_b = tos.tester(pb);
    assert!(tester_b.test().unwrap(), "f + 1 honest vouchers survive the reset");
    assert!(test_or_set_monitor(false, &tos.history().complete_ops()).is_ok());
    system.shutdown();
}

/// The H3 forgery adversary replayed against the Observation 30
/// construction (test-or-set from a verifiable register) at `n = 3f + 1`:
/// `f` forged witnesses cannot make `Verify` — and hence `Test` — return 1.
#[test]
fn forgery_fails_against_the_verifiable_register_construction() {
    let pa = ProcessId::new(2);
    let pb = ProcessId::new(3);

    let system = System::builder(4).scheduling(Scheduling::Chaotic(94)).byzantine(pa).build();
    let tos = TosFromVerifiable::install(&system);
    let ports = tos.backing().attack_ports(pa);
    let shared = ports.shared.clone();
    system.spawn_byzantine(pa, move || {
        // Claim to witness "1" (the Set value) everywhere, forever.
        let one: std::collections::BTreeSet<u8> = std::iter::once(1u8).collect();
        ports.witness.write(one.clone());
        for (k, rep) in ports.replies.iter().enumerate() {
            let c = shared.askers[k].read();
            rep.write((one.clone(), c));
        }
        true
    });

    let mut tester_b = tos.tester(pb);
    for _ in 0..5 {
        assert!(!tester_b.test().unwrap(), "Obs. 12: one forger cannot fake the signature");
    }
    assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
    system.shutdown();
}

/// The H2 denial adversary replayed against the Observation 30 construction:
/// after `pa`'s Test returns 1, nothing the Byzantine setter erases can make
/// a later Test return 0 (the `set1` sets of the register never shrink).
#[test]
fn denial_fails_against_the_verifiable_register_construction() {
    let s = ProcessId::new(1);
    let pa = ProcessId::new(2);
    let pb = ProcessId::new(3);

    let system = System::builder(4).scheduling(Scheduling::Chaotic(95)).byzantine(s).build();
    let tos = TosFromVerifiable::install(&system);
    let ports = tos.backing().attack_ports(s);

    // Phase 1: the Byzantine setter performs an honest-looking Set:
    // Write(1) + Sign(1) = put 1 into R* and R1.
    ports.r_star.as_ref().unwrap().write(1);
    ports.witness.update(|set| {
        set.insert(1u8);
    });

    let mut tester_a = tos.tester(pa);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if tester_a.test().unwrap() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "Test never saw the Set");
    }

    // Phase 2: deny — erase R1 and R*.
    ports.witness.write(Default::default());
    ports.r_star.as_ref().unwrap().write(0);

    // Phase 3: every later Test still returns 1 (Lemma 28(3) preserved).
    let mut tester_b = tos.tester(pb);
    assert!(tester_b.test().unwrap(), "you can lie but not deny");
    assert!(test_or_set_monitor(false, &tos.history().complete_ops()).is_ok());
    system.shutdown();
}
