//! E4 — Theorem 25: Algorithm 3 is a correct implementation of a SWMR
//! sticky register.

use byzreg::core::attacks;
use byzreg::core::StickyRegister;
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::augment::check_byzantine_sticky;
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::{sticky_monitor, sticky_uniqueness};
use byzreg::spec::registers::StickySpec;

/// Concurrent correct executions linearize against Definition 21.
#[test]
fn concurrent_correct_history_linearizes() {
    for seed in [31u64, 32, 33, 34] {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let mut handles = Vec::new();
        handles.push(std::thread::spawn(move || {
            w.write(5u32).unwrap();
            w.write(9).unwrap(); // no-op by stickiness
        }));
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    let _ = r.read().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(sticky_monitor(&ops).is_ok(), "seed {seed}: {ops:?}");
        assert!(
            check(&StickySpec::<u32>::new(), &ops).is_linearizable(),
            "seed {seed}: not linearizable: {ops:?}"
        );
    }
}

/// An equivocating Byzantine writer cannot make two correct readers return
/// different non-`⊥` values (Obs. 24); reader histories stay Byzantine
/// linearizable.
#[test]
fn equivocating_writer_cannot_defeat_uniqueness() {
    for seed in [41u64, 42, 43] {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(seed))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = StickyRegister::install(&system);
        let ports = reg.attack_ports(ProcessId::new(1));
        system.spawn_byzantine(ProcessId::new(1), attacks::sticky::equivocator(ports, 111, 222));

        let mut handles = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    let _ = r.read().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(sticky_uniqueness(&ops).is_ok(), "seed {seed}: {ops:?}");
        assert!(
            check_byzantine_sticky(&ops).is_linearizable(),
            "seed {seed}: not Byzantine linearizable: {ops:?}"
        );
    }
}

/// A bottom-pushing Byzantine helper cannot un-write a completed write.
#[test]
fn bottom_pusher_cannot_unwrite() {
    let system =
        System::builder(4).scheduling(Scheduling::Chaotic(44)).byzantine(ProcessId::new(4)).build();
    let reg = StickyRegister::install(&system);
    let ports = reg.attack_ports(ProcessId::new(4));
    system.spawn_byzantine(ProcessId::new(4), attacks::sticky::bottom_pusher::<u32>(ports));

    let mut w = reg.writer();
    w.write(5u32).unwrap();
    let mut handles = Vec::new();
    for k in 2..=3 {
        let mut r = reg.reader(ProcessId::new(k));
        handles.push(std::thread::spawn(move || {
            for _ in 0..4 {
                assert_eq!(r.read().unwrap(), Some(5));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(sticky_monitor(&ops).is_ok());
    assert!(check(&StickySpec::<u32>::new(), &ops).is_linearizable());
}

/// Crashed processes up to `f` block nothing; `n = 7, f = 2`.
#[test]
fn tolerates_f_crashes_at_n7() {
    let system = System::builder(7)
        .scheduling(Scheduling::Chaotic(45))
        .byzantine(ProcessId::new(6))
        .byzantine(ProcessId::new(7))
        .build();
    let reg = StickyRegister::install(&system);
    let mut w = reg.writer();
    w.write(8u32).unwrap();
    for k in 2..=5 {
        let mut r = reg.reader(ProcessId::new(k));
        assert_eq!(r.read().unwrap(), Some(8));
    }
    system.shutdown();
    assert!(sticky_monitor(&reg.history().complete_ops()).is_ok());
}

/// Readers racing the writer: some may return `⊥`, some the value, but the
/// interleaving must linearize.
#[test]
fn reads_racing_the_write_linearize() {
    for seed in [51u64, 52, 53, 54, 55] {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let mut handles = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    let _ = r.read().unwrap();
                }
            }));
        }
        w.write(1u32).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(sticky_monitor(&ops).is_ok(), "seed {seed}: {ops:?}");
        assert!(check(&StickySpec::<u32>::new(), &ops).is_linearizable(), "seed {seed}");
    }
}
