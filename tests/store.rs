//! Store acceptance workloads: a seeded mixed workload over a 1024-key
//! space with 8 shards and a nonzero Byzantine fraction runs to completion
//! for every register family, on both the shared-memory and the
//! message-passing backend (the batched-vs-looped equivalence itself is
//! unit-tested in `byzreg-store`; the perf comparison lives in
//! `BENCH_store.json` via the `store_workload` driver).

use byzreg::core::api::SignatureRegister;
use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::mp::MpFactory;
use byzreg::runtime::LocalFactory;
use byzreg::store::workload::{build_system, run_workload, WorkloadConfig};
use byzreg::store::WorkloadReport;

/// The shared-memory acceptance shape: full key space and shard count,
/// mixed 40/30/30 ops, two writer + two reader threads, one Byzantine
/// process out of five.
fn shm_cfg() -> WorkloadConfig {
    WorkloadConfig {
        keys: 1024,
        shards: 8,
        ops: 96,
        read_pct: 40,
        write_pct: 30,
        batch: 8,
        skew: 0.8,
        writers: 2,
        readers: 2,
        n: 5,
        byzantine: 1,
        prepopulate: false,
        seed: 13,
    }
}

/// The message-passing acceptance shape: same key space and shards, far
/// fewer operations and a hotter key set — every instantiated key spawns
/// an emulated register fabric with its own node threads.
fn mp_cfg() -> WorkloadConfig {
    WorkloadConfig {
        keys: 1024,
        shards: 8,
        ops: 12,
        read_pct: 40,
        write_pct: 35,
        batch: 4,
        skew: 0.97,
        writers: 1,
        readers: 1,
        n: 4,
        byzantine: 1,
        prepopulate: false,
        seed: 13,
    }
}

fn check(report: &WorkloadReport, cfg: &WorkloadConfig) {
    assert_eq!(report.ops, cfg.ops, "{}/{}", report.family, report.backend);
    assert_eq!(
        report.write.count + report.read.count + report.verify.count,
        cfg.ops,
        "{}/{}: every item must be measured",
        report.family,
        report.backend
    );
    assert!(report.byzantine > 0, "the acceptance workload requires a Byzantine fraction");
    assert!(report.distinct_keys > 0 && report.distinct_keys as u64 <= cfg.keys);
    assert!(report.ops_per_sec > 0.0);
}

fn shm_workload<R: SignatureRegister<u64>>() {
    let cfg = shm_cfg();
    let system = build_system(&cfg);
    let report = run_workload::<R, _>(&system, LocalFactory, "shm", &cfg).unwrap();
    system.shutdown();
    check(&report, &cfg);
}

fn mp_workload<R: SignatureRegister<u64>>() {
    let cfg = mp_cfg();
    let system = build_system(&cfg);
    let factory = MpFactory::default();
    let report = run_workload::<R, _>(&system, &factory, "mp", &cfg).unwrap();
    system.shutdown();
    check(&report, &cfg);
}

#[test]
fn shm_store_workload_verifiable() {
    shm_workload::<VerifiableRegister<u64>>();
}

#[test]
fn shm_store_workload_authenticated() {
    shm_workload::<AuthenticatedRegister<u64>>();
}

#[test]
fn shm_store_workload_sticky() {
    shm_workload::<StickyRegister<u64>>();
}

#[test]
fn mp_store_workload_verifiable() {
    mp_workload::<VerifiableRegister<u64>>();
}

#[test]
fn mp_store_workload_authenticated() {
    mp_workload::<AuthenticatedRegister<u64>>();
}

#[test]
fn mp_store_workload_sticky() {
    mp_workload::<StickyRegister<u64>>();
}
