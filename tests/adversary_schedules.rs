//! Chaos tests for the seeded **adversarial delivery schedules** of the MP
//! reactor: every canned [`AdversaryPolicy`] must leave the emulated SWMR
//! register linearizable, leave all three register families' signature
//! properties intact over `MpFactory`, replay byte-identically from its
//! seed — and no bounded-reorder policy, canned or arbitrary, may ever
//! violate the per-link FIFO floor of the virtual-time heap.
//!
//! The uniform-jitter schedules of `tests/message_passing.rs` explore
//! interleavings blindly; these schedules *target* the corner cases the
//! register proofs actually fight (stale-quorum reads, writer/reader
//! races, a reader cut off until a quorum already moved on).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg::core::{AuthenticatedRegister, Family, StickyRegister, VerifiableRegister};
use byzreg::mp::{
    adversarial_network, AdversaryPolicy, DeliverySchedule, MpConfig, MpFactory, MpRegister, Msg,
    NetConfig,
};
use byzreg::runtime::{CompleteOp, OpToken, ProcessId, System};
use byzreg::spec::linearize::check;
use byzreg::spec::registers::{RegInv, RegResp, SwmrSpec};

/// The canned suite for the 4-node, `f = 1` systems every test here uses.
fn canned() -> Vec<(&'static str, AdversaryPolicy)> {
    AdversaryPolicy::canned(4, 1)
}

/// Records a small concurrent writer/reader history over one emulated
/// register scheduled by `policy`, with a Byzantine node flooding
/// fabricated protocol messages, and checks it linearizable.
fn linearizable_under(name: &str, policy: AdversaryPolicy) {
    let mut config = MpConfig::new(4);
    config.byzantine = vec![ProcessId::new(4)];
    config.net = NetConfig::jittery(Duration::from_micros(300), 99);
    config.adversary = policy;
    let reg = MpRegister::spawn(&config, 0u32);
    let byz = reg.byzantine_endpoint(ProcessId::new(4));

    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let attacker = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            byz.broadcast(Msg::Echo { sn: 1_000 + i, v: 66u32 });
            byz.broadcast(Msg::Valid { sn: 2_000 + i, v: 67u32 });
            byz.broadcast(Msg::State { rid: i % 8, ts: 9_999, v: 68u32 });
            i += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    let clock = Arc::new(AtomicU64::new(1));
    let tick = {
        let c = Arc::clone(&clock);
        move || c.fetch_add(1, Ordering::SeqCst)
    };

    let recorded = Arc::new(Mutex::new(Vec::new()));
    let writer = reg.client(ProcessId::new(1));
    let r2 = reg.client(ProcessId::new(2));
    let r3 = reg.client(ProcessId::new(3));

    let mut handles = Vec::new();
    {
        let recorded = Arc::clone(&recorded);
        let tick = tick.clone();
        handles.push(std::thread::spawn(move || {
            for v in 1..=5u32 {
                let t0 = tick();
                writer.write(v);
                let t1 = tick();
                recorded.lock().unwrap().push((t0, t1, RegInv::Write(v), RegResp::Done));
            }
        }));
    }
    for client in [r2, r3] {
        let recorded = Arc::clone(&recorded);
        let tick = tick.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let t0 = tick();
                let (_, v) = client.read();
                let t1 = tick();
                recorded.lock().unwrap().push((t0, t1, RegInv::Read, RegResp::ReadValue(v)));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    attacker.join().unwrap();

    let ops: Vec<CompleteOp<RegInv<u32>, RegResp<u32>>> = recorded
        .lock()
        .unwrap()
        .drain(..)
        .enumerate()
        .map(|(i, (t0, t1, inv, resp))| CompleteOp {
            op: OpToken::synthetic(i as u64),
            pid: ProcessId::new(1),
            invoked_at: t0,
            responded_at: t1,
            invocation: inv,
            response: resp,
        })
        .collect();
    let outcome = check(&SwmrSpec { v0: 0u32 }, &ops);
    assert!(outcome.is_linearizable(), "{name}: MP history not linearizable: {ops:?}");
    reg.shutdown();
}

#[test]
fn emulated_register_is_linearizable_under_every_canned_adversary() {
    for (name, policy) in canned() {
        linearizable_under(name, policy);
    }
}

/// The generic signature-property workload of `tests/message_passing.rs`,
/// with the factory's delivery schedules shaped by `policy`.
fn family_under_adversary<R: SignatureRegister<u32>>(name: &str, policy: AdversaryPolicy) {
    let fam = R::FAMILY;
    let system = System::builder(4).build();
    let factory =
        MpFactory::new(NetConfig::jittery(Duration::from_micros(300), 7)).adversarial(policy);
    let reg = R::install_with_factory(&system, 0, &factory);
    let mut w = reg.signer();
    let mut r = reg.verifier(ProcessId::new(2));

    w.write_value(7).unwrap();
    if fam == Family::Verifiable {
        assert!(!r.verify_value(&7).unwrap(), "{name}/{fam}: written but unsigned");
    }
    assert!(w.sign_value(&7).unwrap());
    assert_eq!(r.read_value().unwrap(), Some(7), "{name}/{fam}: read over adversarial MP");
    assert!(r.verify_value(&7).unwrap(), "{name}/{fam}: verify over adversarial MP");
    let mut r3 = reg.verifier(ProcessId::new(3));
    assert!(r3.verify_value(&7).unwrap(), "{name}/{fam}: relay must hold");
    assert!(!r3.verify_value(&8).unwrap(), "{name}/{fam}: unwritten value must not verify");

    w.write_value(9).unwrap();
    let expect = if fam == Family::Sticky { Some(7) } else { Some(9) };
    assert_eq!(r.read_value().unwrap(), expect, "{name}/{fam}: after rewrite");
    system.shutdown();
}

#[test]
fn verifiable_register_keeps_properties_under_every_canned_adversary() {
    for (name, policy) in canned() {
        family_under_adversary::<VerifiableRegister<u32>>(name, policy);
    }
}

#[test]
fn authenticated_register_keeps_properties_under_every_canned_adversary() {
    for (name, policy) in canned() {
        family_under_adversary::<AuthenticatedRegister<u32>>(name, policy);
    }
}

#[test]
fn sticky_register_keeps_properties_under_every_canned_adversary() {
    for (name, policy) in canned() {
        family_under_adversary::<StickyRegister<u32>>(name, policy);
    }
}

/// One traced sequential run of a fixed command sequence under `policy`.
fn traced_run(seed: u64, policy: AdversaryPolicy) -> (Vec<(u64, u32)>, DeliverySchedule) {
    let mut config = MpConfig::new(4);
    config.net = NetConfig::jittery(Duration::from_millis(2), seed);
    config.adversary = policy;
    config.trace = true;
    let reg = MpRegister::spawn(&config, 0u32);
    let w = reg.client(ProcessId::new(1));
    let r = reg.client(ProcessId::new(2));
    let mut results = Vec::new();
    for i in 1..=5u32 {
        w.write(i);
        results.push(r.read());
    }
    let schedule = reg.delivery_schedule().expect("tracing on");
    reg.shutdown();
    (results, schedule)
}

#[test]
fn same_seed_same_policy_replays_the_delivery_schedule() {
    // The adversarial determinism contract, per canned policy: seed +
    // policy + command sequence fully determine the delivery schedule —
    // what the CI `determinism` bin pins across whole process runs.
    for (name, policy) in canned() {
        let (reads_a, schedule_a) = traced_run(11, policy.clone());
        let (reads_b, schedule_b) = traced_run(11, policy);
        assert_eq!(schedule_a, schedule_b, "{name}: schedule must replay from the seed");
        assert_eq!(reads_a, reads_b, "{name}: read decisions must replay");
    }
}

#[test]
fn different_policies_explore_different_schedules() {
    let schedules: Vec<DeliverySchedule> =
        canned().into_iter().map(|(_, p)| traced_run(11, p).1).collect();
    let distinct = schedules
        .iter()
        .enumerate()
        .filter(|(i, s)| schedules[..*i].iter().all(|t| &t != s))
        .count();
    assert!(distinct >= 4, "canned policies should shape distinct schedules, got {distinct}/5");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary bounded-reorder policies (any depth, any seed, optionally
    /// composed with an arbitrary targeted delay, over arbitrary send
    /// patterns and base jitter) never violate the per-link FIFO floor:
    /// each receiver observes each sender's payload counter strictly
    /// increasing.
    #[test]
    fn arbitrary_bounded_reorder_preserves_per_link_fifo(
        depth in 0usize..6,
        seed in 0u64..1_000_000,
        jitter_us in 0u64..400,
        delay_us in 0u64..400,
        victim in 1usize..5,
        sends in prop::collection::vec(
            // One encoded (from, to) pair per send, over 4 nodes.
            (0usize..16).prop_map(|x| (x / 4 + 1, x % 4 + 1)),
            1..100,
        ),
    ) {
        let mut policy = AdversaryPolicy::bounded_reorder(depth, seed ^ 0xA5A5);
        if delay_us > 0 {
            policy = policy.also(byzreg::mp::Tactic::Delay {
                links: byzreg::mp::LinkSet::To(ProcessId::new(victim)),
                min: Duration::ZERO,
                max: Duration::from_micros(delay_us),
            });
        }
        let config = if jitter_us == 0 {
            NetConfig::instant()
        } else {
            NetConfig::jittery(Duration::from_micros(jitter_us), seed)
        };
        let eps = adversarial_network::<(usize, u64)>(4, config, policy);
        let mut next = [[0u64; 4]; 4];
        for (from, to) in &sends {
            let counter = &mut next[*from - 1][*to - 1];
            eps[*from - 1].send(ProcessId::new(*to), (*from, *counter));
            *counter += 1;
        }
        for (d, ep) in eps.iter().enumerate() {
            let mut last: [Option<u64>; 4] = [None; 4];
            let mut received = 0usize;
            while let Some((from, (f, c))) = ep.recv_timeout(Duration::from_millis(2)) {
                prop_assert_eq!(from.index(), f);
                if let Some(prev) = last[f - 1] {
                    prop_assert!(
                        c > prev,
                        "link p{f} -> p{} delivered #{c} after #{prev} (FIFO violated)",
                        d + 1
                    );
                }
                last[f - 1] = Some(c);
                received += 1;
            }
            let expected = sends.iter().filter(|(_, to)| *to == d + 1).count();
            prop_assert!(
                received == expected,
                "reliable channels must deliver everything: got {received}, want {expected}"
            );
        }
    }
}
