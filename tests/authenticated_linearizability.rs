//! E3 — Theorem 20: Algorithm 2 is a correct implementation of a SWMR
//! authenticated register.

use byzreg::core::attacks;
use byzreg::core::AuthenticatedRegister;
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::augment::check_byzantine_authenticated;
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::{authenticated_monitor, authenticated_relay};
use byzreg::spec::registers::AuthenticatedSpec;

/// Concurrent correct executions linearize against Definition 15.
#[test]
fn concurrent_correct_history_linearizes() {
    for seed in [11u64, 12, 13, 14] {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut handles = Vec::new();
        handles.push(std::thread::spawn(move || {
            for v in 1..=3u32 {
                w.write(v).unwrap();
            }
        }));
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for v in 1..=3u32 {
                    let _ = r.read().unwrap();
                    let _ = r.verify(&v).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(authenticated_monitor(&0u32, &ops).is_ok(), "seed {seed}: {ops:?}");
        assert!(
            check(&AuthenticatedSpec { v0: 0u32 }, &ops).is_linearizable(),
            "seed {seed}: not linearizable: {ops:?}"
        );
    }
}

/// A write-then-erase Byzantine writer: reader histories stay Byzantine
/// linearizable (Definition 143) and Obs. 18/19 hold.
#[test]
fn byzantine_writer_history_is_byzantine_linearizable() {
    for seed in [21u64, 22, 23] {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(seed))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(1));
        system
            .spawn_byzantine(ProcessId::new(1), attacks::authenticated::write_then_erase(ports, 5));

        let mut handles = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    let _ = r.read().unwrap();
                    let _ = r.verify(&5).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(authenticated_relay(&ops).is_ok(), "seed {seed}: {ops:?}");
        assert!(
            check_byzantine_authenticated(&0u32, &ops).is_linearizable(),
            "seed {seed}: not Byzantine linearizable: {ops:?}"
        );
    }
}

/// An equivocating Byzantine writer flipping `R1` between two values:
/// readers may return either value or `v0`, but the history must stay
/// Byzantine linearizable and relay must hold.
#[test]
fn equivocating_writer_cannot_break_reads() {
    let system =
        System::builder(4).scheduling(Scheduling::Chaotic(24)).byzantine(ProcessId::new(1)).build();
    let reg = AuthenticatedRegister::install(&system, 0u32);
    let ports = reg.attack_ports(ProcessId::new(1));
    system.spawn_byzantine(ProcessId::new(1), attacks::authenticated::equivocator(ports, 5, 6));

    let mut handles = Vec::new();
    for k in 2..=4 {
        let mut r = reg.reader(ProcessId::new(k));
        handles.push(std::thread::spawn(move || {
            for _ in 0..3 {
                let _ = r.read().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(authenticated_relay(&ops).is_ok(), "{ops:?}");
    assert!(
        check_byzantine_authenticated(&0u32, &ops).is_linearizable(),
        "not Byzantine linearizable: {ops:?}"
    );
}

/// A Byzantine reader forging witness claims cannot validate a value the
/// writer never wrote (Obs. 17).
#[test]
fn witness_forger_cannot_forge() {
    let system =
        System::builder(4).scheduling(Scheduling::Chaotic(25)).byzantine(ProcessId::new(4)).build();
    let reg = AuthenticatedRegister::install(&system, 0u32);
    let ports = reg.attack_ports(ProcessId::new(4));
    system.spawn_byzantine(ProcessId::new(4), attacks::authenticated::witness_forger(ports, 666));

    let mut w = reg.writer();
    w.write(1).unwrap();
    for k in 2..=3 {
        let mut r = reg.reader(ProcessId::new(k));
        assert!(r.verify(&1).unwrap());
        for _ in 0..5 {
            assert!(!r.verify(&666).unwrap(), "p{k} accepted a forged value");
        }
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(authenticated_monitor(&0u32, &ops).is_ok());
    assert!(check(&AuthenticatedSpec { v0: 0u32 }, &ops).is_linearizable());
}

/// Works at `n = 7, f = 2` with two colluding faulty processes.
#[test]
fn n7_with_two_colluders() {
    let system = System::builder(7)
        .scheduling(Scheduling::Chaotic(26))
        .byzantine(ProcessId::new(6))
        .byzantine(ProcessId::new(7))
        .build();
    let reg = AuthenticatedRegister::install(&system, 0u32);
    let p6 = reg.attack_ports(ProcessId::new(6));
    let p7 = reg.attack_ports(ProcessId::new(7));
    system.spawn_byzantine(ProcessId::new(6), attacks::authenticated::witness_forger(p6, 666));
    system.spawn_byzantine(ProcessId::new(7), attacks::authenticated::witness_forger(p7, 666));

    let mut w = reg.writer();
    w.write(3).unwrap();
    for k in 2..=5 {
        let mut r = reg.reader(ProcessId::new(k));
        assert_eq!(r.read().unwrap(), 3);
        assert!(!r.verify(&666).unwrap(), "two colluding forgers are still < f + 1 witnesses");
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(authenticated_monitor(&0u32, &ops).is_ok());
}
