//! Generic smoke tests over the `SignatureRegister` trait layer: one
//! parameterized workload (write → sign → verify, with first-write-wins
//! semantics for the sticky family) exercised by all three register
//! families, under both the deterministic lockstep scheduler and the
//! chaotic scheduler. No per-family copy-paste: each family is one
//! turbofish instantiation of the same function.

use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg::core::{AuthenticatedRegister, Family, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, Scheduling, System};

/// The shared workload. Returns normally only if the family satisfies the
/// signature-property contract of the trait layer:
///
/// * nothing verifies before it is written and signed,
/// * after `write(7); sign(7)` every reader verifies `7`,
/// * a value that was never signed (`8`) never verifies,
/// * for the sticky family, a second write is a no-op (first-write-wins),
///   which the generic assertions observe through `verify_value`.
fn signature_workload<R: SignatureRegister<u32>>(scheduling: Scheduling) {
    let fam = R::FAMILY;
    let system = System::builder(4).scheduling(scheduling).build();
    let reg = R::install_default(&system, 0);
    let mut writer = reg.signer();
    let mut r2 = reg.verifier(ProcessId::new(2));
    let mut r3 = reg.verifier(ProcessId::new(3));

    assert!(!r2.verify_value(&7).unwrap(), "{fam}: unwritten value must not verify");

    writer.write_value(7).unwrap();
    assert!(writer.sign_value(&7).unwrap(), "{fam}: signing a written value succeeds");
    assert!(r2.verify_value(&7).unwrap(), "{fam}: signed value verifies");

    // Relay: once one correct reader verified, every reader does.
    assert!(r3.verify_value(&7).unwrap(), "{fam}: relay to other readers");

    // A second write: last-write-wins for verifiable/authenticated,
    // first-write-wins for sticky. Both must read *something* and the
    // first signed value must remain verifiable either way ("you can lie
    // but not deny").
    writer.write_value(9).unwrap();
    let now = r2.read_value().unwrap();
    match fam {
        Family::Sticky => assert_eq!(now, Some(7), "sticky: the register is stuck on 7"),
        _ => assert_eq!(now, Some(9), "{fam}: plain reads follow the latest write"),
    }
    assert!(r2.verify_value(&7).unwrap(), "{fam}: 7's signature cannot be denied");

    // A value that was never signed must not verify. For the sticky
    // family that is exactly the overwritten 9 (its write never took
    // effect); for the verifiable family 9 is written but unsigned; for
    // the authenticated family pick a never-written value instead.
    let unsigned = if fam == Family::Authenticated { 1234 } else { 9 };
    assert!(!r2.verify_value(&unsigned).unwrap(), "{fam}: {unsigned} must not verify");

    system.shutdown();
}

macro_rules! family_tests {
    ($($name:ident => $ty:ty),+ $(,)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn lockstep() {
                for seed in [1u64, 7, 42] {
                    signature_workload::<$ty>(Scheduling::Lockstep(seed));
                }
            }

            #[test]
            fn chaotic() {
                for seed in [3u64, 11, 99] {
                    signature_workload::<$ty>(Scheduling::Chaotic(seed));
                }
            }
        }
    )+};
}

family_tests! {
    verifiable => VerifiableRegister<u32>,
    authenticated => AuthenticatedRegister<u32>,
    sticky => StickyRegister<u32>,
}
