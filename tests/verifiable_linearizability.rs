//! E2 — Theorem 14: Algorithm 1 is a correct implementation of a SWMR
//! verifiable register (Byzantine linearizability + termination).
//!
//! Randomized concurrent executions are recorded and fed to the full
//! linearizability checker (correct writer) or to the Definition 78
//! augmentation checker (Byzantine writer), plus the Observation 11–13
//! monitors.

use byzreg::core::attacks;
use byzreg::core::VerifiableRegister;
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::augment::check_byzantine_verifiable;
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::{verifiable_monitor, verifiable_relay};
use byzreg::spec::registers::VerifiableSpec;

/// Concurrent writer + three readers, correct processes only, across seeds:
/// the recorded history must linearize against Definition 10.
#[test]
fn concurrent_correct_history_linearizes() {
    for seed in [1u64, 2, 3, 4, 5] {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut handles = Vec::new();
        handles.push(std::thread::spawn(move || {
            for v in 1..=4u32 {
                w.write(v).unwrap();
                if v % 2 == 0 {
                    w.sign(&v).unwrap();
                }
            }
        }));
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for v in 1..=4u32 {
                    let _ = r.read().unwrap();
                    let _ = r.verify(&v).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(verifiable_monitor(&ops).is_ok(), "seed {seed}: monitor violation in {ops:?}");
        assert!(
            check(&VerifiableSpec { v0: 0u32 }, &ops).is_linearizable(),
            "seed {seed}: not linearizable: {ops:?}"
        );
    }
}

/// Same shape under the deterministic lockstep scheduler.
#[test]
fn lockstep_correct_history_linearizes() {
    for seed in [10u64, 20, 30] {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(seed)).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        let t = std::thread::spawn(move || {
            for v in 1..=3u32 {
                w.write(v).unwrap();
                w.sign(&v).unwrap();
            }
        });
        for v in 1..=3u32 {
            let _ = r.read().unwrap();
            let _ = r.verify(&v).unwrap();
        }
        t.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(check(&VerifiableSpec { v0: 0u32 }, &ops).is_linearizable(), "seed {seed}");
    }
}

/// Byzantine writer running the lie-then-deny script: the reader history
/// must be Byzantine linearizable (Definition 78 construction) and satisfy
/// the relay property.
#[test]
fn byzantine_writer_history_is_byzantine_linearizable() {
    for seed in [7u64, 8, 9] {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(seed))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(1));
        system.spawn_byzantine(ProcessId::new(1), attacks::verifiable::lie_then_deny(ports, 7, 99));

        let mut handles = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    let _ = r.read().unwrap();
                    let _ = r.verify(&7).unwrap();
                    let _ = r.verify(&99).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(verifiable_relay(&ops).is_ok(), "seed {seed}: relay violated: {ops:?}");
        assert!(
            check_byzantine_verifiable(&0u32, &ops).is_linearizable(),
            "seed {seed}: not Byzantine linearizable: {ops:?}"
        );
    }
}

/// A Byzantine reader flipping its vote (the §5.1 bind scenario) cannot
/// break relay or block termination.
#[test]
fn vote_flipping_reader_cannot_break_relay_or_termination() {
    let system =
        System::builder(4).scheduling(Scheduling::Chaotic(44)).byzantine(ProcessId::new(4)).build();
    let reg = VerifiableRegister::install(&system, 0u32);
    let ports = reg.attack_ports(ProcessId::new(4));
    system.spawn_byzantine(ProcessId::new(4), attacks::verifiable::vote_flipper(ports, 5));

    let mut w = reg.writer();
    w.write(5).unwrap();
    w.sign(&5).unwrap();
    let mut handles = Vec::new();
    for k in 2..=3 {
        let mut r = reg.reader(ProcessId::new(k));
        handles.push(std::thread::spawn(move || {
            for _ in 0..6 {
                // Termination: every Verify completes despite the flipper.
                let _ = r.verify(&5).unwrap();
                let _ = r.verify(&6).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(verifiable_monitor(&ops).is_ok(), "{ops:?}");
    assert!(check(&VerifiableSpec { v0: 0u32 }, &ops).is_linearizable());
}

/// Silent (crashed) processes up to f do not block any operation.
#[test]
fn tolerates_f_silent_processes() {
    let system = System::builder(7)
        .scheduling(Scheduling::Chaotic(45))
        .byzantine(ProcessId::new(6))
        .byzantine(ProcessId::new(7))
        .build();
    let reg = VerifiableRegister::install(&system, 0u32);
    // f = 2 processes simply never participate.
    let mut w = reg.writer();
    w.write(1).unwrap();
    w.sign(&1).unwrap();
    for k in 2..=5 {
        let mut r = reg.reader(ProcessId::new(k));
        assert!(r.verify(&1).unwrap());
        assert!(!r.verify(&2).unwrap());
    }
    system.shutdown();
    let ops = reg.history().complete_ops();
    assert!(verifiable_monitor(&ops).is_ok());
}
