//! E7 — the §1/§2 application claim: signature-free reliable broadcast and
//! atomic snapshot (the "first known" such implementations), compared
//! against the signature-based baseline, plus asset transfer.

use byzreg::apps::{AssetTransfer, AtomicSnapshot, NonEquivocatingBroadcast, ReliableBroadcast};
use byzreg::crypto::{CostModel, SignatureOracle, SignedVerifiableRegister};
use byzreg::runtime::{ProcessId, Scheduling, System};

/// Signature-free non-equivocation under an equivocating Byzantine sender:
/// the property the sticky register was designed for.
#[test]
fn non_equivocation_under_byzantine_sender() {
    let system = System::builder(4)
        .scheduling(Scheduling::Chaotic(101))
        .byzantine(ProcessId::new(1))
        .build();
    let neb = NonEquivocatingBroadcast::<u64>::install(&system);
    let ports = neb.attack_ports(ProcessId::new(1));
    let shared = ports.shared.clone();
    let mut i = 0u64;
    system.spawn_byzantine(ProcessId::new(1), move || {
        i += 1;
        ports.echo.write(Some(i % 2));
        for (k, rep) in ports.replies.iter().enumerate() {
            let c = shared.askers[k].read();
            rep.write((Some((i + 1) % 2), c));
        }
        i < 30_000
    });
    let mut delivered = Vec::new();
    for k in 2..=4 {
        let mut ep = neb.endpoint(ProcessId::new(k));
        for _ in 0..3 {
            if let Some(m) = ep.deliver_from(ProcessId::new(1)).unwrap() {
                delivered.push(m);
            }
        }
    }
    delivered.dedup();
    assert!(delivered.len() <= 1, "correct processes delivered different messages: {delivered:?}");
    system.shutdown();
}

/// Reliable broadcast: validity + totality + FIFO across three senders.
#[test]
fn reliable_broadcast_stream_properties() {
    let system = System::builder(4).scheduling(Scheduling::Chaotic(102)).build();
    let rb = ReliableBroadcast::install(&system, 3);
    let mut eps: Vec<_> = (1..=4).map(|i| rb.endpoint(ProcessId::new(i))).collect();
    for (i, ep) in eps.iter_mut().enumerate() {
        for s in 0..3u32 {
            ep.broadcast((i as u32) * 10 + s).unwrap();
        }
    }
    // Every receiver gets every sender's full FIFO stream.
    for (i, ep) in eps.iter_mut().enumerate() {
        for s in 0..4usize {
            if i == s {
                continue;
            }
            let msgs = ep.deliver_all(ProcessId::new(s + 1)).unwrap();
            let expected: Vec<(usize, u32)> =
                (0..3).map(|x| (x, (s as u32) * 10 + x as u32)).collect();
            assert_eq!(msgs, expected, "receiver p{} sender p{}", i + 1, s + 1);
        }
    }
    system.shutdown();
}

/// Atomic snapshot under concurrent updates: the final scans agree and
/// contain the last completed updates.
#[test]
fn snapshot_under_concurrent_updates() {
    let system = System::builder(4).scheduling(Scheduling::Chaotic(103)).build();
    let snap = AtomicSnapshot::install(&system, 0u32);
    let mut handles = Vec::new();
    for k in 2..=4 {
        let mut h = snap.handle(ProcessId::new(k));
        handles.push(std::thread::spawn(move || {
            for v in 1..=3u32 {
                h.update(k as u32 * 100 + v).unwrap();
                let _ = h.scan().unwrap();
            }
            h
        }));
    }
    let mut finished: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let views: Vec<Vec<u32>> = finished.iter_mut().map(|h| h.scan().unwrap()).collect();
    for v in &views {
        assert_eq!(*v, views[0], "quiescent scans agree");
    }
    assert_eq!(views[0][1], 203);
    assert_eq!(views[0][2], 303);
    assert_eq!(views[0][3], 403);
    system.shutdown();
}

/// Asset transfer: a Byzantine account owner cannot double-spend, because
/// its outgoing transfers are a single agreed FIFO stream.
#[test]
fn asset_transfer_money_is_conserved() {
    let system = System::builder(4).scheduling(Scheduling::Chaotic(104)).build();
    let at = AssetTransfer::install(&system, 100, 4);
    let mut wallets: Vec<_> = (1..=4).map(|i| at.wallet(ProcessId::new(i))).collect();
    assert!(wallets[0].transfer(ProcessId::new(2), 60).unwrap());
    assert!(wallets[0].transfer(ProcessId::new(3), 40).unwrap());
    // Account p1 is now empty; a further transfer is rejected.
    assert!(!wallets[0].transfer(ProcessId::new(4), 1).unwrap());
    for w in wallets.iter_mut() {
        let total: u64 = (1..=4).map(|a| w.balance(a).unwrap()).sum();
        assert_eq!(total, 400);
        assert_eq!(w.balance(1).unwrap(), 0);
        assert_eq!(w.balance(2).unwrap(), 160);
    }
    system.shutdown();
}

/// The signature-based baseline provides the same verify/relay interface
/// with `n = 2f + 1` (fewer processes than the signature-free `3f + 1`) —
/// the trade-off the paper's abstract states.
#[test]
fn signed_baseline_needs_fewer_processes() {
    // n = 3, f = 1: impossible without signatures (Theorem 31), fine with.
    let system = System::builder(3).resilience(1).build();
    let oracle = SignatureOracle::new(CostModel::free());
    let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
    let mut w = reg.writer();
    let mut r2 = reg.reader(ProcessId::new(2));
    let mut r3 = reg.reader(ProcessId::new(3));
    w.write(5).unwrap();
    w.sign(&5).unwrap();
    assert!(r2.verify(&5).unwrap());
    assert!(r3.verify(&5).unwrap());
    assert!(!r2.verify(&6).unwrap());
    system.shutdown();
}
