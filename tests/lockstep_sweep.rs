//! Deterministic seed sweep: a mini model-check of all three registers
//! under the lockstep scheduler. Each seed yields one reproducible
//! interleaving; every recorded history must pass the full checker.

use byzreg::core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::linearize::check;
use byzreg::spec::registers::{AuthenticatedSpec, StickySpec, VerifiableSpec};

const SEEDS: std::ops::Range<u64> = 100..125;

#[test]
fn verifiable_register_sweep() {
    for seed in SEEDS {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(seed)).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r2 = reg.reader(ProcessId::new(2));
        let r3 = reg.reader(ProcessId::new(3));
        let t = std::thread::spawn(move || {
            let mut r3 = r3;
            let _ = r3.verify(&1).unwrap();
            let _ = r3.read().unwrap();
        });
        w.write(1).unwrap();
        w.sign(&1).unwrap();
        let _ = r2.verify(&1).unwrap();
        t.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(
            check(&VerifiableSpec { v0: 0u32 }, &ops).is_linearizable(),
            "seed {seed}: {ops:?}"
        );
    }
}

#[test]
fn authenticated_register_sweep() {
    for seed in SEEDS {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(seed)).build();
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let r2 = reg.reader(ProcessId::new(2));
        let t = std::thread::spawn(move || {
            let mut r2 = r2;
            let _ = r2.read().unwrap();
            let _ = r2.verify(&1).unwrap();
        });
        w.write(1).unwrap();
        w.write(2).unwrap();
        t.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(
            check(&AuthenticatedSpec { v0: 0u32 }, &ops).is_linearizable(),
            "seed {seed}: {ops:?}"
        );
    }
}

#[test]
fn sticky_register_sweep() {
    for seed in SEEDS {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(seed)).build();
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let r2 = reg.reader(ProcessId::new(2));
        let r3 = reg.reader(ProcessId::new(3));
        let t2 = std::thread::spawn(move || {
            let mut r2 = r2;
            let _ = r2.read().unwrap();
            let _ = r2.read().unwrap();
        });
        let t3 = std::thread::spawn(move || {
            let mut r3 = r3;
            let _ = r3.read().unwrap();
        });
        w.write(9u32).unwrap();
        t2.join().unwrap();
        t3.join().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert!(check(&StickySpec::<u32>::new(), &ops).is_linearizable(), "seed {seed}: {ops:?}");
    }
}
