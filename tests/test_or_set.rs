//! E5 — Observation 30: wait-free test-or-set from a verifiable,
//! authenticated, or sticky register, checked against Lemma 28 and the
//! sequential spec of Definition 26.

use byzreg::core::test_or_set::{
    TosFromAuthenticated, TosFromSticky, TosFromVerifiable, TosSetter, TosTester,
};
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::test_or_set_monitor;
use byzreg::spec::registers::TestOrSetSpec;

/// Drives one construction through a concurrent one-shot schedule and
/// audits the history.
fn drive(
    mut setter: impl TosSetter + 'static,
    testers: Vec<Box<dyn FnOnce() -> bool + Send>>,
) -> Vec<bool> {
    let mut handles = Vec::new();
    handles.push(std::thread::spawn(move || {
        setter.set().unwrap();
        None
    }));
    for t in testers {
        handles.push(std::thread::spawn(move || Some(t())));
    }
    handles.into_iter().filter_map(|h| h.join().unwrap()).collect()
}

macro_rules! check_construction {
    ($name:ident, $ty:ident) => {
        #[test]
        fn $name() {
            for seed in [61u64, 62, 63, 64, 65] {
                let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
                let tos = $ty::install(&system);
                let setter = tos.setter();
                let testers: Vec<Box<dyn FnOnce() -> bool + Send>> = (2..=4)
                    .map(|k| {
                        let mut t = tos.tester(ProcessId::new(k));
                        Box::new(move || t.test().unwrap()) as Box<dyn FnOnce() -> bool + Send>
                    })
                    .collect();
                let _ = drive(setter, testers);
                system.shutdown();
                let ops = tos.history().complete_ops();
                assert!(
                    test_or_set_monitor(true, &ops).is_ok(),
                    "seed {seed}: Lemma 28 violated: {ops:?}"
                );
                assert!(
                    check(&TestOrSetSpec, &ops).is_linearizable(),
                    "seed {seed}: not linearizable: {ops:?}"
                );
            }
        }
    };
}

check_construction!(from_verifiable_is_linearizable, TosFromVerifiable);
check_construction!(from_authenticated_is_linearizable, TosFromAuthenticated);
check_construction!(from_sticky_is_linearizable, TosFromSticky);

/// Sequential relay: once any tester sees 1, every later tester does.
#[test]
fn relay_across_testers() {
    let system = System::builder(4).scheduling(Scheduling::Chaotic(66)).build();
    let tos = TosFromAuthenticated::install(&system);
    let mut setter = tos.setter();
    let mut t2 = tos.tester(ProcessId::new(2));
    let mut t3 = tos.tester(ProcessId::new(3));
    let mut t4 = tos.tester(ProcessId::new(4));
    assert!(!t2.test().unwrap());
    setter.set().unwrap();
    assert!(t3.test().unwrap());
    assert!(t4.test().unwrap(), "Observation 27(3)");
    assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
    system.shutdown();
}

/// The constructions stay wait-free with `f` silent processes (Obs. 30
/// claims correctness for any `n > f` given the register; here the register
/// itself needs `n > 3f`, so we run `n = 7, f = 2` with 2 crashes).
#[test]
fn wait_free_with_crashes() {
    let system = System::builder(7)
        .scheduling(Scheduling::Chaotic(67))
        .byzantine(ProcessId::new(6))
        .byzantine(ProcessId::new(7))
        .build();
    let tos = TosFromSticky::install(&system);
    let mut setter = tos.setter();
    setter.set().unwrap();
    for k in 2..=5 {
        let mut t = tos.tester(ProcessId::new(k));
        assert!(t.test().unwrap());
    }
    assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
    system.shutdown();
}
