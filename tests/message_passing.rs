//! E6 — the paper's message-passing corollary (§1, §11).
//!
//! SWMR registers exist in signature-free Byzantine message-passing systems
//! with `n > 3f` (Mostéfaoui–Petrolia–Raynal–Jard, cited as [11]), therefore
//! so do verifiable/authenticated/sticky registers. Here the corollary is
//! *executed*: the emulated register is checked for atomicity under faults,
//! and Algorithms 1 and 3 run unchanged over [`byzreg::mp::MpFactory`].

use std::time::Duration;

use byzreg::core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg::core::{AuthenticatedRegister, Family, StickyRegister, VerifiableRegister};
use byzreg::mp::{MpConfig, MpFactory, MpRegister, Msg, NetConfig};
use byzreg::runtime::{ProcessId, System};
use byzreg::spec::linearize::check;
use byzreg::spec::registers::{RegInv, RegResp, SwmrSpec};
use byzreg_runtime::{CompleteOp, OpToken};

/// The emulated SWMR register is linearizable under concurrent readers and
/// a writer, with a Byzantine node flooding fabricated protocol messages.
#[test]
fn emulated_register_is_linearizable_under_attack() {
    let mut config = MpConfig::new(4);
    config.byzantine = vec![ProcessId::new(4)];
    config.net = NetConfig::jittery(Duration::from_micros(300), 99);
    let reg = MpRegister::spawn(&config, 0u32);
    let byz = reg.byzantine_endpoint(ProcessId::new(4));

    // Adversary: floods fabricated echoes/valids/states.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = std::sync::Arc::clone(&stop);
    let attacker = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            byz.broadcast(Msg::Echo { sn: 1_000 + i, v: 66u32 });
            byz.broadcast(Msg::Valid { sn: 2_000 + i, v: 67u32 });
            byz.broadcast(Msg::State { rid: i % 8, ts: 9_999, v: 68u32 });
            i += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    // Record a small concurrent history with a shared logical clock.
    let clock = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(1));
    let tick = {
        let c = std::sync::Arc::clone(&clock);
        move || c.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
    };

    let mut ops: Vec<CompleteOp<RegInv<u32>, RegResp<u32>>> = Vec::new();
    let ops_mutex = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));

    let writer = reg.client(ProcessId::new(1));
    let r2 = reg.client(ProcessId::new(2));
    let r3 = reg.client(ProcessId::new(3));

    let mut handles = Vec::new();
    {
        let ops_mutex = std::sync::Arc::clone(&ops_mutex);
        let tick = tick.clone();
        handles.push(std::thread::spawn(move || {
            for v in 1..=5u32 {
                let t0 = tick();
                writer.write(v);
                let t1 = tick();
                ops_mutex.lock().unwrap().push((t0, t1, RegInv::Write(v), RegResp::Done));
            }
        }));
    }
    for client in [r2, r3] {
        let ops_mutex = std::sync::Arc::clone(&ops_mutex);
        let tick = tick.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let t0 = tick();
                let (_, v) = client.read();
                let t1 = tick();
                ops_mutex.lock().unwrap().push((t0, t1, RegInv::Read, RegResp::ReadValue(v)));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    attacker.join().unwrap();

    for (i, (t0, t1, inv, resp)) in ops_mutex.lock().unwrap().drain(..).enumerate() {
        ops.push(CompleteOp {
            op: OpToken::synthetic(i as u64),
            pid: ProcessId::new(1),
            invoked_at: t0,
            responded_at: t1,
            invocation: inv,
            response: resp,
        });
    }
    let outcome = check(&SwmrSpec { v0: 0u32 }, &ops);
    assert!(outcome.is_linearizable(), "MP register history not linearizable: {ops:?}");
    reg.shutdown();
}

/// All three register families run unchanged over the MP substrate: one
/// generic workload through the `SignatureRegister` trait layer, with the
/// base registers sourced from `MpFactory` — every shared-memory step
/// becomes a quorum round trip.
fn family_over_message_passing<R: SignatureRegister<u32>>() {
    let fam = R::FAMILY;
    let system = System::builder(4).build();
    let factory = MpFactory::default();
    let reg = R::install_with_factory(&system, 0, &factory);
    assert!(factory.spawned() > 0, "{fam}: base registers must be MP emulations");
    let mut w = reg.signer();
    let mut r = reg.verifier(ProcessId::new(2));

    w.write_value(7).unwrap();
    if fam == Family::Verifiable {
        assert!(!r.verify_value(&7).unwrap(), "verifiable: written but unsigned");
    }
    assert!(w.sign_value(&7).unwrap());
    assert_eq!(r.read_value().unwrap(), Some(7), "{fam} over MP");
    assert!(r.verify_value(&7).unwrap(), "{fam} over MP");
    let mut r3 = reg.verifier(ProcessId::new(3));
    assert!(r3.verify_value(&7).unwrap(), "{fam}: relay holds over message passing too");

    // Second write: sticky ignores it, the others follow it.
    w.write_value(9).unwrap();
    let expect = if fam == Family::Sticky { Some(7) } else { Some(9) };
    assert_eq!(r.read_value().unwrap(), expect, "{fam} over MP after rewrite");
    system.shutdown();
}

/// Algorithm 1 (verifiable register) runs unchanged over the MP substrate.
#[test]
fn verifiable_register_over_message_passing() {
    family_over_message_passing::<VerifiableRegister<u32>>();
}

/// Algorithm 2 (authenticated register) runs unchanged over the MP substrate.
#[test]
fn authenticated_register_over_message_passing() {
    family_over_message_passing::<AuthenticatedRegister<u32>>();
}

/// Algorithm 3 (sticky register) runs unchanged over the MP substrate.
#[test]
fn sticky_register_over_message_passing() {
    family_over_message_passing::<StickyRegister<u32>>();
}
