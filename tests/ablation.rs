//! Ablation experiments for the design choices the paper motivates in
//! prose. Each ablation removes one mechanism and demonstrates the anomaly
//! the mechanism exists to prevent.

use byzreg::core::{attacks, StickyRegister, VerifiableRegister};
use byzreg::runtime::{ProcessId, Scheduling, System};
use byzreg::spec::linearize::check;
use byzreg::spec::monitors::sticky_monitor;
use byzreg::spec::registers::StickySpec;

/// Builds the §9.1 ablation arena: `n = 7, f = 2`, with the two declared
/// Byzantine processes running the `bottom_pusher` attack (always reply `⊥`
/// with fresh round numbers). The adversary controls the schedule in the
/// paper's model; the pushers supply `f` of the `f + 1` `⊥`-votes a reader
/// needs, which makes the (scheduler-dependent) anomaly window wide enough
/// to observe reliably.
fn pusher_arena(seed: u64) -> (System, StickyRegister<u32>) {
    let system = System::builder(7)
        .scheduling(Scheduling::Chaotic(seed))
        .byzantine(ProcessId::new(6))
        .byzantine(ProcessId::new(7))
        .build();
    let reg = StickyRegister::install(&system);
    for k in [6, 7] {
        let ports = reg.attack_ports(ProcessId::new(k));
        system.spawn_byzantine(ProcessId::new(k), attacks::sticky::bottom_pusher::<u32>(ports));
    }
    (system, reg)
}

/// §9.1: without the `n − f` witness wait, a `Read` invoked *after* a
/// completed `Write(v)` can return `⊥` — the exact anomaly the paper warns
/// about. We hunt for it across seeds; it must be observable, and every
/// occurrence must be flagged as an Obs. 22 violation by the monitor.
#[test]
fn sticky_write_without_wait_exhibits_bottom_after_write() {
    let mut anomaly_seen = false;
    for seed in 0..200u64 {
        let (system, reg) = pusher_arena(seed);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write_without_witness_wait(5u32).unwrap();
        let got = r.read().unwrap();
        system.shutdown();
        if got.is_none() {
            anomaly_seen = true;
            // The monitor must catch the violation in the recorded history.
            let ops = reg.history().complete_ops();
            let violation = sticky_monitor(&ops)
                .expect_err("a ⊥ read after a completed write violates Obs. 22");
            assert_eq!(violation.property, "Obs. 22 (validity)");
            // And the full checker agrees.
            assert!(
                !check(&StickySpec::<u32>::new(), &ops).is_linearizable(),
                "⊥ after a completed write must not linearize"
            );
            break;
        }
    }
    assert!(
        anomaly_seen,
        "the §9.1 anomaly never surfaced in 200 seeds — the ablation claim \
         could not be demonstrated on this machine"
    );
}

/// Control for the ablation: with the real `Write` (witness wait included),
/// the same adversary and schedule hunt finds no anomaly.
#[test]
fn sticky_write_with_wait_never_reads_bottom() {
    for seed in 0..40u64 {
        let (system, reg) = pusher_arena(seed);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(5u32).unwrap();
        let got = r.read().unwrap();
        system.shutdown();
        assert_eq!(got, Some(5), "seed {seed}: Obs. 22 must hold with the wait");
        assert!(sticky_monitor(&reg.history().complete_ops()).is_ok());
    }
}

/// §5.1 ablation (analytic): the paper explains that a verifier that waits
/// for the first `2f + 1` of `3f + 1` replies and answers from a single
/// poll cannot respect relay. The shipped `Verify` instead never un-asks a
/// "yes" (`set1` is non-decreasing) and re-asks "no" voters after every
/// "yes". This test pins the mechanism: a verify that returned true keeps
/// returning true even while `f` Byzantine helpers flip their votes on
/// every round (the bind scenario).
#[test]
fn set1_monotonicity_defeats_the_bind() {
    use byzreg::core::attacks;
    let system =
        System::builder(4).scheduling(Scheduling::Chaotic(7)).byzantine(ProcessId::new(4)).build();
    let reg = VerifiableRegister::install(&system, 0u32);
    let ports = reg.attack_ports(ProcessId::new(4));
    system.spawn_byzantine(ProcessId::new(4), attacks::verifiable::vote_flipper(ports, 5));
    let mut w = reg.writer();
    w.write(5).unwrap();
    w.sign(&5).unwrap();
    let mut r2 = reg.reader(ProcessId::new(2));
    let mut r3 = reg.reader(ProcessId::new(3));
    assert!(r2.verify(&5).unwrap());
    // 20 subsequent verifies by both readers, interleaved with the flipper:
    // all must return true (Obs. 13), and all must terminate.
    for _ in 0..10 {
        assert!(r2.verify(&5).unwrap());
        assert!(r3.verify(&5).unwrap());
    }
    system.shutdown();
}
