//! Linear-time property monitors for the paper's Observations.
//!
//! The full linearizability checker ([`crate::linearize`]) is exponential in
//! the worst case and limited to small histories. These monitors check, in
//! `O(ops²)` or better, the *derived properties* the paper states for each
//! register type — including the properties that hold **even when the writer
//! is Byzantine** (relay, uniqueness), which makes them the workhorse oracle
//! for randomized adversarial testing:
//!
//! | Register | Observation | Monitor |
//! |----------|-------------|---------|
//! | verifiable | 11 validity | [`verifiable_monitor`] (correct writer) |
//! | verifiable | 12 unforgeability | [`verifiable_monitor`] (correct writer) |
//! | verifiable | 13 relay | [`verifiable_relay`] (any writer) |
//! | authenticated | 16–17 | [`authenticated_monitor`] (correct writer) |
//! | authenticated | 18 relay, 19 read-implies-verify | [`authenticated_relay`] (any writer) |
//! | sticky | 22–23 | [`sticky_monitor`] (correct writer) |
//! | sticky | 24 uniqueness | [`sticky_uniqueness`] (any writer) |
//! | test-or-set | Lemma 28(1–3) | [`test_or_set_monitor`] |

use std::fmt;

use byzreg_runtime::CompleteOp;
use byzreg_runtime::Value;

use crate::registers::{
    AuthInv, AuthResp, StickyInv, StickyResp, TosInv, TosResp, VerInv, VerResp,
};

/// A property violation, with a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The property that failed (e.g. `"Obs. 13 (relay)"`).
    pub property: &'static str,
    /// What happened.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.property, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Result alias for monitors.
pub type MonitorResult = Result<(), Violation>;

fn violation(property: &'static str, detail: String) -> MonitorResult {
    Err(Violation { property, detail })
}

// ---------------------------------------------------------------------------
// Verifiable register
// ---------------------------------------------------------------------------

/// Obs. 13 (relay): if a `Verify(v)` returns `true`, every `Verify(v)`
/// invoked after its response also returns `true`. Holds for **any** writer.
pub fn verifiable_relay<V: Value>(ops: &[CompleteOp<VerInv<V>, VerResp<V>>]) -> MonitorResult {
    for a in ops {
        let (VerInv::Verify(v), VerResp::VerifyResult(true)) = (&a.invocation, &a.response) else {
            continue;
        };
        for b in ops {
            if let (VerInv::Verify(w), VerResp::VerifyResult(false)) = (&b.invocation, &b.response)
            {
                if w == v && a.responded_at < b.invoked_at {
                    return violation(
                        "Obs. 13 (relay)",
                        format!(
                            "{}'s Verify({v:?}) -> true at t={} but {}'s later Verify (t={}) -> false",
                            a.pid, a.responded_at, b.pid, b.invoked_at
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Obs. 11 (validity) + Obs. 12 (unforgeability) + write/read sanity, for
/// histories whose writer is **correct** (its ops are in the history).
pub fn verifiable_monitor<V: Value>(ops: &[CompleteOp<VerInv<V>, VerResp<V>>]) -> MonitorResult {
    verifiable_relay(ops)?;
    for a in ops {
        match (&a.invocation, &a.response) {
            // Obs. 11: successful Sign(v) => all later Verify(v) true.
            (VerInv::Sign(v), VerResp::SignResult(true)) => {
                for b in ops {
                    if let (VerInv::Verify(w), VerResp::VerifyResult(false)) =
                        (&b.invocation, &b.response)
                    {
                        if w == v && a.responded_at < b.invoked_at {
                            return violation(
                                "Obs. 11 (validity)",
                                format!(
                                    "Sign({v:?}) succeeded at t={} but {}'s later Verify -> false",
                                    a.responded_at, b.pid
                                ),
                            );
                        }
                    }
                }
            }
            // Obs. 12: Verify(v) -> true => some Sign(v) -> success was
            // invoked before the Verify responded (Corollary 61: precedes or
            // concurrent).
            (VerInv::Verify(v), VerResp::VerifyResult(true)) => {
                let justified = ops.iter().any(|s| {
                    matches!(
                        (&s.invocation, &s.response),
                        (VerInv::Sign(w), VerResp::SignResult(true)) if w == v
                    ) && s.invoked_at < a.responded_at
                });
                if !justified {
                    return violation(
                        "Obs. 12 (unforgeability)",
                        format!(
                            "{}'s Verify({v:?}) -> true with no successful Sign({v:?}) invoked before t={}",
                            a.pid, a.responded_at
                        ),
                    );
                }
            }
            // Definition 10: Sign(v) succeeds iff a Write(v) precedes it.
            (VerInv::Sign(v), VerResp::SignResult(false)) => {
                let written_before = ops.iter().any(|w| {
                    matches!((&w.invocation, &w.response), (VerInv::Write(x), VerResp::Done) if x == v)
                        && w.responded_at < a.invoked_at
                });
                if written_before {
                    return violation(
                        "Def. 10 (sign)",
                        format!("Sign({v:?}) failed although Write({v:?}) preceded it"),
                    );
                }
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Authenticated register
// ---------------------------------------------------------------------------

/// Obs. 18 (relay) + Obs. 19 (a `Read` returning `v` implies later
/// `Verify(v)` return `true`). Holds for **any** writer.
pub fn authenticated_relay<V: Value>(ops: &[CompleteOp<AuthInv<V>, AuthResp<V>>]) -> MonitorResult {
    for a in ops {
        let verified_value: Option<&V> = match (&a.invocation, &a.response) {
            (AuthInv::Verify(v), AuthResp::VerifyResult(true)) => Some(v),
            // Obs. 19: a Read that returns v certifies v just like a Verify.
            (AuthInv::Read, AuthResp::ReadValue(v)) => Some(v),
            _ => None,
        };
        let Some(v) = verified_value else { continue };
        for b in ops {
            if let (AuthInv::Verify(w), AuthResp::VerifyResult(false)) =
                (&b.invocation, &b.response)
            {
                if w == v && a.responded_at < b.invoked_at {
                    let kind = if matches!(a.invocation, AuthInv::Read) {
                        "Obs. 19 (read implies verify)"
                    } else {
                        "Obs. 18 (relay)"
                    };
                    return violation(
                        kind,
                        format!(
                            "{}'s {:?} certified {v:?} at t={} but {}'s later Verify -> false",
                            a.pid, a.invocation, a.responded_at, b.pid
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Obs. 16 (validity) + Obs. 17 (unforgeability) for histories whose writer
/// is **correct**. `v0` is the register's initial value.
pub fn authenticated_monitor<V: Value>(
    v0: &V,
    ops: &[CompleteOp<AuthInv<V>, AuthResp<V>>],
) -> MonitorResult {
    authenticated_relay(ops)?;
    for a in ops {
        match (&a.invocation, &a.response) {
            // Obs. 16: Write(v) completed => all later Verify(v) true.
            (AuthInv::Write(v), AuthResp::Done) => {
                for b in ops {
                    if let (AuthInv::Verify(w), AuthResp::VerifyResult(false)) =
                        (&b.invocation, &b.response)
                    {
                        if w == v && a.responded_at < b.invoked_at {
                            return violation(
                                "Obs. 16 (validity)",
                                format!(
                                    "Write({v:?}) completed at t={} but {}'s later Verify -> false",
                                    a.responded_at, b.pid
                                ),
                            );
                        }
                    }
                }
            }
            // Obs. 17: Verify(v) -> true => v = v0 or Write(v) invoked before
            // the response.
            (AuthInv::Verify(v), AuthResp::VerifyResult(true)) if v != v0 => {
                let justified = ops.iter().any(|w| {
                    matches!(
                        (&w.invocation, &w.response),
                        (AuthInv::Write(x), AuthResp::Done) if x == v
                    ) && w.invoked_at < a.responded_at
                });
                if !justified {
                    return violation(
                        "Obs. 17 (unforgeability)",
                        format!(
                            "{}'s Verify({v:?}) -> true with no Write({v:?}) invoked before t={}",
                            a.pid, a.responded_at
                        ),
                    );
                }
            }
            // Reads must return a written value or v0 (weak regularity; the
            // full checker handles exact freshness).
            (AuthInv::Read, AuthResp::ReadValue(v)) if v != v0 => {
                let ever_written = ops.iter().any(|w| {
                    matches!(
                        (&w.invocation, &w.response),
                        (AuthInv::Write(x), AuthResp::Done) if x == v
                    ) && w.invoked_at < a.responded_at
                });
                if !ever_written {
                    return violation(
                        "Def. 15 (read)",
                        format!("{}'s Read returned never-written {v:?}", a.pid),
                    );
                }
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Sticky register
// ---------------------------------------------------------------------------

/// Obs. 24 (uniqueness) + Corollary 182 (all non-`⊥` reads agree, even
/// concurrent ones). Holds for **any** writer.
pub fn sticky_uniqueness<V: Value>(
    ops: &[CompleteOp<StickyInv<V>, StickyResp<V>>],
) -> MonitorResult {
    let mut first_value: Option<&V> = None;
    for a in ops {
        if let (StickyInv::Read, StickyResp::ReadValue(Some(v))) = (&a.invocation, &a.response) {
            match first_value {
                None => first_value = Some(v),
                Some(w) if w == v => {}
                Some(w) => {
                    return violation(
                        "Cor. 182 (agreement)",
                        format!("two reads returned different non-⊥ values {w:?} and {v:?}"),
                    );
                }
            }
        }
    }
    // Obs. 24: once a read returns v, later reads cannot return ⊥.
    for a in ops {
        let (StickyInv::Read, StickyResp::ReadValue(Some(v))) = (&a.invocation, &a.response) else {
            continue;
        };
        for b in ops {
            if let (StickyInv::Read, StickyResp::ReadValue(None)) = (&b.invocation, &b.response) {
                if a.responded_at < b.invoked_at {
                    return violation(
                        "Obs. 24 (uniqueness)",
                        format!(
                            "{}'s Read -> {v:?} at t={} but {}'s later Read -> ⊥",
                            a.pid, a.responded_at, b.pid
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Obs. 22 (validity) + Obs. 23 (unforgeability) for histories whose writer
/// is **correct**.
pub fn sticky_monitor<V: Value>(ops: &[CompleteOp<StickyInv<V>, StickyResp<V>>]) -> MonitorResult {
    sticky_uniqueness(ops)?;
    // The first write (by invocation order; the correct writer is sequential).
    let first_write = ops
        .iter()
        .filter(|o| matches!(o.invocation, StickyInv::Write(_)))
        .min_by_key(|o| o.invoked_at);
    for a in ops {
        match (&a.invocation, &a.response) {
            (StickyInv::Read, StickyResp::ReadValue(Some(v))) => {
                // Obs. 23: the value must be that of the first write, and the
                // write must have been invoked before the read responded.
                match first_write {
                    Some(w) => {
                        let StickyInv::Write(fv) = &w.invocation else { unreachable!() };
                        if fv != v {
                            return violation(
                                "Obs. 23 (unforgeability)",
                                format!("Read -> {v:?} but the first Write wrote {fv:?}"),
                            );
                        }
                        if w.invoked_at >= a.responded_at {
                            return violation(
                                "Obs. 23 (unforgeability)",
                                format!("Read -> {v:?} responded before Write({v:?}) was invoked"),
                            );
                        }
                    }
                    None => {
                        return violation(
                            "Obs. 23 (unforgeability)",
                            format!("Read -> {v:?} but the writer never wrote"),
                        );
                    }
                }
            }
            (StickyInv::Read, StickyResp::ReadValue(None)) => {
                // Def. 21: ⊥ only if no completed Write precedes the Read.
                if let Some(w) = first_write {
                    if w.responded_at < a.invoked_at {
                        return violation(
                            "Obs. 22 (validity)",
                            format!(
                                "{}'s Read -> ⊥ at t={} although the first Write completed at t={}",
                                a.pid, a.invoked_at, w.responded_at
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Test-or-set
// ---------------------------------------------------------------------------

/// Lemma 28 for one-shot test-or-set histories of correct processes.
///
/// `setter_correct` states whether the setter is in the correct set (its
/// `Set`, if any, is then part of `ops`).
pub fn test_or_set_monitor(
    setter_correct: bool,
    ops: &[CompleteOp<TosInv, TosResp>],
) -> MonitorResult {
    let set_op = ops.iter().find(|o| matches!(o.invocation, TosInv::Set));
    for a in ops {
        let (TosInv::Test, TosResp::TestResult(r)) = (&a.invocation, &a.response) else {
            continue;
        };
        if setter_correct {
            match (set_op, r) {
                // Lemma 28(1): Set precedes Test => Test returns 1.
                (Some(s), false) if s.responded_at < a.invoked_at => {
                    return violation(
                        "Lemma 28(1)",
                        format!(
                            "Set completed at t={} but {}'s later Test -> 0",
                            s.responded_at, a.pid
                        ),
                    );
                }
                // Lemma 28(2): Test -> 1 => Set invoked before the response.
                (Some(s), true) if s.invoked_at >= a.responded_at => {
                    return violation(
                        "Lemma 28(2)",
                        format!(
                            "{}'s Test -> 1 at t={} before Set was invoked (t={})",
                            a.pid, a.responded_at, s.invoked_at
                        ),
                    );
                }
                (None, true) => {
                    return violation(
                        "Lemma 28(2)",
                        format!("{}'s Test -> 1 but the correct setter never invoked Set", a.pid),
                    );
                }
                _ => {}
            }
        }
        // Lemma 28(3): Test -> 1 preceding Test' => Test' -> 1.
        if *r {
            for b in ops {
                if let (TosInv::Test, TosResp::TestResult(false)) = (&b.invocation, &b.response) {
                    if a.responded_at < b.invoked_at {
                        return violation(
                            "Lemma 28(3)",
                            format!(
                                "{}'s Test -> 1 at t={} but {}'s later Test -> 0",
                                a.pid, a.responded_at, b.pid
                            ),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{OpToken, ProcessId};

    fn op<I, R>(pid: usize, t0: u64, t1: u64, inv: I, resp: R) -> CompleteOp<I, R> {
        CompleteOp {
            op: OpToken::default(),
            pid: ProcessId::new(pid),
            invoked_at: t0,
            responded_at: t1,
            invocation: inv,
            response: resp,
        }
    }

    #[test]
    fn relay_violation_detected() {
        let ops = vec![
            op(2, 1, 2, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
            op(3, 3, 4, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
        ];
        let err = verifiable_relay(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 13 (relay)");
    }

    #[test]
    fn relay_allows_concurrent_disagreement() {
        // A false Verify *concurrent* with the first true Verify is fine.
        let ops = vec![
            op(2, 1, 10, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
            op(3, 2, 9, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
        ];
        assert!(verifiable_relay(&ops).is_ok());
    }

    #[test]
    fn validity_violation_detected() {
        let ops = vec![
            op(1, 1, 2, VerInv::Write(7u32), VerResp::Done),
            op(1, 3, 4, VerInv::Sign(7u32), VerResp::SignResult(true)),
            op(2, 5, 6, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
        ];
        let err = verifiable_monitor(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 11 (validity)");
    }

    #[test]
    fn unforgeability_violation_detected() {
        let ops = vec![op(2, 1, 2, VerInv::Verify(9u32), VerResp::VerifyResult(true))];
        let err = verifiable_monitor(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 12 (unforgeability)");
    }

    #[test]
    fn clean_verifiable_history_passes() {
        let ops = vec![
            op(1, 1, 2, VerInv::Write(7u32), VerResp::Done),
            op(2, 3, 4, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
            op(1, 5, 6, VerInv::Sign(7u32), VerResp::SignResult(true)),
            op(2, 7, 8, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
            op(3, 9, 10, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
        ];
        assert!(verifiable_monitor(&ops).is_ok());
    }

    #[test]
    fn authenticated_read_then_failed_verify_is_obs19_violation() {
        let ops = vec![
            op(2, 1, 2, AuthInv::Read, AuthResp::ReadValue(4u32)),
            op(3, 3, 4, AuthInv::Verify(4u32), AuthResp::VerifyResult(false)),
        ];
        let err = authenticated_relay(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 19 (read implies verify)");
    }

    #[test]
    fn authenticated_monitor_accepts_v0_verifies() {
        let ops = vec![op(2, 1, 2, AuthInv::Verify(0u32), AuthResp::VerifyResult(true))];
        assert!(authenticated_monitor(&0, &ops).is_ok());
    }

    #[test]
    fn sticky_disagreement_detected() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(Some(1u32))),
            op(3, 1, 2, StickyInv::Read, StickyResp::ReadValue(Some(2u32))),
        ];
        let err = sticky_uniqueness(&ops).unwrap_err();
        assert_eq!(err.property, "Cor. 182 (agreement)");
    }

    #[test]
    fn sticky_bottom_after_value_detected() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(Some(1u32))),
            op(3, 3, 4, StickyInv::Read, StickyResp::ReadValue(None)),
        ];
        let err = sticky_uniqueness(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 24 (uniqueness)");
    }

    #[test]
    fn sticky_monitor_checks_first_write_value() {
        let ops = vec![
            op(1, 1, 2, StickyInv::Write(1u32), StickyResp::Done),
            op(1, 3, 4, StickyInv::Write(2u32), StickyResp::Done),
            op(2, 5, 6, StickyInv::Read, StickyResp::ReadValue(Some(2u32))),
        ];
        let err = sticky_monitor(&ops).unwrap_err();
        assert_eq!(err.property, "Obs. 23 (unforgeability)");
    }

    #[test]
    fn sticky_monitor_accepts_correct_history() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(None)),
            op(1, 3, 6, StickyInv::Write(1u32), StickyResp::Done),
            op(2, 7, 8, StickyInv::Read, StickyResp::ReadValue(Some(1u32))),
        ];
        assert!(sticky_monitor(&ops).is_ok());
    }

    #[test]
    fn lemma_28_cases() {
        // (1) Set completed, later Test -> 0.
        let ops = vec![
            op(1, 1, 2, TosInv::Set, TosResp::Done),
            op(2, 3, 4, TosInv::Test, TosResp::TestResult(false)),
        ];
        assert_eq!(test_or_set_monitor(true, &ops).unwrap_err().property, "Lemma 28(1)");

        // (2) Test -> 1 with no Set by the correct setter.
        let ops = vec![op(2, 1, 2, TosInv::Test, TosResp::TestResult(true))];
        assert_eq!(test_or_set_monitor(true, &ops).unwrap_err().property, "Lemma 28(2)");
        // ... but with a Byzantine setter that is allowed.
        assert!(test_or_set_monitor(false, &ops).is_ok());

        // (3) relay between testers, regardless of the setter.
        let ops = vec![
            op(2, 1, 2, TosInv::Test, TosResp::TestResult(true)),
            op(3, 3, 4, TosInv::Test, TosResp::TestResult(false)),
        ];
        assert_eq!(test_or_set_monitor(false, &ops).unwrap_err().property, "Lemma 28(3)");
    }
}
