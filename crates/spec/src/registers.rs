//! Sequential specifications of the paper's objects.
//!
//! * [`VerifiableSpec`] — Definition 10 (SWMR verifiable register),
//! * [`AuthenticatedSpec`] — Definition 15 (SWMR authenticated register),
//! * [`StickySpec`] — Definition 21 (SWMR sticky register),
//! * [`TestOrSetSpec`] — Definition 26 (test-or-set),
//! * [`SwmrSpec`] — a plain atomic SWMR register (used to validate the
//!   message-passing emulation of `byzreg-mp`).

use std::collections::BTreeSet;

use crate::sequential::SequentialSpec;
use byzreg_runtime::Value;

// ---------------------------------------------------------------------------
// Verifiable register (Definition 10)
// ---------------------------------------------------------------------------

/// Invocations of a verifiable register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum VerInv<V> {
    /// `Write(v)` by the writer.
    Write(V),
    /// `Read` by any reader.
    Read,
    /// `Sign(v)` by the writer.
    Sign(V),
    /// `Verify(v)` by any reader.
    Verify(V),
}

/// Responses of a verifiable register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum VerResp<V> {
    /// `Write` returned `done`.
    Done,
    /// Value returned by `Read`.
    ReadValue(V),
    /// `true` ⇔ `success` for `Sign`.
    SignResult(bool),
    /// Result of `Verify`.
    VerifyResult(bool),
}

/// Definition 10: the sequential specification of a multivalued SWMR
/// verifiable register with initial value `v0`.
#[derive(Clone, Debug)]
pub struct VerifiableSpec<V> {
    /// The initial value `v0 ∈ V`.
    pub v0: V,
}

/// State of [`VerifiableSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VerState<V: Ord> {
    /// Last written value (or `v0`).
    pub current: V,
    /// Values written so far.
    pub written: BTreeSet<V>,
    /// Values signed so far (via a `Sign` that returned `success`).
    pub signed: BTreeSet<V>,
}

impl<V: Value> SequentialSpec for VerifiableSpec<V> {
    type Invocation = VerInv<V>;
    type Response = VerResp<V>;
    type State = VerState<V>;

    fn initial(&self) -> Self::State {
        VerState { current: self.v0.clone(), written: BTreeSet::new(), signed: BTreeSet::new() }
    }

    fn apply(&self, s: &Self::State, inv: &VerInv<V>, resp: &VerResp<V>) -> Option<Self::State> {
        match (inv, resp) {
            (VerInv::Write(v), VerResp::Done) => {
                let mut s = s.clone();
                s.current = v.clone();
                s.written.insert(v.clone());
                Some(s)
            }
            (VerInv::Read, VerResp::ReadValue(v)) => (*v == s.current).then(|| s.clone()),
            (VerInv::Sign(v), VerResp::SignResult(success)) => {
                // A Sign(v) returns success iff there is a Write(v) before it.
                if *success != s.written.contains(v) {
                    return None;
                }
                let mut s = s.clone();
                if *success {
                    s.signed.insert(v.clone());
                }
                Some(s)
            }
            (VerInv::Verify(v), VerResp::VerifyResult(b)) => {
                // Verify(v) returns true iff a successful Sign(v) precedes it.
                (*b == s.signed.contains(v)).then(|| s.clone())
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Authenticated register (Definition 15)
// ---------------------------------------------------------------------------

/// Invocations of an authenticated register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AuthInv<V> {
    /// `Write(v)` by the writer (atomically "signed").
    Write(V),
    /// `Read` by any reader.
    Read,
    /// `Verify(v)` by any reader.
    Verify(V),
}

/// Responses of an authenticated register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AuthResp<V> {
    /// `Write` returned `done`.
    Done,
    /// Value returned by `Read`.
    ReadValue(V),
    /// Result of `Verify`.
    VerifyResult(bool),
}

/// Definition 15: the sequential specification of a multivalued SWMR
/// authenticated register with initial value `v0` (deemed "signed").
#[derive(Clone, Debug)]
pub struct AuthenticatedSpec<V> {
    /// The initial value `v0 ∈ V`.
    pub v0: V,
}

/// State of [`AuthenticatedSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AuthState<V: Ord> {
    /// Last written value (or `v0`).
    pub current: V,
    /// Values written so far; contains `v0` from the start.
    pub written: BTreeSet<V>,
}

impl<V: Value> SequentialSpec for AuthenticatedSpec<V> {
    type Invocation = AuthInv<V>;
    type Response = AuthResp<V>;
    type State = AuthState<V>;

    fn initial(&self) -> Self::State {
        let mut written = BTreeSet::new();
        written.insert(self.v0.clone());
        AuthState { current: self.v0.clone(), written }
    }

    fn apply(&self, s: &Self::State, inv: &AuthInv<V>, resp: &AuthResp<V>) -> Option<Self::State> {
        match (inv, resp) {
            (AuthInv::Write(v), AuthResp::Done) => {
                let mut s = s.clone();
                s.current = v.clone();
                s.written.insert(v.clone());
                Some(s)
            }
            (AuthInv::Read, AuthResp::ReadValue(v)) => (*v == s.current).then(|| s.clone()),
            (AuthInv::Verify(v), AuthResp::VerifyResult(b)) => {
                // Verify(v) is true iff v was written before it or v = v0.
                (*b == s.written.contains(v)).then(|| s.clone())
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Sticky register (Definition 21)
// ---------------------------------------------------------------------------

/// Invocations of a sticky register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StickyInv<V> {
    /// `Write(v)` by the writer (`v ∈ V`, never `⊥`).
    Write(V),
    /// `Read` by any reader.
    Read,
}

/// Responses of a sticky register. `Read` may return `None` = `⊥`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StickyResp<V> {
    /// `Write` returned `done`.
    Done,
    /// Value returned by `Read`; `None` encodes `⊥`.
    ReadValue(Option<V>),
}

/// Definition 21: the sequential specification of a multivalued SWMR sticky
/// register, initialized to `⊥ ∉ V` (encoded as `None`).
#[derive(Clone, Debug)]
pub struct StickySpec<V> {
    _marker: std::marker::PhantomData<V>,
}

impl<V> Default for StickySpec<V> {
    fn default() -> Self {
        StickySpec { _marker: std::marker::PhantomData }
    }
}

impl<V> StickySpec<V> {
    /// Creates the spec (the initial value is always `⊥`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<V: Value> SequentialSpec for StickySpec<V> {
    type Invocation = StickyInv<V>;
    type Response = StickyResp<V>;
    type State = Option<V>;

    fn initial(&self) -> Self::State {
        None
    }

    fn apply(
        &self,
        s: &Self::State,
        inv: &StickyInv<V>,
        resp: &StickyResp<V>,
    ) -> Option<Self::State> {
        match (inv, resp) {
            (StickyInv::Write(v), StickyResp::Done) => {
                // Only the first write takes effect; later writes are no-ops.
                Some(s.clone().or_else(|| Some(v.clone())))
            }
            (StickyInv::Read, StickyResp::ReadValue(r)) => (r == s).then(|| s.clone()),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Test-or-set (Definition 26)
// ---------------------------------------------------------------------------

/// Invocations of a test-or-set object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TosInv {
    /// `Set` by the setter.
    Set,
    /// `Test` by any tester.
    Test,
}

/// Responses of a test-or-set object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TosResp {
    /// `Set` completed.
    Done,
    /// `Test` returned `1` (`true`) or `0` (`false`).
    TestResult(bool),
}

/// Definition 26: a register initialized to 0, settable to 1 by a single
/// process; `Test` returns 1 iff a `Set` occurs before it.
#[derive(Clone, Copy, Debug, Default)]
pub struct TestOrSetSpec;

impl SequentialSpec for TestOrSetSpec {
    type Invocation = TosInv;
    type Response = TosResp;
    type State = bool;

    fn initial(&self) -> Self::State {
        false
    }

    fn apply(&self, s: &bool, inv: &TosInv, resp: &TosResp) -> Option<bool> {
        match (inv, resp) {
            (TosInv::Set, TosResp::Done) => Some(true),
            (TosInv::Test, TosResp::TestResult(b)) => (b == s).then_some(*s),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Plain SWMR register
// ---------------------------------------------------------------------------

/// Invocations of a plain atomic SWMR register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegInv<V> {
    /// `Write(v)` by the writer.
    Write(V),
    /// `Read` by any reader.
    Read,
}

/// Responses of a plain atomic SWMR register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegResp<V> {
    /// `Write` completed.
    Done,
    /// Value returned by `Read`.
    ReadValue(V),
}

/// Sequential specification of a plain atomic SWMR register with initial
/// value `v0`; used to validate the message-passing register emulation.
#[derive(Clone, Debug)]
pub struct SwmrSpec<V> {
    /// The initial value.
    pub v0: V,
}

impl<V: Value> SequentialSpec for SwmrSpec<V> {
    type Invocation = RegInv<V>;
    type Response = RegResp<V>;
    type State = V;

    fn initial(&self) -> Self::State {
        self.v0.clone()
    }

    fn apply(&self, s: &V, inv: &RegInv<V>, resp: &RegResp<V>) -> Option<V> {
        match (inv, resp) {
            (RegInv::Write(v), RegResp::Done) => Some(v.clone()),
            (RegInv::Read, RegResp::ReadValue(v)) => (v == s).then(|| s.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_sequence;

    #[test]
    fn verifiable_sign_requires_prior_write() {
        let spec = VerifiableSpec { v0: 0u32 };
        // Sign(5) must fail before Write(5).
        assert!(run_sequence(&spec, vec![(VerInv::Sign(5), VerResp::SignResult(true))]).is_none());
        assert!(run_sequence(&spec, vec![(VerInv::Sign(5), VerResp::SignResult(false))]).is_some());
        assert!(run_sequence(
            &spec,
            vec![
                (VerInv::Write(5), VerResp::Done),
                (VerInv::Sign(5), VerResp::SignResult(true)),
                (VerInv::Verify(5), VerResp::VerifyResult(true)),
            ]
        )
        .is_some());
    }

    #[test]
    fn verifiable_verify_requires_prior_sign_not_just_write() {
        let spec = VerifiableSpec { v0: 0u32 };
        assert!(run_sequence(
            &spec,
            vec![
                (VerInv::Write(5), VerResp::Done),
                (VerInv::Verify(5), VerResp::VerifyResult(true)), // not signed yet!
            ]
        )
        .is_none());
    }

    #[test]
    fn verifiable_writer_can_sign_older_values() {
        // §4: "it is allowed to sign any of the values that it previously
        // wrote, even older ones."
        let spec = VerifiableSpec { v0: 0u32 };
        assert!(run_sequence(
            &spec,
            vec![
                (VerInv::Write(5), VerResp::Done),
                (VerInv::Write(6), VerResp::Done),
                (VerInv::Sign(5), VerResp::SignResult(true)),
            ]
        )
        .is_some());
    }

    #[test]
    fn verifiable_read_returns_last_write_or_v0() {
        let spec = VerifiableSpec { v0: 9u32 };
        assert!(run_sequence(&spec, vec![(VerInv::Read, VerResp::ReadValue(9))]).is_some());
        assert!(run_sequence(
            &spec,
            vec![(VerInv::Write(1), VerResp::Done), (VerInv::Read, VerResp::ReadValue(9))]
        )
        .is_none());
    }

    #[test]
    fn authenticated_v0_is_deemed_signed() {
        let spec = AuthenticatedSpec { v0: 0u32 };
        assert!(
            run_sequence(&spec, vec![(AuthInv::Verify(0), AuthResp::VerifyResult(true))]).is_some()
        );
        assert!(run_sequence(&spec, vec![(AuthInv::Verify(3), AuthResp::VerifyResult(false))])
            .is_some());
        assert!(
            run_sequence(&spec, vec![(AuthInv::Verify(3), AuthResp::VerifyResult(true))]).is_none()
        );
    }

    #[test]
    fn authenticated_write_is_atomically_signed() {
        let spec = AuthenticatedSpec { v0: 0u32 };
        assert!(run_sequence(
            &spec,
            vec![
                (AuthInv::Write(3), AuthResp::Done),
                (AuthInv::Verify(3), AuthResp::VerifyResult(true)),
                (AuthInv::Read, AuthResp::ReadValue(3)),
            ]
        )
        .is_some());
    }

    #[test]
    fn sticky_only_first_write_takes_effect() {
        let spec = StickySpec::<u32>::new();
        assert!(run_sequence(
            &spec,
            vec![
                (StickyInv::Write(1), StickyResp::Done),
                (StickyInv::Write(2), StickyResp::Done),
                (StickyInv::Read, StickyResp::ReadValue(Some(1))),
            ]
        )
        .is_some());
        assert!(run_sequence(
            &spec,
            vec![
                (StickyInv::Write(1), StickyResp::Done),
                (StickyInv::Write(2), StickyResp::Done),
                (StickyInv::Read, StickyResp::ReadValue(Some(2))),
            ]
        )
        .is_none());
    }

    #[test]
    fn sticky_reads_bottom_before_any_write() {
        let spec = StickySpec::<u32>::new();
        assert!(run_sequence(&spec, vec![(StickyInv::Read, StickyResp::ReadValue(None))]).is_some());
        assert!(run_sequence(
            &spec,
            vec![
                (StickyInv::Write(1), StickyResp::Done),
                (StickyInv::Read, StickyResp::ReadValue(None)),
            ]
        )
        .is_none());
    }

    #[test]
    fn test_or_set_observation_27() {
        let spec = TestOrSetSpec;
        // (1) Set before Test => 1.
        assert!(run_sequence(
            &spec,
            vec![(TosInv::Set, TosResp::Done), (TosInv::Test, TosResp::TestResult(true))]
        )
        .is_some());
        // (2) Test returning 1 without a prior Set is illegal.
        assert!(run_sequence(&spec, vec![(TosInv::Test, TosResp::TestResult(true))]).is_none());
        // (3) once 1, always 1.
        assert!(run_sequence(
            &spec,
            vec![
                (TosInv::Set, TosResp::Done),
                (TosInv::Test, TosResp::TestResult(true)),
                (TosInv::Test, TosResp::TestResult(false)),
            ]
        )
        .is_none());
    }

    #[test]
    fn swmr_reads_follow_writes() {
        let spec = SwmrSpec { v0: 0u8 };
        assert!(run_sequence(
            &spec,
            vec![
                (RegInv::Read, RegResp::ReadValue(0)),
                (RegInv::Write(2), RegResp::Done),
                (RegInv::Read, RegResp::ReadValue(2)),
            ]
        )
        .is_some());
        assert!(run_sequence(
            &spec,
            vec![(RegInv::Write(2), RegResp::Done), (RegInv::Read, RegResp::ReadValue(0))]
        )
        .is_none());
    }
}
