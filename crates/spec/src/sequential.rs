//! Sequential specifications of objects, as state machines.
//!
//! A sequential specification (the paper's "type `T` of an object", §3.2)
//! determines which response each operation may return from each state. The
//! linearizability checker in [`crate::linearize`] searches for a sequence of
//! operations that conforms to such a specification.

use std::fmt::Debug;
use std::hash::Hash;

/// A sequential object specification.
///
/// `apply` returns the successor state if invoking `inv` from `state` may
/// legally return `resp`, and `None` otherwise.
pub trait SequentialSpec {
    /// Invocation alphabet.
    type Invocation: Clone + Debug;
    /// Response alphabet.
    type Response: Clone + Debug + Eq;
    /// Object states.
    type State: Clone + Eq + Hash + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Applies one operation; `None` if `(inv, resp)` is illegal in `state`.
    fn apply(
        &self,
        state: &Self::State,
        inv: &Self::Invocation,
        resp: &Self::Response,
    ) -> Option<Self::State>;
}

/// Runs a sequence of `(invocation, response)` pairs through `spec` from the
/// initial state; returns the final state if every step is legal.
pub fn run_sequence<S: SequentialSpec>(
    spec: &S,
    ops: impl IntoIterator<Item = (S::Invocation, S::Response)>,
) -> Option<S::State> {
    let mut state = spec.initial();
    for (inv, resp) in ops {
        state = spec.apply(&state, &inv, &resp)?;
    }
    Some(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::{TestOrSetSpec, TosInv, TosResp};

    #[test]
    fn run_sequence_accepts_legal_runs() {
        let spec = TestOrSetSpec;
        let end = run_sequence(
            &spec,
            vec![
                (TosInv::Test, TosResp::TestResult(false)),
                (TosInv::Set, TosResp::Done),
                (TosInv::Test, TosResp::TestResult(true)),
            ],
        );
        assert!(end.is_some());
    }

    #[test]
    fn run_sequence_rejects_illegal_runs() {
        let spec = TestOrSetSpec;
        let end = run_sequence(
            &spec,
            vec![
                (TosInv::Test, TosResp::TestResult(true)), // no Set yet
            ],
        );
        assert!(end.is_none());
    }
}
