//! Byzantine linearizability via writer-operation augmentation.
//!
//! Definition 7: a history `H` is *Byzantine linearizable* iff there is a
//! history `H'` with `H'|correct = H|correct` that is linearizable. When the
//! register's writer is **correct**, its operations are part of `H|correct`
//! and plain linearizability checking suffices. When the writer is
//! **Byzantine**, the checker must *exhibit* suitable writer operations.
//!
//! This module implements exactly the constructions used in the paper's
//! proofs:
//!
//! * [`augment_verifiable`] — Definition 78: for every value `v` with a
//!   `Verify(v) → true`, add a successful `Sign(v)` inside the window
//!   `(t^v_0, t^v_1)` (Definition 47), and add a `Write(v)` immediately
//!   before every `Read` returning `v` and every added `Sign(v)`.
//! * [`augment_authenticated`] — Definition 143: add a `Write(v)` with
//!   response inside `(t^v_0, t^v_1)` for every verified `v ≠ v0`, and a
//!   `Write(v)` just before the response of every `Read` returning `v`.
//! * [`augment_sticky`] — Appendix C: if any correct read returned `v ≠ ⊥`,
//!   add a single `Write(v)` inside `(t_0, t_1)` (Definition 186).
//!
//! If a construction window is empty the paper's lemmas (48, 140, 187) are
//! violated — the history provably has a relay/uniqueness defect — and the
//! check reports "not linearizable" immediately.
//!
//! Timestamps are scaled by [`SCALE`] so synthesized operations fit in the
//! gaps between recorded events; all recorded events keep their relative
//! order. The synthesized writer operations are made pairwise sequential
//! (the writer is a single process), and the combined history is passed to
//! the DFS checker in [`crate::linearize`].

use byzreg_runtime::{CompleteOp, OpToken, ProcessId, Value};

use crate::linearize::{check, Outcome};
use crate::registers::{
    AuthInv, AuthResp, AuthenticatedSpec, StickyInv, StickyResp, StickySpec, VerInv, VerResp,
    VerifiableSpec,
};

/// Factor by which recorded timestamps are multiplied to make room for
/// synthesized operations.
pub const SCALE: u64 = 1_000;

fn scale_ops<I: Clone, R: Clone>(ops: &[CompleteOp<I, R>]) -> Vec<CompleteOp<I, R>> {
    ops.iter()
        .map(|o| CompleteOp {
            op: o.op,
            pid: o.pid,
            invoked_at: o.invoked_at * SCALE,
            responded_at: o.responded_at * SCALE,
            invocation: o.invocation.clone(),
            response: o.response.clone(),
        })
        .collect()
}

fn max_time<I, R>(ops: &[CompleteOp<I, R>]) -> u64 {
    ops.iter().map(|o| o.responded_at).max().unwrap_or(0)
}

/// Assigns pairwise-disjoint unit intervals to synthesized writer operations
/// anchored at target times, preserving the anchor order. Each anchored op
/// receives the interval `[t, t+1]` with `t` as close below its target as
/// the already-placed ops allow.
fn place_sequentially<I, R>(
    mut anchors: Vec<(u64 /* target (exclusive upper bound) */, I, R)>,
) -> Vec<CompleteOp<I, R>> {
    // Place later anchors first so each op packs tightly under its target.
    anchors.sort_by_key(|(t, _, _)| *t);
    let mut placed: Vec<(u64, I, R)> = Vec::with_capacity(anchors.len());
    let mut next_free_below = u64::MAX;
    for (target, inv, resp) in anchors.into_iter().rev() {
        let start = target.saturating_sub(3).min(next_free_below.saturating_sub(3));
        placed.push((start, inv, resp));
        next_free_below = start;
    }
    placed
        .into_iter()
        .enumerate()
        .map(|(i, (start, inv, resp))| CompleteOp {
            op: OpToken::synthetic(u64::MAX - i as u64),
            pid: ProcessId::new(1),
            invoked_at: start,
            responded_at: start + 1,
            invocation: inv,
            response: resp,
        })
        .collect()
}

/// Window `(t^v_0, t^v_1)` per Definition 47/139: `t0` = max invocation time
/// of a failed certification of `v`, `t1` = min response time of a successful
/// one. Returns `None` if the window is empty (Lemma 48/140 violated).
fn window(t0: Option<u64>, t1: Option<u64>, horizon: u64) -> Option<(u64, u64)> {
    let t0 = t0.unwrap_or(0);
    let t1 = t1.unwrap_or(horizon);
    (t1 > t0).then_some((t0, t1))
}

// ---------------------------------------------------------------------------
// Verifiable register
// ---------------------------------------------------------------------------

/// Checks Byzantine linearizability of a **faulty-writer** verifiable
/// register history (readers' operations only), per Definition 78.
pub fn check_byzantine_verifiable<V: Value>(
    v0: &V,
    reader_ops: &[CompleteOp<VerInv<V>, VerResp<V>>],
) -> Outcome {
    let ops = scale_ops(reader_ops);
    let horizon = max_time(&ops) + 2 * SCALE;
    let mut anchors: Vec<(u64, VerInv<V>, VerResp<V>)> = Vec::new();

    // Values with at least one true Verify.
    let mut verified: Vec<&V> = Vec::new();
    for o in &ops {
        if let (VerInv::Verify(v), VerResp::VerifyResult(true)) = (&o.invocation, &o.response) {
            if !verified.contains(&v) {
                verified.push(v);
            }
        }
    }

    // Step 2 (Def. 78): one successful Sign(v) inside (t^v_0, t^v_1), with a
    // Write(v) immediately before it (Step 3).
    for v in verified {
        let t0 = ops
            .iter()
            .filter(|o| {
                matches!((&o.invocation, &o.response),
                    (VerInv::Verify(w), VerResp::VerifyResult(false)) if w == v)
            })
            .map(|o| o.invoked_at)
            .max();
        let t1 = ops
            .iter()
            .filter(|o| {
                matches!((&o.invocation, &o.response),
                    (VerInv::Verify(w), VerResp::VerifyResult(true)) if w == v)
            })
            .map(|o| o.responded_at)
            .min();
        let Some((lo, hi)) = window(t0, t1, horizon) else {
            // Empty window: Lemma 48 is violated; not Byzantine linearizable
            // via the canonical construction.
            return Outcome::NotLinearizable;
        };
        let sign_at = lo + (hi - lo) / 2;
        anchors.push((sign_at, VerInv::Sign(v.clone()), VerResp::SignResult(true)));
        anchors.push((sign_at.saturating_sub(3), VerInv::Write(v.clone()), VerResp::Done));
    }

    // Step 3 (Def. 78): a Write(v) immediately before every Read returning v.
    for o in &ops {
        if let (VerInv::Read, VerResp::ReadValue(v)) = (&o.invocation, &o.response) {
            anchors.push((o.invoked_at, VerInv::Write(v.clone()), VerResp::Done));
        }
    }

    let mut all = ops;
    all.extend(place_sequentially(anchors));
    check(&VerifiableSpec { v0: v0.clone() }, &all)
}

// ---------------------------------------------------------------------------
// Authenticated register
// ---------------------------------------------------------------------------

/// Checks Byzantine linearizability of a **faulty-writer** authenticated
/// register history, per Definition 143.
pub fn check_byzantine_authenticated<V: Value>(
    v0: &V,
    reader_ops: &[CompleteOp<AuthInv<V>, AuthResp<V>>],
) -> Outcome {
    let ops = scale_ops(reader_ops);
    let horizon = max_time(&ops) + 2 * SCALE;
    let mut anchors: Vec<(u64, AuthInv<V>, AuthResp<V>)> = Vec::new();

    let window_for = |v: &V| {
        let t0 = ops
            .iter()
            .filter(|o| {
                matches!((&o.invocation, &o.response),
                    (AuthInv::Verify(w), AuthResp::VerifyResult(false)) if w == v)
            })
            .map(|o| o.invoked_at)
            .max();
        let t1 = ops
            .iter()
            .filter(|o| {
                matches!((&o.invocation, &o.response),
                    (AuthInv::Verify(w), AuthResp::VerifyResult(true)) if w == v)
            })
            .map(|o| o.responded_at)
            .min();
        window(t0, t1, horizon)
    };

    // Step 2 (Def. 143): Write(v) with response inside (t^v_0, t^v_1) for
    // every v ≠ v0 with a true Verify. (v0 is "deemed signed": the spec
    // accepts Verify(v0) -> true with no write.)
    let mut verified: Vec<&V> = Vec::new();
    for o in &ops {
        if let (AuthInv::Verify(v), AuthResp::VerifyResult(true)) = (&o.invocation, &o.response) {
            if v != v0 && !verified.contains(&v) {
                verified.push(v);
            }
        }
    }
    for v in verified {
        let Some((lo, hi)) = window_for(v) else {
            return Outcome::NotLinearizable; // Lemma 140 violated.
        };
        anchors.push((lo + (hi - lo) / 2, AuthInv::Write(v.clone()), AuthResp::Done));
    }

    // Step 3 (Def. 143): Write(v) just before the response of each Read
    // returning v, with response after t^v_0 (Lemma 142 guarantees the
    // window is non-empty for honest histories; if it is empty here the
    // construction fails and the DFS would fail anyway).
    for o in &ops {
        if let (AuthInv::Read, AuthResp::ReadValue(v)) = (&o.invocation, &o.response) {
            anchors.push((o.responded_at, AuthInv::Write(v.clone()), AuthResp::Done));
        }
    }

    let mut all = ops;
    all.extend(place_sequentially(anchors));
    check(&AuthenticatedSpec { v0: v0.clone() }, &all)
}

// ---------------------------------------------------------------------------
// Sticky register
// ---------------------------------------------------------------------------

/// Checks Byzantine linearizability of a **faulty-writer** sticky register
/// history, per the Appendix C construction (Definition 186).
pub fn check_byzantine_sticky<V: Value>(
    reader_ops: &[CompleteOp<StickyInv<V>, StickyResp<V>>],
) -> Outcome {
    let ops = scale_ops(reader_ops);
    let horizon = max_time(&ops) + 2 * SCALE;

    // The value returned by non-⊥ reads; all must agree (Corollary 182).
    let mut value: Option<&V> = None;
    for o in &ops {
        if let (StickyInv::Read, StickyResp::ReadValue(Some(v))) = (&o.invocation, &o.response) {
            match value {
                None => value = Some(v),
                Some(w) if w == v => {}
                Some(_) => return Outcome::NotLinearizable,
            }
        }
    }

    let mut all = ops.clone();
    if let Some(v) = value {
        // t0 = max invocation of a ⊥-read, t1 = min response of a v-read.
        let t0 = ops
            .iter()
            .filter(|o| {
                matches!(
                    (&o.invocation, &o.response),
                    (StickyInv::Read, StickyResp::ReadValue(None))
                )
            })
            .map(|o| o.invoked_at)
            .max();
        let t1 = ops
            .iter()
            .filter(|o| {
                matches!(
                    (&o.invocation, &o.response),
                    (StickyInv::Read, StickyResp::ReadValue(Some(_)))
                )
            })
            .map(|o| o.responded_at)
            .min();
        let Some((lo, hi)) = window(t0, t1, horizon) else {
            return Outcome::NotLinearizable; // Lemma 187 violated.
        };
        let at = lo + (hi - lo) / 2;
        all.extend(place_sequentially(vec![(at, StickyInv::Write(v.clone()), StickyResp::Done)]));
    }
    check(&StickySpec::<V>::new(), &all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op<I, R>(pid: usize, t0: u64, t1: u64, inv: I, resp: R) -> CompleteOp<I, R> {
        CompleteOp {
            op: OpToken::default(),
            pid: ProcessId::new(pid),
            invoked_at: t0,
            responded_at: t1,
            invocation: inv,
            response: resp,
        }
    }

    #[test]
    fn verifiable_faulty_writer_consistent_readers_linearize() {
        // Readers saw: Verify(7) false, then Verify(7) true, then a Read of 7.
        let ops = vec![
            op(2, 1, 2, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
            op(3, 3, 4, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
            op(2, 5, 6, VerInv::Read, VerResp::ReadValue(7u32)),
            op(3, 7, 8, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
        ];
        assert!(check_byzantine_verifiable(&0u32, &ops).is_linearizable());
    }

    #[test]
    fn verifiable_relay_violation_not_linearizable() {
        let ops = vec![
            op(2, 1, 2, VerInv::Verify(7u32), VerResp::VerifyResult(true)),
            op(3, 3, 4, VerInv::Verify(7u32), VerResp::VerifyResult(false)),
        ];
        assert_eq!(check_byzantine_verifiable(&0u32, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn verifiable_reads_of_unverified_values_are_fine() {
        // A Byzantine writer may write (but never sign) arbitrary values;
        // readers can observe them.
        let ops = vec![
            op(2, 1, 2, VerInv::Read, VerResp::ReadValue(3u32)),
            op(3, 3, 4, VerInv::Read, VerResp::ReadValue(9u32)),
            op(2, 5, 6, VerInv::Verify(3u32), VerResp::VerifyResult(false)),
        ];
        assert!(check_byzantine_verifiable(&0u32, &ops).is_linearizable());
    }

    #[test]
    fn authenticated_faulty_writer_consistent_history_linearizes() {
        let ops = vec![
            op(2, 1, 2, AuthInv::Verify(5u32), AuthResp::VerifyResult(false)),
            op(3, 3, 4, AuthInv::Verify(5u32), AuthResp::VerifyResult(true)),
            op(2, 5, 6, AuthInv::Read, AuthResp::ReadValue(5u32)),
        ];
        assert!(check_byzantine_authenticated(&0u32, &ops).is_linearizable());
    }

    #[test]
    fn authenticated_obs19_violation_rejected() {
        // Read returned 5 but a later Verify(5) said false.
        let ops = vec![
            op(2, 1, 2, AuthInv::Read, AuthResp::ReadValue(5u32)),
            op(3, 3, 4, AuthInv::Verify(5u32), AuthResp::VerifyResult(false)),
        ];
        assert_eq!(check_byzantine_authenticated(&0u32, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn authenticated_v0_needs_no_writes() {
        let ops = vec![
            op(2, 1, 2, AuthInv::Verify(0u32), AuthResp::VerifyResult(true)),
            op(3, 3, 4, AuthInv::Read, AuthResp::ReadValue(0u32)),
        ];
        assert!(check_byzantine_authenticated(&0u32, &ops).is_linearizable());
    }

    #[test]
    fn sticky_agreeing_reads_linearize() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(None)),
            op(3, 3, 4, StickyInv::Read, StickyResp::ReadValue(Some(9u32))),
            op(2, 5, 6, StickyInv::Read, StickyResp::ReadValue(Some(9u32))),
        ];
        assert!(check_byzantine_sticky(&ops).is_linearizable());
    }

    #[test]
    fn sticky_disagreeing_reads_rejected() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(Some(1u32))),
            op(3, 3, 4, StickyInv::Read, StickyResp::ReadValue(Some(2u32))),
        ];
        assert_eq!(check_byzantine_sticky(&ops), Outcome::NotLinearizable);
    }

    #[test]
    fn sticky_bottom_after_value_rejected() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(Some(1u32))),
            op(3, 3, 4, StickyInv::Read, StickyResp::ReadValue(None)),
        ];
        assert_eq!(check_byzantine_sticky(&ops), Outcome::NotLinearizable);
    }

    #[test]
    fn sticky_all_bottom_is_trivially_fine() {
        let ops = vec![
            op(2, 1, 2, StickyInv::Read, StickyResp::ReadValue(None::<u32>)),
            op(3, 3, 4, StickyInv::Read, StickyResp::ReadValue(None)),
        ];
        assert!(check_byzantine_sticky(&ops).is_linearizable());
    }
}
