//! A linearizability checker (Wing–Gong search with memoization).
//!
//! Given a history of complete operations with real-time intervals
//! (`[invoked_at, responded_at]`) and a [`SequentialSpec`], the checker
//! searches for a *linearization* (Definition 3) that respects the precedence
//! relation (Definition 4(1)) and conforms to the sequential specification
//! (Definition 4(2)).
//!
//! The search explores, at each point, the set of not-yet-linearized
//! operations that are minimal in the precedence order, memoizing visited
//! `(linearized-set, object-state)` pairs. Histories are limited to 128
//! operations (a `u128` bitmask); recorded test histories stay well below
//! this, and the linear-time monitors in [`crate::monitors`] cover longer
//! runs.

use std::collections::HashSet;

use byzreg_runtime::CompleteOp;

use crate::sequential::SequentialSpec;

/// Maximum number of operations the checker accepts.
pub const MAX_OPS: usize = 128;

/// Outcome of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A valid linearization exists; the payload lists the operation indices
    /// (into the input slice) in linearization order.
    Linearizable(Vec<usize>),
    /// No linearization exists.
    NotLinearizable,
    /// The history exceeds [`MAX_OPS`].
    TooLarge,
}

impl Outcome {
    /// `true` if a linearization was found.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Outcome::Linearizable(_))
    }
}

/// Checks whether `ops` is linearizable with respect to `spec`
/// (Definition 4, for the already-complete history `ops`).
#[must_use]
pub fn check<S: SequentialSpec>(
    spec: &S,
    ops: &[CompleteOp<S::Invocation, S::Response>],
) -> Outcome {
    if ops.len() > MAX_OPS {
        return Outcome::TooLarge;
    }
    if ops.is_empty() {
        return Outcome::Linearizable(Vec::new());
    }

    // happens_before[i] = bitmask of ops that must precede op i.
    let n = ops.len();
    let mut preceding = vec![0u128; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && ops[j].responded_at < ops[i].invoked_at {
                preceding[i] |= 1 << j;
            }
        }
    }

    let mut visited: HashSet<(u128, S::State)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let full: u128 = if n == 128 { u128::MAX } else { (1u128 << n) - 1 };

    #[allow(clippy::too_many_arguments)]
    fn dfs<S: SequentialSpec>(
        spec: &S,
        ops: &[CompleteOp<S::Invocation, S::Response>],
        preceding: &[u128],
        full: u128,
        done: u128,
        state: &S::State,
        visited: &mut HashSet<(u128, S::State)>,
        order: &mut Vec<usize>,
    ) -> bool {
        if done == full {
            return true;
        }
        if !visited.insert((done, state.clone())) {
            return false;
        }
        for i in 0..ops.len() {
            let bit = 1u128 << i;
            if done & bit != 0 {
                continue;
            }
            // All operations that precede op i must already be linearized.
            if preceding[i] & !done != 0 {
                continue;
            }
            if let Some(next) = spec.apply(state, &ops[i].invocation, &ops[i].response) {
                order.push(i);
                if dfs(spec, ops, preceding, full, done | bit, &next, visited, order) {
                    return true;
                }
                order.pop();
            }
        }
        false
    }

    let init = spec.initial();
    if dfs(spec, ops, &preceding, full, 0, &init, &mut visited, &mut order) {
        Outcome::Linearizable(order)
    } else {
        Outcome::NotLinearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::{RegInv, RegResp, SwmrSpec, TestOrSetSpec, TosInv, TosResp};
    use byzreg_runtime::{CompleteOp, OpToken, ProcessId};

    fn op<I, R>(pid: usize, t0: u64, t1: u64, inv: I, resp: R) -> CompleteOp<I, R> {
        CompleteOp {
            op: OpToken::default(),
            pid: ProcessId::new(pid),
            invoked_at: t0,
            responded_at: t1,
            invocation: inv,
            response: resp,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let spec = SwmrSpec { v0: 0u8 };
        assert!(check(&spec, &[]).is_linearizable());
    }

    #[test]
    fn sequential_register_history() {
        let spec = SwmrSpec { v0: 0u8 };
        let ops = vec![
            op(1, 1, 2, RegInv::Write(5), RegResp::Done),
            op(2, 3, 4, RegInv::Read, RegResp::ReadValue(5)),
        ];
        assert!(check(&spec, &ops).is_linearizable());
    }

    #[test]
    fn stale_read_after_write_is_rejected() {
        let spec = SwmrSpec { v0: 0u8 };
        let ops = vec![
            op(1, 1, 2, RegInv::Write(5), RegResp::Done),
            op(2, 3, 4, RegInv::Read, RegResp::ReadValue(0)), // stale!
        ];
        assert_eq!(check(&spec, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn concurrent_read_may_return_old_or_new() {
        let spec = SwmrSpec { v0: 0u8 };
        // Read overlaps the write: both 0 and 5 are fine.
        for v in [0u8, 5] {
            let ops = vec![
                op(1, 1, 10, RegInv::Write(5), RegResp::Done),
                op(2, 2, 9, RegInv::Read, RegResp::ReadValue(v)),
            ];
            assert!(check(&spec, &ops).is_linearizable(), "value {v}");
        }
        // ... but not a never-written value.
        let ops = vec![
            op(1, 1, 10, RegInv::Write(5), RegResp::Done),
            op(2, 2, 9, RegInv::Read, RegResp::ReadValue(7)),
        ];
        assert_eq!(check(&spec, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Classic atomicity violation: two sequential reads observe
        // new-then-old during a concurrent write.
        let spec = SwmrSpec { v0: 0u8 };
        let ops = vec![
            op(1, 1, 20, RegInv::Write(5), RegResp::Done),
            op(2, 2, 3, RegInv::Read, RegResp::ReadValue(5)),
            op(2, 4, 5, RegInv::Read, RegResp::ReadValue(0)),
        ];
        assert_eq!(check(&spec, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn test_or_set_relay_violation_is_caught() {
        // Test -> 1 precedes Test' -> 0: violates Observation 27(3).
        let spec = TestOrSetSpec;
        let ops = vec![
            op(1, 1, 2, TosInv::Set, TosResp::Done),
            op(2, 3, 4, TosInv::Test, TosResp::TestResult(true)),
            op(3, 5, 6, TosInv::Test, TosResp::TestResult(false)),
        ];
        assert_eq!(check(&spec, &ops), Outcome::NotLinearizable);
    }

    #[test]
    fn linearization_order_is_returned_and_valid() {
        let spec = SwmrSpec { v0: 0u8 };
        let ops = vec![
            op(2, 2, 9, RegInv::Read, RegResp::ReadValue(5)),
            op(1, 1, 10, RegInv::Write(5), RegResp::Done),
        ];
        match check(&spec, &ops) {
            Outcome::Linearizable(order) => {
                // The write (index 1) must be linearized before the read.
                assert_eq!(order, vec![1, 0]);
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn too_large_is_reported() {
        let spec = SwmrSpec { v0: 0u8 };
        let ops: Vec<_> = (0..129)
            .map(|i| op(2, i * 2 + 1, i * 2 + 2, RegInv::Read, RegResp::ReadValue(0)))
            .collect();
        assert_eq!(check(&spec, &ops), Outcome::TooLarge);
    }

    #[test]
    fn precedence_across_processes_is_respected() {
        // p2 reads 0 *after* p3's read of 5 completed; with a concurrent
        // write this is the inversion case and must be rejected even though
        // the reads are on different processes.
        let spec = SwmrSpec { v0: 0u8 };
        let ops = vec![
            op(1, 1, 100, RegInv::Write(5), RegResp::Done),
            op(3, 2, 10, RegInv::Read, RegResp::ReadValue(5)),
            op(2, 20, 30, RegInv::Read, RegResp::ReadValue(0)),
        ];
        assert_eq!(check(&spec, &ops), Outcome::NotLinearizable);
    }
}
