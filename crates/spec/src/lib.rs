//! # byzreg-spec
//!
//! Specifications and checkers for the `byzreg` reproduction of Hu & Toueg,
//! *"You can lie but not deny"* (PODC 2025):
//!
//! * [`sequential`] — sequential specifications as state machines (§3.2),
//! * [`registers`] — the specs of Definitions 10, 15, 21, and 26,
//! * [`linearize`] — a Wing–Gong linearizability checker (Definition 4),
//! * [`augment`] — Byzantine linearizability for faulty-writer histories via
//!   the paper's writer-operation constructions (Definitions 78 and 143),
//! * [`monitors`] — linear-time property monitors for every Observation
//!   (11–13, 16–19, 22–24) and Lemma 28.
//!
//! # Example
//!
//! ```
//! use byzreg_spec::linearize::{check, Outcome};
//! use byzreg_spec::registers::{SwmrSpec, RegInv, RegResp};
//! use byzreg_runtime::{CompleteOp, OpToken, ProcessId};
//!
//! let spec = SwmrSpec { v0: 0u8 };
//! let ops = vec![CompleteOp {
//!     op: OpToken::default(),
//!     pid: ProcessId::new(2),
//!     invoked_at: 1,
//!     responded_at: 2,
//!     invocation: RegInv::Read,
//!     response: RegResp::ReadValue(0),
//! }];
//! assert!(check(&spec, &ops).is_linearizable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod linearize;
pub mod monitors;
pub mod registers;
pub mod sequential;

pub use augment::{
    check_byzantine_authenticated, check_byzantine_sticky, check_byzantine_verifiable,
};
pub use linearize::{check, Outcome};
pub use monitors::{MonitorResult, Violation};
pub use sequential::SequentialSpec;
