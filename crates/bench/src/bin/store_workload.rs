//! The store baseline driver: runs the seeded mixed workload per register
//! family × backend and emits the machine-readable `BENCH_store.json`
//! (ops/sec + p50/p99 per operation kind, plus the batched-vs-looped
//! verify comparison that documents the `verify_many` amortization).
//!
//! ```sh
//! cargo run --release -p byzreg-bench --bin store_workload               # BENCH_store.json
//! cargo run --release -p byzreg-bench --bin store_workload -- out.json   # custom path
//! cargo run --release -p byzreg-bench --bin store_workload -- --full     # longer shm runs
//! cargo run --release -p byzreg-bench --bin store_workload -- --adversary # adversary rows only
//! ```
//!
//! `--adversary` runs only the adversarial-MP scenarios (`mp-adversary`,
//! `mp-partition`) and writes them to `BENCH_adversary.json` — a local
//! iteration shortcut. It is **not** a valid regression baseline: the
//! committed `BENCH_store.json` must always come from a flagless run so
//! every scenario row is present.
//!
//! CI runs the short (default) shape and uploads the JSON, so the store's
//! perf trajectory is tracked from the PR that introduced it.

use std::time::Duration;

use byzreg_bench::{fmt_ns, measure};
use byzreg_core::api::SignatureRegister;
use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg_mp::{AdversaryPolicy, MpFactory, NetConfig};
use byzreg_runtime::{LocalFactory, ProcessId};
use byzreg_store::store::{ByzStore, StoreConfig};
use byzreg_store::workload::{
    build_check_batch, build_system, run_workload, value_of, WorkloadConfig,
};
use byzreg_store::WorkloadReport;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut out: Option<String> = None;
    let mut full = false;
    let mut adversary_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            full = true;
        } else if arg == "--adversary" {
            adversary_only = true;
        } else {
            out = Some(arg);
        }
    }
    let out = out.unwrap_or_else(|| {
        if adversary_only { "BENCH_adversary.json" } else { "BENCH_store.json" }.to_string()
    });
    // A partial report must never overwrite the committed baseline —
    // neither by default nor through an explicit output path (any path
    // whose file name is the baseline's counts, `./`-prefixed or absolute).
    let targets_baseline =
        std::path::Path::new(&out).file_name() == Some(std::ffi::OsStr::new("BENCH_store.json"));
    assert!(
        !(adversary_only && targets_baseline),
        "--adversary writes a partial report; refusing to overwrite the committed \
         BENCH_store.json (write to another path, e.g. BENCH_adversary.json)"
    );

    println!("store workload baselines ({} shape)", if full { "full" } else { "short" });
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "family/backend", "ops", "ops/sec", "p50", "p99", "keys"
    );

    let mut runs = Vec::new();
    if !adversary_only {
        runs.extend(family_runs::<VerifiableRegister<u64>>(full));
        runs.extend(family_runs::<AuthenticatedRegister<u64>>(full));
        runs.extend(family_runs::<StickyRegister<u64>>(full));
        runs.extend(mp_scale_runs(full));
    }
    runs.extend(adversary_runs(full));
    if !adversary_only {
        runs.extend(help_scale_runs(full));
    }

    let comparisons = if adversary_only {
        println!("\n--adversary: partial report, NOT a regression baseline");
        Vec::new()
    } else {
        println!();
        println!("batched verify_many vs per-key loop (shm, skewed 96-check batch)");
        println!(
            "{:<14} {:>14} {:>14} {:>9}",
            "family", "looped/check", "batched/check", "speedup"
        );
        vec![
            batch_comparison::<VerifiableRegister<u64>>(),
            batch_comparison::<AuthenticatedRegister<u64>>(),
            batch_comparison::<StickyRegister<u64>>(),
        ]
    };

    let json = render_json(&runs, &comparisons);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

/// The shared-memory workload shape (the acceptance smoke, scaled up under
/// `--full`).
fn shm_cfg(full: bool) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::smoke();
    if full {
        cfg.ops = 2048;
    }
    cfg
}

/// The message-passing workload shape: same key space and shard count, far
/// fewer operations and a hotter key set — every base-register access is a
/// quorum protocol over a simulated network. (The historical 6-distinct-key
/// shape, kept as the cross-PR MP throughput baseline; the op count is
/// sized so the timed window is long enough for the 30% regression gate
/// not to trip on scheduler noise.)
fn mp_cfg(full: bool) -> WorkloadConfig {
    // Same workload shape as the adversarial scenarios (`WorkloadConfig::
    // mp_adversary`); note the backends still differ in base net config —
    // this row runs on an instant network, the adversary rows on a 200 µs
    // jittery one (so the policies have a real schedule to reshape).
    WorkloadConfig { ops: if full { 192 } else { 96 }, ..WorkloadConfig::mp_adversary() }
}

/// The MP-scale shape: every one of the 1024 keys is instantiated
/// (prepopulated), so the backend holds the full key space of emulated
/// register fabrics **live at once** — thousands of base registers, all
/// multiplexed on the factory's fixed reactor pool. Impossible under the
/// old thread-per-node design, which would have needed `keys × fabric × n`
/// OS threads (hundreds of thousands). The read/write mix is the cross-PR
/// throughput baseline; `mp_scale_verify_cfg` adds the verify axis. The
/// op count keeps the timed window well clear of scheduler noise for the
/// regression gate (prepopulation dominates the wall clock either way).
fn mp_scale_cfg(full: bool) -> WorkloadConfig {
    WorkloadConfig {
        keys: 1024,
        shards: 16,
        ops: if full { 1024 } else { 512 },
        read_pct: 50,
        write_pct: 50,
        batch: 8,
        skew: 0.4,
        writers: 1,
        readers: 1,
        n: 4,
        byzantine: 1,
        prepopulate: true,
        seed: 7,
    }
}

/// MP-scale **with verifies**: the mix that was impossible before help
/// partitioning — with all keys' help tasks sharing one engine round per
/// process, every help tick issued MP reads for all 1024 live keys and
/// verify latency scaled with the key count. Demand-driven per-shard
/// helping wakes only the probed keys' shards, making MP verifies at full
/// key-space scale a tracked scenario.
fn mp_scale_verify_cfg(full: bool) -> WorkloadConfig {
    WorkloadConfig { read_pct: 40, write_pct: 35, ..mp_scale_cfg(full) }
}

/// Runs the MP-scale scenarios (one family suffices — the scale axis is
/// the backend, not the register algorithm) on a capped 8-worker pool.
fn mp_scale_runs(full: bool) -> Vec<WorkloadReport> {
    [("mp-scale", mp_scale_cfg(full)), ("mp-scale-verify", mp_scale_verify_cfg(full))]
        .into_iter()
        .map(|(backend, cfg)| {
            let system = build_system(&cfg);
            let factory = MpFactory::with_workers(byzreg_mp::NetConfig::instant(), 8);
            let report =
                run_workload::<VerifiableRegister<u64>, _>(&system, &factory, backend, &cfg)
                    .expect("mp scale run");
            system.shutdown();
            assert!(
                report.distinct_keys as u64 >= cfg.keys,
                "scale run must instantiate every key"
            );
            print_run(&report);
            report
        })
        .collect()
}

/// The adversarial-MP scenarios: the full store workload with every base
/// register's virtual-time network scheduled by a **canned**
/// [`AdversaryPolicy`] — the schedules uniform jitter almost never finds.
/// `mp-adversary` runs the canned `stress` policy (slow-reader delays, a
/// depth-3 reorder window, and a hold-back pen on the reading pid `p2`);
/// `mp-partition` runs the canned `split-heal` policy (`p2` cut off until
/// the virtual heal instant). The policies are looked up from
/// [`AdversaryPolicy::canned`] — the same suite the `determinism` bin and
/// the chaos tests pin — so the benched schedules never drift from the
/// tested ones. Both are committed rows of `BENCH_store.json`, so the
/// regression gate also guards the adversarial paths (delays are virtual:
/// the rows cost wall clock like plain `mp`).
fn adversary_runs(full: bool) -> Vec<WorkloadReport> {
    let base = WorkloadConfig::mp_adversary();
    let canned = AdversaryPolicy::canned(base.n, base.byzantine);
    let policy = |name: &str| {
        canned.iter().find(|(n, _)| *n == name).unwrap_or_else(|| panic!("canned {name}")).1.clone()
    };
    let scenarios = [("mp-adversary", policy("stress")), ("mp-partition", policy("split-heal"))];
    scenarios
        .into_iter()
        .map(|(backend, policy)| {
            let mut cfg = WorkloadConfig::mp_adversary();
            if full {
                cfg.ops = 192;
            }
            let system = build_system(&cfg);
            let factory = MpFactory::new(NetConfig::jittery(Duration::from_micros(200), cfg.seed))
                .adversarial(policy);
            let report =
                run_workload::<VerifiableRegister<u64>, _>(&system, &factory, backend, &cfg)
                    .expect("adversary run");
            system.shutdown();
            print_run(&report);
            report
        })
        .collect()
}

/// The help-scale scenario: verify-only probes over 64 and then 1024
/// **live** (prepopulated) keys on the shm backend. Before help
/// partitioning, every engine round looped over every live key's help
/// task, so verify tail latency grew with the key count; with per-shard
/// demand-driven engines only the probed key's shard ticks, and only its
/// pending keys. The run asserts the flatness the partitioning buys: p99
/// verify latency at 1024 live keys stays within 2× of 64 live keys.
///
/// Each scale is measured three times and the best run is kept — the
/// probe compares architecture, not scheduler luck.
fn help_scale_runs(full: bool) -> Vec<WorkloadReport> {
    let mut out = Vec::new();
    for keys in [64u64, 1024] {
        let mut cfg = WorkloadConfig::verify_probe(keys);
        if full {
            cfg.ops = 512;
        }
        let mut best: Option<WorkloadReport> = None;
        for _ in 0..3 {
            let system = build_system(&cfg);
            let report = run_workload::<VerifiableRegister<u64>, _>(
                &system,
                LocalFactory,
                "helpscale",
                &cfg,
            )
            .expect("help scale run");
            system.shutdown();
            assert!(report.distinct_keys as u64 >= keys, "every key must be live");
            let better = match &best {
                None => true,
                Some(b) => report.verify.p99_ns < b.verify.p99_ns,
            };
            if better {
                best = Some(report);
            }
        }
        let report = best.expect("three runs");
        print_run(&report);
        out.push(report);
    }
    let (p64, p1024) = (out[0].verify.p99_ns, out[1].verify.p99_ns);
    // Tiny absolute floor so a sub-5µs p64 doesn't turn noise into a
    // ratio failure; 2× of max(p64, floor) is the flatness acceptance.
    let bound = 2 * p64.max(5_000);
    println!(
        "help-scale: verify p99 {} @64 keys -> {} @1024 keys ({:.2}x)",
        fmt_ns(p64 as f64),
        fmt_ns(p1024 as f64),
        p1024 as f64 / p64 as f64
    );
    assert!(
        p1024 <= bound,
        "verify p99 grew with live-key count: {p64} ns @64 keys vs {p1024} ns @1024 keys \
         (bound {bound} ns) — help partitioning regressed"
    );
    out
}

fn print_run(report: &WorkloadReport) {
    println!(
        "{:<14} {:>8} {:>12.0} {:>12} {:>12} {:>8}",
        format!("{}/{}", report.family, report.backend),
        report.ops,
        report.ops_per_sec,
        fmt_ns(report.verify.p50_ns as f64),
        fmt_ns(report.verify.p99_ns as f64),
        report.distinct_keys,
    );
}

fn family_runs<R: SignatureRegister<u64>>(full: bool) -> Vec<WorkloadReport> {
    let shm = shm_cfg(full);
    let system = build_system(&shm);
    let shm_report = run_workload::<R, _>(&system, LocalFactory, "shm", &shm).expect("shm run");
    system.shutdown();
    print_run(&shm_report);

    let mp = mp_cfg(full);
    let system = build_system(&mp);
    let factory = MpFactory::default();
    let mp_report = run_workload::<R, _>(&system, &factory, "mp", &mp).expect("mp run");
    system.shutdown();
    print_run(&mp_report);

    vec![shm_report, mp_report]
}

struct BatchComparison {
    family: &'static str,
    checks: usize,
    looped_ns_per_check: f64,
    batched_ns_per_check: f64,
}

impl BatchComparison {
    fn speedup(&self) -> f64 {
        self.looped_ns_per_check / self.batched_ns_per_check
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"family\":\"{}\",\"backend\":\"shm\",\"checks\":{},\
             \"looped_ns_per_check\":{:.1},\"batched_ns_per_check\":{:.1},\"speedup\":{:.2}}}",
            self.family,
            self.checks,
            self.looped_ns_per_check,
            self.batched_ns_per_check,
            self.speedup()
        )
    }
}

/// Measures the same skewed batch through the per-key loop and through
/// `verify_many` on an otherwise idle prepopulated store.
fn batch_comparison<R: SignatureRegister<u64>>() -> BatchComparison {
    const CHECKS: usize = 96;
    let cfg = WorkloadConfig::smoke();
    let system = build_system(&cfg);
    let store: ByzStore<'_, u64, u64, R, _> =
        ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: cfg.shards });
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let checks = build_check_batch(&mut rng, 512, 0.85, CHECKS);
    for (key, _) in &checks {
        store.write(*key, value_of(*key)).expect("prepopulate");
    }
    let pid = ProcessId::new(2);
    let looped = measure(1, 6, || {
        for (key, v) in &checks {
            let _ = store.verify(pid, key, v).unwrap();
        }
    }) / CHECKS as f64;
    let batched = measure(1, 6, || {
        store.verify_many(pid, &checks).unwrap();
    }) / CHECKS as f64;
    system.shutdown();
    let comparison = BatchComparison {
        family: R::FAMILY.label(),
        checks: CHECKS,
        looped_ns_per_check: looped,
        batched_ns_per_check: batched,
    };
    println!(
        "{:<14} {:>14} {:>14} {:>8.2}x",
        comparison.family,
        fmt_ns(comparison.looped_ns_per_check),
        fmt_ns(comparison.batched_ns_per_check),
        comparison.speedup()
    );
    comparison
}

fn render_json(runs: &[WorkloadReport], comparisons: &[BatchComparison]) -> String {
    let runs_json: Vec<String> = runs.iter().map(WorkloadReport::to_json).collect();
    let cmp_json: Vec<String> = comparisons.iter().map(BatchComparison::to_json).collect();
    format!(
        "{{\n  \"bench\": \"store\",\n  \"runs\": [\n    {}\n  ],\n  \
         \"batch_comparison\": [\n    {}\n  ]\n}}\n",
        runs_json.join(",\n    "),
        cmp_json.join(",\n    ")
    )
}
