//! The CI determinism probe: same seed ⇒ **byte-identical** output.
//!
//! Emits a timing-free JSON report from two seeded probes and exits; CI
//! runs the binary twice and `diff`s the outputs, pinning the
//! replayability promises of the reactor rewrite in CI:
//!
//! 1. **MP delivery-schedule probe** — one emulated SWMR register over a
//!    jittery seeded virtual-time network with tracing on, driven through
//!    a fixed write/read command sequence. The full `(from, to)` delivery
//!    schedule and every read decision go into the report: the schedule is
//!    a pure function of the seed and the command sequence.
//! 2. **Adversary-policy probes** — the same register and command sequence
//!    replayed under every canned [`AdversaryPolicy`] (targeted delays,
//!    bounded reorder, partition/heal, hold-back pens). Each policy's read
//!    decisions, delivery count, and a fold of its full `(from, to)`
//!    schedule go into the report: the adversarial schedule is a pure
//!    function of `(net seed, policy, command sequence)`.
//! 3. **Store workload fingerprint** — a single-threaded seeded slice of
//!    the store workload (Zipf key sampling, deterministic values, shard
//!    routing) over every register family on the shm backend. Distinct
//!    keys, per-shard loads, and every read/verify outcome go into the
//!    report: key sampling and shard routing are seed-stable across
//!    processes.
//!
//! ```sh
//! determinism out.json   # default DETERMINISM.json
//! ```

use std::time::Duration;

use byzreg_core::api::SignatureRegister;
use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg_mp::{AdversaryPolicy, MpConfig, MpRegister, NetConfig};
use byzreg_runtime::{LocalFactory, ProcessId, System};
use byzreg_store::store::{ByzStore, StoreConfig};
use byzreg_store::workload::{bogus_value_of, sample_key, value_of};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "DETERMINISM.json".to_string());
    let mp = mp_schedule_probe(42);
    let adversaries = mp_adversary_probe(42);
    let stores: Vec<String> = vec![
        store_fingerprint::<VerifiableRegister<u64>>("verifiable", 7),
        store_fingerprint::<AuthenticatedRegister<u64>>("authenticated", 7),
        store_fingerprint::<StickyRegister<u64>>("sticky", 7),
    ];
    let json = format!(
        "{{\n  \"probe\": \"determinism\",\n  \"mp_schedule\": {},\n  \
         \"mp_adversary\": {},\n  \"stores\": [\n    {}\n  ]\n}}\n",
        mp,
        adversaries,
        stores.join(",\n    ")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out} ({} bytes)", json.len());
}

/// One seeded register over a jittery traced network: renders the read
/// decisions and the complete delivery schedule.
fn mp_schedule_probe(seed: u64) -> String {
    let mut config = MpConfig::new(4);
    config.net = NetConfig::jittery(Duration::from_millis(2), seed);
    config.trace = true;
    let reg = MpRegister::spawn(&config, 0u32);
    let w = reg.client(ProcessId::new(1));
    let r = reg.client(ProcessId::new(2));
    let mut reads = Vec::new();
    for i in 1..=6u32 {
        w.write(i * 10);
        let (ts, v) = r.read();
        reads.push(format!("[{ts},{v}]"));
    }
    let schedule = reg.delivery_schedule().expect("tracing on");
    let pairs: Vec<String> =
        schedule.iter().map(|(from, to)| format!("[{},{}]", from.index(), to.index())).collect();
    reg.shutdown();
    format!(
        "{{\"seed\":{seed},\"reads\":[{}],\"deliveries\":{},\"schedule\":[{}]}}",
        reads.join(","),
        pairs.len(),
        pairs.join(",")
    )
}

/// The fixed command sequence of the MP probes replayed under every canned
/// adversary policy: per policy, the read decisions, the delivery count,
/// and an FNV fold of the complete `(from, to)` schedule. Any divergence
/// between two runs — a reordered delivery, a pen released one event late —
/// changes the fold, so `diff` catches it byte-for-byte.
fn mp_adversary_probe(seed: u64) -> String {
    let entries: Vec<String> = AdversaryPolicy::canned(4, 1)
        .into_iter()
        .map(|(name, policy)| {
            let mut config = MpConfig::new(4);
            config.net = NetConfig::jittery(Duration::from_millis(2), seed);
            config.adversary = policy;
            config.trace = true;
            let reg = MpRegister::spawn(&config, 0u32);
            let w = reg.client(ProcessId::new(1));
            let r = reg.client(ProcessId::new(2));
            let mut reads = Vec::new();
            for i in 1..=6u32 {
                w.write(i * 10);
                let (ts, v) = r.read();
                reads.push(format!("[{ts},{v}]"));
            }
            let schedule = reg.delivery_schedule().expect("tracing on");
            let mut fold = 0xcbf2_9ce4_8422_2325_u64;
            for (from, to) in &schedule {
                fold = (fold ^ (from.index() as u64 * 64 + to.index() as u64))
                    .wrapping_mul(0x0000_0100_0000_01b3);
            }
            reg.shutdown();
            format!(
                "{{\"policy\":\"{name}\",\"seed\":{seed},\"reads\":[{}],\
                 \"deliveries\":{},\"schedule_fold\":\"{fold:016x}\"}}",
                reads.join(","),
                schedule.len()
            )
        })
        .collect();
    format!("[\n    {}\n  ]", entries.join(",\n    "))
}

/// A single-threaded seeded workload slice over a store of family `R`:
/// every sampled key, shard route, read value, and verify outcome is a
/// pure function of the seed (no concurrency, so no racy outcomes).
fn store_fingerprint<R: SignatureRegister<u64>>(label: &str, seed: u64) -> String {
    const KEYS: u64 = 256;
    const OPS: usize = 120;
    let system = System::builder(4).build();
    let store: ByzStore<'_, u64, u64, R, _> =
        ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 8 });
    let mut rng = StdRng::seed_from_u64(seed);
    let pid = ProcessId::new(2);
    let mut outcomes = String::new();
    let mut read_sum = 0u64;
    for _ in 0..OPS {
        let key = sample_key(&mut rng, KEYS, 0.8);
        match rng.random_range(0..3u8) {
            0 => store.write(key, value_of(key)).expect("write"),
            1 => {
                let got = store.read(pid, &key).expect("read");
                read_sum = read_sum.wrapping_add(got.unwrap_or(0));
            }
            _ => {
                let v = if rng.random_bool(0.5) { value_of(key) } else { bogus_value_of(key) };
                outcomes.push(if store.verify(pid, &key, &v).expect("verify") { '1' } else { '0' });
            }
        }
    }
    let loads: Vec<String> = store.shard_loads().iter().map(usize::to_string).collect();
    let fingerprint = format!(
        "{{\"family\":\"{label}\",\"seed\":{seed},\"distinct_keys\":{},\
         \"shard_loads\":[{}],\"read_sum\":{read_sum},\"verify_outcomes\":\"{outcomes}\"}}",
        store.len(),
        loads.join(",")
    );
    system.shutdown();
    fingerprint
}
