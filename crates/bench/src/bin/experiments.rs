//! The experiment driver: regenerates every table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p byzreg-bench --bin experiments          # all
//! cargo run --release -p byzreg-bench --bin experiments -- e1   # one
//! ```

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use byzreg_apps::{AssetTransfer, AtomicSnapshot, ReliableBroadcast};
use byzreg_bench::generic::quick_family_latencies;
use byzreg_bench::{fmt_ns, measure};
use byzreg_core::api::SignatureRegister;
use byzreg_core::test_or_set::naive::{NaiveTestOrSet, Rule};
use byzreg_core::test_or_set::{
    TosFromAuthenticated, TosFromSticky, TosFromVerifiable, TosSetter, TosTester,
};
use byzreg_core::{attacks, AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg_crypto::{CostModel, SignatureOracle, SignedVerifiableRegister};
use byzreg_mp::{MpConfig, MpFactory, MpRegister};
use byzreg_runtime::{ProcessId, Scheduling, System};
use byzreg_spec::augment::{
    check_byzantine_authenticated, check_byzantine_sticky, check_byzantine_verifiable,
};
use byzreg_spec::linearize::check;
use byzreg_spec::monitors::{
    authenticated_relay, sticky_uniqueness, test_or_set_monitor, verifiable_monitor,
    verifiable_relay,
};
use byzreg_spec::registers::{AuthenticatedSpec, TestOrSetSpec, VerifiableSpec};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run = |id: &str| arg == "all" || arg == id;
    println!("byzreg experiment driver — reproduction of Hu & Toueg, PODC 2025");
    println!("================================================================\n");
    if run("e1") {
        e1_impossibility();
    }
    if run("e2") {
        e2_verifiable();
    }
    if run("e3") {
        e3_authenticated();
    }
    if run("e4") {
        e4_sticky();
    }
    if run("e5") {
        e5_test_or_set();
    }
    if run("e6") {
        e6_message_passing();
    }
    if run("e7") {
        e7_applications();
    }
    if run("b") || arg == "all" {
        b_latency_summary();
    }
}

// ---------------------------------------------------------------------------
// E1 — Figure 1 / Theorem 29
// ---------------------------------------------------------------------------

fn e1_impossibility() {
    println!("E1  Figure 1 / Theorem 29: test-or-set from plain registers, 3 <= n <= 3f");
    println!("    history H2 (relay horn) and H3 (forgery horn), then the n > 3f contrast\n");
    println!("    {:<34} {:>6} {:>6} {:>22}", "scenario", "n", "f", "outcome");

    // H2: threshold rule, n = 3f = 3.
    {
        let s = ProcessId::new(1);
        let system = System::builder(3)
            .resilience(1)
            .scheduling(Scheduling::Chaotic(1))
            .byzantine(s)
            .build();
        let pb_asleep = Arc::new(AtomicBool::new(true));
        let mut sleepers = HashMap::new();
        sleepers.insert(ProcessId::new(3), Arc::clone(&pb_asleep));
        let tos = NaiveTestOrSet::install_with_sleepers(&system, Rule::Threshold, sleepers);
        let ports = tos.attack_ports(s);
        ports.vouch.write(true); // t1-t2: Set
        let mut ta = tos.tester(ProcessId::new(2));
        let a = ta.test().unwrap(); // t3-t4
        ports.vouch.write(false); // t5: reset
        pb_asleep.store(false, std::sync::atomic::Ordering::SeqCst); // t6
        let mut tb = tos.tester(ProcessId::new(3));
        let b = tb.test().unwrap(); // t6-t7
        let verdict = test_or_set_monitor(false, &tos.history().complete_ops());
        println!(
            "    {:<34} {:>6} {:>6} {:>22}",
            "H2: naive/threshold, byz reset",
            3,
            1,
            match &verdict {
                Err(v) => format!("VIOLATED {}", v.property),
                Ok(()) => "no violation".into(),
            }
        );
        println!(
            "      pa.Test -> {}, pb.Test' -> {}  (paper: both must be 1)",
            u8::from(a),
            u8::from(b)
        );
        system.shutdown();
    }

    // H3: gullible rule, n = 3.
    {
        let pa = ProcessId::new(2);
        let system = System::builder(3)
            .resilience(1)
            .scheduling(Scheduling::Chaotic(2))
            .byzantine(pa)
            .build();
        let tos = NaiveTestOrSet::install(&system, Rule::Gullible);
        let ports = tos.attack_ports(pa);
        ports.vouch.write(true); // forged voucher; the correct setter never Set
        let mut tb = tos.tester(ProcessId::new(3));
        let b = tb.test().unwrap();
        let verdict = test_or_set_monitor(true, &tos.history().complete_ops());
        println!(
            "    {:<34} {:>6} {:>6} {:>22}",
            "H3: naive/gullible, forged voucher",
            3,
            1,
            match &verdict {
                Err(v) => format!("VIOLATED {}", v.property),
                Ok(()) => "no violation".into(),
            }
        );
        println!("      pb.Test' -> {} with no Set by the correct setter", u8::from(b));
        system.shutdown();
    }

    // Contrast: same reset adversary at n = 3f + 1 = 4.
    {
        let s = ProcessId::new(1);
        let system = System::builder(4)
            .resilience(1)
            .scheduling(Scheduling::Chaotic(3))
            .byzantine(s)
            .build();
        let pb_asleep = Arc::new(AtomicBool::new(true));
        let mut sleepers = HashMap::new();
        sleepers.insert(ProcessId::new(4), Arc::clone(&pb_asleep));
        let tos = NaiveTestOrSet::install_with_sleepers(&system, Rule::Threshold, sleepers);
        let ports = tos.attack_ports(s);
        ports.vouch.write(true);
        let mut ta = tos.tester(ProcessId::new(2));
        let _ = ta.test().unwrap();
        while ports.all.iter().filter(|r| r.read()).count() < 3 {
            std::thread::yield_now();
        }
        ports.vouch.write(false);
        pb_asleep.store(false, std::sync::atomic::Ordering::SeqCst);
        let mut tb = tos.tester(ProcessId::new(4));
        let b = tb.test().unwrap();
        let ok = test_or_set_monitor(false, &tos.history().complete_ops()).is_ok();
        println!(
            "    {:<34} {:>6} {:>6} {:>22}",
            "H2 adversary vs naive/threshold",
            4,
            1,
            if ok && b { "survives (f+1 honest)" } else { "unexpected" }
        );
        system.shutdown();
    }

    // Contrast: Obs. 30 construction under both adversaries at n = 4.
    {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(4))
            .byzantine(ProcessId::new(1))
            .build();
        let tos = TosFromVerifiable::install(&system);
        let ports = tos.backing().attack_ports(ProcessId::new(1));
        ports.r_star.as_ref().unwrap().write(1);
        ports.witness.update(|s| {
            s.insert(1u8);
        });
        let mut ta = tos.tester(ProcessId::new(2));
        while !ta.test().unwrap() {}
        ports.witness.write(Default::default());
        ports.r_star.as_ref().unwrap().write(0);
        let mut tb = tos.tester(ProcessId::new(3));
        let b = tb.test().unwrap();
        let ok = test_or_set_monitor(false, &tos.history().complete_ops()).is_ok();
        println!(
            "    {:<34} {:>6} {:>6} {:>22}",
            "reset vs Obs.30 (verifiable reg)",
            4,
            1,
            if ok && b { "survives (lie!=deny)" } else { "unexpected" }
        );
        system.shutdown();
    }
    println!();
}

// ---------------------------------------------------------------------------
// E2-E4 — Theorems 14 / 20 / 25
// ---------------------------------------------------------------------------

const GRID: [(usize, usize); 3] = [(4, 1), (7, 2), (10, 3)];
const SEEDS: std::ops::Range<u64> = 0..8;

fn e2_verifiable() {
    println!("E2  Theorem 14: verifiable register (Algorithm 1)");
    println!(
        "    {:>4} {:>4} {:>10} {:>12} {:>12} {:>14}",
        "n", "f", "runs", "correct-wr", "byz-writer", "all checks"
    );
    for (n, f) in GRID {
        let mut pass_correct = 0;
        let mut pass_byz = 0;
        for seed in SEEDS {
            // Correct run.
            let system =
                System::builder(n).resilience(f).scheduling(Scheduling::Chaotic(seed)).build();
            let reg = VerifiableRegister::install(&system, 0u32);
            let mut w = reg.writer();
            let mut r = reg.reader(ProcessId::new(2));
            let t = std::thread::spawn(move || {
                for v in 1..=3u32 {
                    w.write(v).unwrap();
                    w.sign(&v).unwrap();
                }
            });
            for v in 1..=3u32 {
                let _ = r.read().unwrap();
                let _ = r.verify(&v).unwrap();
            }
            t.join().unwrap();
            system.shutdown();
            let ops = reg.history().complete_ops();
            if verifiable_monitor(&ops).is_ok()
                && check(&VerifiableSpec { v0: 0u32 }, &ops).is_linearizable()
            {
                pass_correct += 1;
            }

            // Byzantine-writer run.
            let system = System::builder(n)
                .resilience(f)
                .scheduling(Scheduling::Chaotic(seed))
                .byzantine(ProcessId::new(1))
                .build();
            let reg = VerifiableRegister::install(&system, 0u32);
            let ports = reg.attack_ports(ProcessId::new(1));
            system.spawn_byzantine(
                ProcessId::new(1),
                attacks::verifiable::lie_then_deny(ports, 7, 9),
            );
            let mut r2 = reg.reader(ProcessId::new(2));
            let mut r3 = reg.reader(ProcessId::new(3));
            for _ in 0..3 {
                let _ = r2.verify(&7).unwrap();
                let _ = r3.verify(&7).unwrap();
                let _ = r2.read().unwrap();
            }
            system.shutdown();
            let ops = reg.history().complete_ops();
            if verifiable_relay(&ops).is_ok()
                && check_byzantine_verifiable(&0u32, &ops).is_linearizable()
            {
                pass_byz += 1;
            }
        }
        let total = SEEDS.end - SEEDS.start;
        println!(
            "    {:>4} {:>4} {:>10} {:>11}/{} {:>11}/{} {:>14}",
            n,
            f,
            2 * total,
            pass_correct,
            total,
            pass_byz,
            total,
            if pass_correct == total && pass_byz == total { "PASS" } else { "FAIL" }
        );
    }
    println!();
}

fn e3_authenticated() {
    println!("E3  Theorem 20: authenticated register (Algorithm 2)");
    println!(
        "    {:>4} {:>4} {:>10} {:>12} {:>12} {:>14}",
        "n", "f", "runs", "correct-wr", "byz-writer", "all checks"
    );
    for (n, f) in GRID {
        let mut pass_correct = 0;
        let mut pass_byz = 0;
        for seed in SEEDS {
            let system =
                System::builder(n).resilience(f).scheduling(Scheduling::Chaotic(seed)).build();
            let reg = AuthenticatedRegister::install(&system, 0u32);
            let mut w = reg.writer();
            let mut r = reg.reader(ProcessId::new(2));
            let t = std::thread::spawn(move || {
                for v in 1..=3u32 {
                    w.write(v).unwrap();
                }
            });
            for v in 1..=3u32 {
                let _ = r.read().unwrap();
                let _ = r.verify(&v).unwrap();
            }
            t.join().unwrap();
            system.shutdown();
            let ops = reg.history().complete_ops();
            if check(&AuthenticatedSpec { v0: 0u32 }, &ops).is_linearizable() {
                pass_correct += 1;
            }

            let system = System::builder(n)
                .resilience(f)
                .scheduling(Scheduling::Chaotic(seed))
                .byzantine(ProcessId::new(1))
                .build();
            let reg = AuthenticatedRegister::install(&system, 0u32);
            let ports = reg.attack_ports(ProcessId::new(1));
            system.spawn_byzantine(
                ProcessId::new(1),
                attacks::authenticated::write_then_erase(ports, 5),
            );
            let mut r2 = reg.reader(ProcessId::new(2));
            for _ in 0..3 {
                let _ = r2.read().unwrap();
                let _ = r2.verify(&5).unwrap();
            }
            system.shutdown();
            let ops = reg.history().complete_ops();
            if authenticated_relay(&ops).is_ok()
                && check_byzantine_authenticated(&0u32, &ops).is_linearizable()
            {
                pass_byz += 1;
            }
        }
        let total = SEEDS.end - SEEDS.start;
        println!(
            "    {:>4} {:>4} {:>10} {:>11}/{} {:>11}/{} {:>14}",
            n,
            f,
            2 * total,
            pass_correct,
            total,
            pass_byz,
            total,
            if pass_correct == total && pass_byz == total { "PASS" } else { "FAIL" }
        );
    }
    println!();
}

fn e4_sticky() {
    println!("E4  Theorem 25: sticky register (Algorithm 3)");
    println!(
        "    {:>4} {:>4} {:>10} {:>12} {:>12} {:>14}",
        "n", "f", "runs", "correct-wr", "equivocator", "all checks"
    );
    for (n, f) in GRID {
        let mut pass_correct = 0;
        let mut pass_byz = 0;
        for seed in SEEDS {
            let system =
                System::builder(n).resilience(f).scheduling(Scheduling::Chaotic(seed)).build();
            let reg = StickyRegister::install(&system);
            let mut w = reg.writer();
            let mut r = reg.reader(ProcessId::new(2));
            let t = std::thread::spawn(move || {
                w.write(5u32).unwrap();
            });
            for _ in 0..3 {
                let _ = r.read().unwrap();
            }
            t.join().unwrap();
            system.shutdown();
            let ops = reg.history().complete_ops();
            if check(&byzreg_spec::registers::StickySpec::<u32>::new(), &ops).is_linearizable() {
                pass_correct += 1;
            }

            let system = System::builder(n)
                .resilience(f)
                .scheduling(Scheduling::Chaotic(seed))
                .byzantine(ProcessId::new(1))
                .build();
            let reg = StickyRegister::install(&system);
            let ports = reg.attack_ports(ProcessId::new(1));
            system.spawn_byzantine(ProcessId::new(1), attacks::sticky::equivocator(ports, 1, 2));
            let mut r2 = reg.reader(ProcessId::new(2));
            let mut r3 = reg.reader(ProcessId::new(3));
            for _ in 0..3 {
                let _ = r2.read().unwrap();
                let _ = r3.read().unwrap();
            }
            system.shutdown();
            let ops = reg.history().complete_ops();
            if sticky_uniqueness(&ops).is_ok() && check_byzantine_sticky(&ops).is_linearizable() {
                pass_byz += 1;
            }
        }
        let total = SEEDS.end - SEEDS.start;
        println!(
            "    {:>4} {:>4} {:>10} {:>11}/{} {:>11}/{} {:>14}",
            n,
            f,
            2 * total,
            pass_correct,
            total,
            pass_byz,
            total,
            if pass_correct == total && pass_byz == total { "PASS" } else { "FAIL" }
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E5 — Observation 30
// ---------------------------------------------------------------------------

fn e5_test_or_set() {
    println!("E5  Observation 30: test-or-set from each register type (n = 4, f = 1)");
    println!("    {:<20} {:>10} {:>16}", "construction", "runs", "Lemma 28 + lin.");
    let total = SEEDS.end - SEEDS.start;
    for which in ["verifiable", "authenticated", "sticky"] {
        let mut pass = 0;
        for seed in SEEDS {
            let system = System::builder(4).scheduling(Scheduling::Chaotic(seed)).build();
            let history = match which {
                "verifiable" => {
                    let tos = TosFromVerifiable::install(&system);
                    drive_tos(
                        tos.setter(),
                        vec![tos.tester(ProcessId::new(2)), tos.tester(ProcessId::new(3))],
                    );
                    tos.history()
                }
                "authenticated" => {
                    let tos = TosFromAuthenticated::install(&system);
                    drive_tos(
                        tos.setter(),
                        vec![tos.tester(ProcessId::new(2)), tos.tester(ProcessId::new(3))],
                    );
                    tos.history()
                }
                _ => {
                    let tos = TosFromSticky::install(&system);
                    drive_tos(
                        tos.setter(),
                        vec![tos.tester(ProcessId::new(2)), tos.tester(ProcessId::new(3))],
                    );
                    tos.history()
                }
            };
            system.shutdown();
            let ops = history.complete_ops();
            if test_or_set_monitor(true, &ops).is_ok()
                && check(&TestOrSetSpec, &ops).is_linearizable()
            {
                pass += 1;
            }
        }
        println!(
            "    {:<20} {:>10} {:>13}/{} {}",
            which,
            total,
            pass,
            total,
            if pass == total { "PASS" } else { "FAIL" }
        );
    }
    println!();
}

fn drive_tos<S: TosSetter + 'static, T: TosTester + Send + 'static>(
    mut setter: S,
    testers: Vec<T>,
) {
    let mut handles = Vec::new();
    handles.push(std::thread::spawn(move || {
        setter.set().unwrap();
    }));
    for mut t in testers {
        handles.push(std::thread::spawn(move || {
            let _ = t.test().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// E6 — message passing
// ---------------------------------------------------------------------------

fn e6_message_passing() {
    println!("E6  §1/§11: the registers exist in message-passing systems with n > 3f");
    // Emulated base register under a fabricating Byzantine node.
    let mut config = MpConfig::new(4);
    config.byzantine = vec![ProcessId::new(4)];
    let reg = MpRegister::spawn(&config, 0u32);
    let byz = reg.byzantine_endpoint(ProcessId::new(4));
    byz.broadcast(byzreg_mp::Msg::Echo { sn: 999, v: 66u32 });
    byz.broadcast(byzreg_mp::Msg::Valid { sn: 999, v: 66u32 });
    let w = reg.client(ProcessId::new(1));
    let r = reg.client(ProcessId::new(2));
    w.write(3);
    let (ts, v) = r.read();
    println!(
        "    base MP register, n=4, 1 Byzantine flooder: read -> ({ts}, {v})  [expect (1, 3)]"
    );
    reg.shutdown();

    // Algorithm 1 composed over the MP factory.
    let system = System::builder(4).build();
    let factory = MpFactory::default();
    let reg = VerifiableRegister::install_with(&system, 0u32, &factory);
    let mut w = reg.writer();
    let mut r = reg.reader(ProcessId::new(2));
    w.write(7).unwrap();
    w.sign(&7).unwrap();
    let verified = r.verify(&7).unwrap();
    println!(
        "    Algorithm 1 over MP substrate ({} emulated registers): verify(7) -> {verified}",
        factory.spawned()
    );
    system.shutdown();
    println!();
}

// ---------------------------------------------------------------------------
// E7 — applications
// ---------------------------------------------------------------------------

fn e7_applications() {
    println!("E7  §1/§2: signature-free applications (first known), n > 3f");
    // Reliable broadcast round trip.
    let system = System::builder(4).build();
    let rb = ReliableBroadcast::install(&system, 2);
    let mut tx = rb.endpoint(ProcessId::new(2));
    let mut rx = rb.endpoint(ProcessId::new(3));
    tx.broadcast("m1").unwrap();
    let got = rx.try_deliver(ProcessId::new(2)).unwrap();
    println!("    reliable broadcast (sticky, n=4):  deliver -> {got:?}");

    // Snapshot.
    let snap = AtomicSnapshot::install(&system, 0u32);
    let mut h2 = snap.handle(ProcessId::new(2));
    let mut h3 = snap.handle(ProcessId::new(3));
    h2.update(22).unwrap();
    h3.update(33).unwrap();
    let view = h2.scan().unwrap();
    println!("    atomic snapshot (authenticated):   scan -> {view:?}");

    // Asset transfer conservation.
    let at = AssetTransfer::install(&system, 100, 4);
    let mut w2 = at.wallet(ProcessId::new(2));
    let mut w3 = at.wallet(ProcessId::new(3));
    w2.transfer(ProcessId::new(3), 40).unwrap();
    let b2 = w3.balance(2).unwrap();
    let b3 = w3.balance(3).unwrap();
    println!("    asset transfer:                    balances p2={b2}, p3={b3} (total conserved)");
    system.shutdown();

    // Baseline contrast: signatures need only n = 2f + 1.
    let system = System::builder(3).resilience(1).build();
    let oracle = SignatureOracle::new(CostModel::free());
    let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
    let mut w = reg.writer();
    let mut r = reg.reader(ProcessId::new(2));
    w.write(5).unwrap();
    w.sign(&5).unwrap();
    println!(
        "    signed baseline at n=3 (2f+1):     verify -> {}  [impossible without signatures: Thm 31]",
        r.verify(&5).unwrap()
    );
    system.shutdown();
    println!();
}

// ---------------------------------------------------------------------------
// B — latency summary (quick version of the Criterion benches)
// ---------------------------------------------------------------------------

fn b_family_rows<R: SignatureRegister<u64>>(id: &str) {
    // One generic measurement loop for all three register families
    // (write/read/verify through the SignatureRegister trait layer).
    for n in [4usize, 7, 10] {
        let (write, read, verify) = quick_family_latencies::<R>(n);
        let fam = R::FAMILY;
        println!("    {:<44} {:>12}", format!("{id} {fam} n={n}: write"), fmt_ns(write));
        println!("    {:<44} {:>12}", format!("{id} {fam} n={n}: read"), fmt_ns(read));
        println!("    {:<44} {:>12}", format!("{id} {fam} n={n}: verify(true)"), fmt_ns(verify));
    }
}

fn b_latency_summary() {
    println!("B   latency summary (quick in-process measurements; see `cargo bench` for stats)");
    println!("    {:<44} {:>12}", "operation", "mean");

    b_family_rows::<VerifiableRegister<u64>>("B1");
    b_family_rows::<AuthenticatedRegister<u64>>("B2");
    b_family_rows::<StickyRegister<u64>>("B3");

    // B3: sticky first-write wait.
    let first_write = measure(2, 20, || {
        let system = byzreg_bench::bench_system(4);
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        w.write(7u64).unwrap();
        system.shutdown();
    });
    println!(
        "    {:<44} {:>12}",
        "B3 sticky n=4: install + first write (n-f wait)",
        fmt_ns(first_write)
    );

    // B4: signature baseline at 50 µs crypto.
    let system = byzreg_bench::bench_system(4);
    let oracle = SignatureOracle::new(CostModel::uniform(Duration::from_micros(50)));
    let reg = SignedVerifiableRegister::install(&system, 0u64, &oracle);
    let mut w = reg.writer();
    let mut r = reg.reader(ProcessId::new(2));
    w.write(7).unwrap();
    w.sign(&7).unwrap();
    let signed_verify = measure(5, 50, || {
        assert!(r.verify(&7).unwrap());
    });
    println!(
        "    {:<44} {:>12}",
        "B4 signed baseline (50µs crypto): verify",
        fmt_ns(signed_verify)
    );
    system.shutdown();

    // B6: MP substrate.
    let reg = MpRegister::spawn(&MpConfig::new(4), 0u64);
    let w = reg.client(ProcessId::new(1));
    let r = reg.client(ProcessId::new(2));
    w.write(7);
    let mp_write = measure(5, 50, || w.write(7));
    let mp_read = measure(5, 50, || {
        let _ = r.read();
    });
    println!("    {:<44} {:>12}", "B6 MP register n=4: write (quorum)", fmt_ns(mp_write));
    println!("    {:<44} {:>12}", "B6 MP register n=4: read (quorum)", fmt_ns(mp_read));
    reg.shutdown();
    println!();
}
