//! Generic benchmark and measurement harnesses over the
//! [`SignatureRegister`] trait layer.
//!
//! Before the trait layer existed, every register family had its own
//! copy of the same fixture code (install, take handles, prime the
//! witness propagation) and the same operation loops. The harnesses
//! here are written once against the traits and instantiated per family
//! by the B1–B3 benches and the `experiments` driver.

use criterion::{BenchmarkId, Criterion};

use byzreg_core::api::{Family, SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg_runtime::{ProcessId, System};

use crate::{bench_system, measure};

/// A primed register-family fixture: an installed register on a
/// free-running system, with the writer handle, one reader handle, and
/// the value `7` written, signed, and verified once (so witness
/// propagation is warm before measurement starts).
pub struct FamilyFixture<R: SignatureRegister<u64>> {
    system: System,
    /// The register instance (kept alive for the fixture's lifetime).
    pub register: R,
    /// The unique writer handle.
    pub writer: R::Signer,
    /// Reader handle of `p2`.
    pub reader: R::Verifier,
}

impl<R: SignatureRegister<u64>> FamilyFixture<R> {
    /// Installs and primes the fixture on an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if priming fails (shutdown mid-setup) or `n <= 3f`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let system = bench_system(n);
        let register = R::install_default(&system, 0);
        let mut writer = register.signer();
        let mut reader = register.verifier(ProcessId::new(2));
        writer.write_value(7).expect("prime write");
        assert!(writer.sign_value(&7).expect("prime sign"));
        assert!(reader.verify_value(&7).expect("prime verify"), "{}", R::FAMILY);
        FamilyFixture { system, register, writer, reader }
    }

    /// Shuts the hosting system down.
    pub fn shutdown(self) {
        self.system.shutdown();
    }
}

/// The operation latencies every family exposes through the trait
/// layer, benchmarked across `sweep` system sizes: steady-state
/// `write`, `read`, `verify(signed)`, and `verify(unsigned)`.
///
/// Family-specific costs (the sticky first-write wait, the
/// authenticated write burst) stay in the per-family bench files; this
/// covers the shared surface without per-family copy-paste.
pub fn bench_family_ops<R: SignatureRegister<u64>>(c: &mut Criterion, sweep: &[usize]) {
    let mut group = c.benchmark_group(R::FAMILY.label());
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &n in sweep {
        let mut fx = FamilyFixture::<R>::new(n);
        // Algorithm 2's R1 accumulates every write, so an open-ended write
        // loop on a long-lived register both slows itself down and bloats
        // the register the later read/verify benches measure against; its
        // write cost is covered by the bounded-burst bench in
        // benches/authenticated.rs instead.
        if R::FAMILY != Family::Authenticated {
            group.bench_with_input(BenchmarkId::new("write", n), &n, |b, _| {
                b.iter(|| fx.writer.write_value(7).unwrap());
            });
        }
        // `sign` does real work only for the verifiable family; for the
        // implicitly-signed families it is a constant `Ok(true)` and a
        // bench row would be noise.
        if R::FAMILY == Family::Verifiable {
            group.bench_with_input(BenchmarkId::new("sign", n), &n, |b, _| {
                b.iter(|| assert!(fx.writer.sign_value(&7).unwrap()));
            });
        }
        group.bench_with_input(BenchmarkId::new("read", n), &n, |b, _| {
            b.iter(|| assert!(fx.reader.read_value().unwrap().is_some()));
        });
        group.bench_with_input(BenchmarkId::new("verify_true", n), &n, |b, _| {
            b.iter(|| assert!(fx.reader.verify_value(&7).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("verify_false", n), &n, |b, _| {
            b.iter(|| assert!(!fx.reader.verify_value(&8).unwrap()));
        });
        fx.shutdown();
    }
    group.finish();
}

/// Quick (non-criterion) mean latencies for the `experiments` driver's
/// B-table: `(write, read, verify_true)` in nanoseconds at size `n`.
///
/// `read` and `verify` are measured *before* `write` so the
/// authenticated family's accumulating `R1` (one tuple per write) does
/// not bloat the register they run against; the authenticated `write`
/// mean is itself taken over a short bounded burst for the same reason
/// (cf. the `write_burst16` bench in `benches/authenticated.rs`).
#[must_use]
pub fn quick_family_latencies<R: SignatureRegister<u64>>(n: usize) -> (f64, f64, f64) {
    let mut fx = FamilyFixture::<R>::new(n);
    let read = measure(20, 200, || {
        let _ = fx.reader.read_value().unwrap();
    });
    let verify = measure(20, 200, || {
        assert!(fx.reader.verify_value(&7).unwrap());
    });
    let (warmup, iters) = if R::FAMILY == Family::Authenticated { (4, 28) } else { (20, 200) };
    let write = measure(warmup, iters, || fx.writer.write_value(7).unwrap());
    fx.shutdown();
    (write, read, verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};

    #[test]
    fn fixture_primes_every_family() {
        FamilyFixture::<VerifiableRegister<u64>>::new(4).shutdown();
        FamilyFixture::<AuthenticatedRegister<u64>>::new(4).shutdown();
        FamilyFixture::<StickyRegister<u64>>::new(4).shutdown();
    }

    #[test]
    fn quick_latencies_are_positive() {
        let (w, r, v) = quick_family_latencies::<StickyRegister<u64>>(4);
        assert!(w >= 0.0 && r >= 0.0 && v >= 0.0);
    }
}
