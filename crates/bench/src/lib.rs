//! # byzreg-bench
//!
//! Workload helpers shared by the Criterion benches and the `experiments`
//! binary. Each experiment/bench id (E1–E7, B1–B7) is defined in
//! `EXPERIMENTS.md` and `DESIGN.md` §6.
//!
//! The [`generic`] module hosts harnesses written once against the
//! `SignatureRegister` trait layer and instantiated per register family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generic;

use byzreg_runtime::{Scheduling, System};

/// Builds a free-running system of `n` processes (benchmark default).
#[must_use]
pub fn bench_system(n: usize) -> System {
    System::builder(n).scheduling(Scheduling::Free).build()
}

/// The `(n, f)` sweep used by the latency benches: `f = ⌊(n−1)/3⌋`.
pub const SWEEP: [usize; 3] = [4, 7, 10];

/// Formats a nanosecond latency as a human-readable string.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Measures the mean wall-clock latency of `op` over `iters` calls, after
/// `warmup` unmeasured calls. Used by the `experiments` binary (Criterion
/// handles the statistics for the benches proper).
pub fn measure(warmup: u32, iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        op();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(500.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
    }

    #[test]
    fn measure_returns_positive_latency() {
        let ns = measure(1, 10, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}
