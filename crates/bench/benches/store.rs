//! B8 — the sharded store: the batched `verify_many`/`read_many` paths
//! against the per-key loop, per register family, under the skewed batch
//! shape real stores see (hot keys repeating within a batch).
//!
//! The batched path groups a batch by key, dedupes identical checks, and
//! runs each key's distinct values through **one** §5.1 round sequence;
//! the loop pays a full round sequence per check. The machine-readable
//! version of this comparison is emitted by the `store_workload` binary
//! into `BENCH_store.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::bench_system;
use byzreg_core::api::SignatureRegister;
use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
use byzreg_runtime::{LocalFactory, ProcessId};
use byzreg_store::store::{ByzStore, StoreConfig};
use byzreg_store::workload::{build_check_batch, value_of};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 64;
const KEY_SPACE: u64 = 256;
const SKEW: f64 = 0.85;

fn bench_store<R: SignatureRegister<u64>>(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let system = bench_system(4);
    let store: ByzStore<'_, u64, u64, R, _> =
        ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 8 });
    let mut rng = StdRng::seed_from_u64(42);
    let checks = build_check_batch(&mut rng, KEY_SPACE, SKEW, BATCH);
    // Prepopulate every key the batch touches so the measurement sees
    // steady-state verification, not first-touch instantiation.
    for (key, _) in &checks {
        store.write(*key, value_of(*key)).unwrap();
    }
    let pid = ProcessId::new(2);

    group.bench_with_input(BenchmarkId::new("verify_looped", R::FAMILY), &BATCH, |b, _| {
        b.iter(|| {
            for (key, v) in &checks {
                let _ = store.verify(pid, key, v).unwrap();
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("verify_batched", R::FAMILY), &BATCH, |b, _| {
        b.iter(|| store.verify_many(pid, &checks).unwrap());
    });

    let keys: Vec<u64> = checks.iter().map(|(k, _)| *k).collect();
    group.bench_with_input(BenchmarkId::new("read_looped", R::FAMILY), &BATCH, |b, _| {
        b.iter(|| {
            for key in &keys {
                let _ = store.read(pid, key).unwrap();
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("read_batched", R::FAMILY), &BATCH, |b, _| {
        b.iter(|| store.read_many(pid, &keys).unwrap());
    });

    group.finish();
    system.shutdown();
}

fn bench_all(c: &mut Criterion) {
    bench_store::<VerifiableRegister<u64>>(c);
    bench_store::<AuthenticatedRegister<u64>>(c);
    bench_store::<StickyRegister<u64>>(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
