//! B2 — the §7.1 trade-off: an authenticated `Read` embeds a full
//! `Verify(−)` execution, while a verifiable `Read` is a single base-register
//! read. This bench quantifies that gap across `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::{bench_system, SWEEP};
use byzreg_core::{AuthenticatedRegister, VerifiableRegister};
use byzreg_runtime::ProcessId;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("authenticated");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SWEEP {
        let system = bench_system(n);
        let auth = AuthenticatedRegister::install(&system, 0u64);
        let ver = VerifiableRegister::install(&system, 0u64);
        let mut aw = auth.writer();
        let mut ar = auth.reader(ProcessId::new(2));
        let mut vw = ver.writer();
        let mut vr = ver.reader(ProcessId::new(2));
        aw.write(7).unwrap();
        vw.write(7).unwrap();
        assert_eq!(ar.read().unwrap(), 7);

        // Algorithm 2 accumulates every write in R1 (its history is
        // unbounded by design), so the write cost is measured as the mean
        // over a bounded burst on a fresh register.
        group.bench_with_input(BenchmarkId::new("write_burst16", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let system = bench_system(n);
                    let reg = AuthenticatedRegister::install(&system, 0u64);
                    let w = reg.writer();
                    (system, reg, w)
                },
                |(system, _reg, mut w)| {
                    for v in 0..16u64 {
                        w.write(v).unwrap();
                    }
                    system.shutdown();
                },
                criterion::BatchSize::PerIteration,
            );
        });
        group.bench_with_input(BenchmarkId::new("verify", n), &n, |b, _| {
            b.iter(|| assert!(ar.verify(&7).unwrap()));
        });
        // The headline comparison: verified read vs plain read.
        group.bench_with_input(BenchmarkId::new("read_verified", n), &n, |b, _| {
            b.iter(|| assert_eq!(ar.read().unwrap(), 7));
        });
        group.bench_with_input(BenchmarkId::new("read_plain_verifiable", n), &n, |b, _| {
            b.iter(|| assert_eq!(vr.read().unwrap(), 7));
        });
        system.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
