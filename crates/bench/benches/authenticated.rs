//! B2 — the §7.1 trade-off: an authenticated `Read` embeds a full
//! `Verify(−)` execution, while a verifiable `Read` is a single
//! base-register read. The shared per-operation costs come from the
//! generic family harness; this file adds the family-specific pieces —
//! the bounded write burst (Algorithm 2's `R1` grows with every write)
//! and the verified-read vs plain-read headline comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::generic::{bench_family_ops, FamilyFixture};
use byzreg_bench::{bench_system, SWEEP};
use byzreg_core::{AuthenticatedRegister, VerifiableRegister};

fn bench_ops(c: &mut Criterion) {
    bench_family_ops::<AuthenticatedRegister<u64>>(c, &SWEEP);

    let mut group = c.benchmark_group("authenticated");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SWEEP {
        // Algorithm 2 accumulates every write in R1 (its history is
        // unbounded by design), so the write cost is measured as the mean
        // over a bounded burst on a fresh register.
        group.bench_with_input(BenchmarkId::new("write_burst16", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let system = bench_system(n);
                    let reg = AuthenticatedRegister::install(&system, 0u64);
                    let w = reg.writer();
                    (system, reg, w)
                },
                |(system, _reg, mut w)| {
                    for v in 0..16u64 {
                        w.write(v).unwrap();
                    }
                    system.shutdown();
                },
                criterion::BatchSize::PerIteration,
            );
        });

        // The headline comparison: verified read vs plain read.
        let mut auth = FamilyFixture::<AuthenticatedRegister<u64>>::new(n);
        let mut ver = FamilyFixture::<VerifiableRegister<u64>>::new(n);
        group.bench_with_input(BenchmarkId::new("read_verified", n), &n, |b, _| {
            b.iter(|| assert_eq!(auth.reader.read().unwrap(), 7));
        });
        group.bench_with_input(BenchmarkId::new("read_plain_verifiable", n), &n, |b, _| {
            b.iter(|| assert_eq!(ver.reader.read().unwrap(), 7));
        });
        auth.shutdown();
        ver.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
