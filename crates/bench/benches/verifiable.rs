//! B1 — operation latency of the verifiable register (Algorithm 1) as a
//! function of system size `n` (with `f = ⌊(n−1)/3⌋`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::{bench_system, SWEEP};
use byzreg_core::VerifiableRegister;
use byzreg_runtime::ProcessId;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifiable");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SWEEP {
        let system = bench_system(n);
        let reg = VerifiableRegister::install(&system, 0u64);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(7).unwrap();
        w.sign(&7).unwrap();
        // Prime the witness propagation once.
        assert!(r.verify(&7).unwrap());

        group.bench_with_input(BenchmarkId::new("write", n), &n, |b, _| {
            b.iter(|| w.write(7).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("sign", n), &n, |b, _| {
            b.iter(|| w.sign(&7).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("read", n), &n, |b, _| {
            b.iter(|| r.read().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("verify_true", n), &n, |b, _| {
            b.iter(|| assert!(r.verify(&7).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("verify_false", n), &n, |b, _| {
            b.iter(|| assert!(!r.verify(&8).unwrap()));
        });
        system.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
