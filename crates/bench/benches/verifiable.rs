//! B1 — operation latency of the verifiable register (Algorithm 1) as a
//! function of system size `n` (with `f = ⌊(n−1)/3⌋`).
//!
//! The operation loop is the generic family harness of
//! `byzreg_bench::generic`, instantiated for Algorithm 1 — the same code
//! the B2/B3 benches run for the other families.

use criterion::{criterion_group, criterion_main, Criterion};

use byzreg_bench::generic::bench_family_ops;
use byzreg_bench::SWEEP;
use byzreg_core::VerifiableRegister;

fn bench_ops(c: &mut Criterion) {
    bench_family_ops::<VerifiableRegister<u64>>(c, &SWEEP);
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
