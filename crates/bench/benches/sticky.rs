//! B3 — the §9.1 trade-off: a sticky `Write` must wait for `n − f`
//! witnesses before returning (a verifiable `Write` returns after one base
//! write). Only the *first* sticky write pays the wait; this bench measures
//! it by reinstalling the register per iteration. Steady-state per-op costs
//! come from the generic family harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::generic::{bench_family_ops, FamilyFixture};
use byzreg_bench::{bench_system, SWEEP};
use byzreg_core::{StickyRegister, VerifiableRegister};

fn bench_ops(c: &mut Criterion) {
    bench_family_ops::<StickyRegister<u64>>(c, &SWEEP);

    let mut group = c.benchmark_group("sticky");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SWEEP {
        // First-write latency: needs a fresh register per iteration.
        group.bench_with_input(BenchmarkId::new("first_write", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let system = bench_system(n);
                    let reg = StickyRegister::install(&system);
                    let w = reg.writer();
                    (system, reg, w)
                },
                |(system, _reg, mut w)| {
                    w.write(7u64).unwrap();
                    system.shutdown();
                },
                criterion::BatchSize::PerIteration,
            );
        });

        // Context: a verifiable write (one base-register step) at the
        // same size, on a primed long-lived fixture.
        let mut ver = FamilyFixture::<VerifiableRegister<u64>>::new(n);
        group.bench_with_input(BenchmarkId::new("verifiable_write", n), &n, |b, _| {
            b.iter(|| ver.writer.write(7).unwrap());
        });
        ver.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
