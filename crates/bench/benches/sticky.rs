//! B3 — the §9.1 trade-off: a sticky `Write` must wait for `n − f`
//! witnesses before returning (a verifiable `Write` returns after one base
//! write). Only the *first* sticky write pays the wait; this bench measures
//! it by reinstalling the register per iteration, against the per-op costs
//! of the other registers for context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::{bench_system, SWEEP};
use byzreg_core::{StickyRegister, VerifiableRegister};
use byzreg_runtime::ProcessId;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sticky");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SWEEP {
        // First-write latency: needs a fresh register per iteration.
        group.bench_with_input(BenchmarkId::new("first_write", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let system = bench_system(n);
                    let reg = StickyRegister::install(&system);
                    let w = reg.writer();
                    (system, reg, w)
                },
                |(system, _reg, mut w)| {
                    w.write(7u64).unwrap();
                    system.shutdown();
                },
                criterion::BatchSize::PerIteration,
            );
        });

        // Context: verifiable write on a shared long-lived system.
        let system = bench_system(n);
        let ver = VerifiableRegister::install(&system, 0u64);
        let mut vw = ver.writer();
        group.bench_with_input(BenchmarkId::new("verifiable_write", n), &n, |b, _| {
            b.iter(|| vw.write(7).unwrap());
        });

        // Steady-state sticky read after the value settled.
        let sticky = StickyRegister::install(&system);
        let mut sw = sticky.writer();
        sw.write(7u64).unwrap();
        let mut sr = sticky.reader(ProcessId::new(2));
        assert_eq!(sr.read().unwrap(), Some(7));
        group.bench_with_input(BenchmarkId::new("read_settled", n), &n, |b, _| {
            b.iter(|| assert_eq!(sr.read().unwrap(), Some(7)));
        });
        system.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
