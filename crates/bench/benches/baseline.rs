//! B4 — signature-free vs signature-based: sweep the simulated crypto cost
//! of the ideal-signature baseline and find where the paper's signature-free
//! `Verify` (quorum voting, no crypto) beats signature verification.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::bench_system;
use byzreg_core::VerifiableRegister;
use byzreg_crypto::{CostModel, SignatureOracle, SignedVerifiableRegister};
use byzreg_runtime::ProcessId;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n = 4;

    // Signature-free Algorithm 1.
    let system = bench_system(n);
    let reg = VerifiableRegister::install(&system, 0u64);
    let mut w = reg.writer();
    let mut r = reg.reader(ProcessId::new(2));
    w.write(7).unwrap();
    w.sign(&7).unwrap();
    assert!(r.verify(&7).unwrap());
    group.bench_function("signature_free/verify", |b| {
        b.iter(|| assert!(r.verify(&7).unwrap()));
    });
    group.bench_function("signature_free/sign", |b| {
        b.iter(|| w.sign(&7).unwrap());
    });
    system.shutdown();

    // Signature-based baseline at several crypto costs. Real Ed25519
    // verification costs roughly 50-200 µs on commodity hardware.
    for cost_us in [0u64, 10, 50, 200] {
        let system = bench_system(n);
        let oracle = SignatureOracle::new(CostModel::uniform(Duration::from_micros(cost_us)));
        let reg = SignedVerifiableRegister::install(&system, 0u64, &oracle);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(7).unwrap();
        w.sign(&7).unwrap();
        assert!(r.verify(&7).unwrap());
        group.bench_with_input(BenchmarkId::new("signed/verify", cost_us), &cost_us, |b, _| {
            b.iter(|| assert!(r.verify(&7).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("signed/sign", cost_us), &cost_us, |b, _| {
            b.iter(|| w.sign(&7).unwrap());
        });
        system.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
