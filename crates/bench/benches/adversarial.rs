//! B5 — the cost of the §5.1 `set0`-reset mechanism under attack: `Verify`
//! latency with vote-flipping Byzantine helpers (who stage the
//! `f < k < 2f + 1` bind) versus a quiet system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzreg_bench::bench_system;
use byzreg_core::{attacks, VerifiableRegister};
use byzreg_runtime::{ProcessId, System};

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        // Quiet system.
        let system = bench_system(n);
        let reg = VerifiableRegister::install(&system, 0u64);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(7).unwrap();
        w.sign(&7).unwrap();
        assert!(r.verify(&7).unwrap());
        group.bench_with_input(BenchmarkId::new("verify_quiet", n), &n, |b, _| {
            b.iter(|| assert!(r.verify(&7).unwrap()));
        });
        system.shutdown();

        // f vote-flipping adversaries.
        let mut builder = System::builder(n).scheduling(byzreg_runtime::Scheduling::Free);
        for i in 0..f {
            builder = builder.byzantine(ProcessId::new(n - i));
        }
        let system = builder.build();
        let reg = VerifiableRegister::install(&system, 0u64);
        for i in 0..f {
            let pid = ProcessId::new(n - i);
            let ports = reg.attack_ports(pid);
            system.spawn_byzantine(pid, attacks::verifiable::vote_flipper(ports, 7));
        }
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(7).unwrap();
        w.sign(&7).unwrap();
        assert!(r.verify(&7).unwrap());
        group.bench_with_input(BenchmarkId::new("verify_under_flippers", n), &n, |b, _| {
            b.iter(|| assert!(r.verify(&7).unwrap()));
        });
        system.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
