//! B7 — application-level cost of removing signatures: reliable broadcast
//! (broadcast + first delivery) and snapshot (update + scan), signature-free
//! at `n = 3f + 1`, vs the signed register baseline at `n = 2f + 1`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use byzreg_apps::{AtomicSnapshot, ReliableBroadcast};
use byzreg_bench::bench_system;
use byzreg_crypto::{CostModel, SignatureOracle, SignedVerifiableRegister};
use byzreg_runtime::{ProcessId, System};

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    // Signature-free reliable broadcast, n = 4 (f = 1).
    group.bench_function("rb_sigfree_n4/broadcast_deliver", |b| {
        b.iter_batched(
            || {
                let system = bench_system(4);
                let rb = ReliableBroadcast::install(&system, 1);
                let tx = rb.endpoint(ProcessId::new(2));
                let rx = rb.endpoint(ProcessId::new(3));
                (system, rb, tx, rx)
            },
            |(system, _rb, mut tx, mut rx)| {
                tx.broadcast(7u64).unwrap();
                assert_eq!(rx.try_deliver(ProcessId::new(2)).unwrap(), Some((0, 7)));
                system.shutdown();
            },
            criterion::BatchSize::PerIteration,
        );
    });

    // Signed-register "broadcast" (write + sign + verify), n = 3 (f = 1),
    // with a realistic 50 µs crypto cost.
    group.bench_function("rb_signed_n3/broadcast_deliver", |b| {
        b.iter_batched(
            || {
                let system = System::builder(3).resilience(1).build();
                let oracle = SignatureOracle::new(CostModel::uniform(Duration::from_micros(50)));
                let reg = SignedVerifiableRegister::install(&system, 0u64, &oracle);
                let w = reg.writer();
                let r = reg.reader(ProcessId::new(2));
                (system, reg, w, r)
            },
            |(system, _reg, mut w, mut r)| {
                w.write(7).unwrap();
                w.sign(&7).unwrap();
                assert!(r.verify(&7).unwrap());
                system.shutdown();
            },
            criterion::BatchSize::PerIteration,
        );
    });

    // Snapshot update + scan. Algorithm 2's R1 accumulates every write, so
    // the register is reinstalled per small batch to measure steady-state
    // cost at a bounded history size.
    group.bench_function("snapshot_n4/update", |b| {
        b.iter_batched(
            || {
                let system = bench_system(4);
                let snap = AtomicSnapshot::install(&system, 0u64);
                let mut h = snap.handle(ProcessId::new(2));
                h.update(1).unwrap();
                (system, snap, h)
            },
            |(system, _snap, mut h)| {
                for v in 0..16u64 {
                    h.update(v).unwrap();
                }
                system.shutdown();
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.bench_function("snapshot_n4/scan", |b| {
        b.iter_batched(
            || {
                let system = bench_system(4);
                let snap = AtomicSnapshot::install(&system, 0u64);
                let mut h = snap.handle(ProcessId::new(2));
                h.update(1).unwrap();
                (system, snap, h)
            },
            |(system, _snap, mut h)| {
                for _ in 0..16 {
                    let _ = h.scan().unwrap();
                }
                system.shutdown();
            },
            criterion::BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
