//! B6 — shared-memory vs message-passing instantiation: base-register
//! read/write latency on the local lock-backed cell versus the `n > 3f`
//! signature-free MP emulation (quorum round trips).

use criterion::{criterion_group, criterion_main, Criterion};

use byzreg_mp::{MpConfig, MpRegister};
use byzreg_runtime::{register, FreeGate, ProcessId, StepGate};
use std::sync::Arc;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    // Local shared-memory cell.
    let gate: Arc<dyn StepGate> = Arc::new(FreeGate::new());
    let (w, r) = register::swmr(gate, ProcessId::new(1), "R", 0u64);
    group.bench_function("local/write", |b| b.iter(|| w.write(7)));
    group.bench_function("local/read", |b| b.iter(|| assert_eq!(r.read(), 7)));

    // Message-passing emulation, n = 4, f = 1.
    let reg = MpRegister::spawn(&MpConfig::new(4), 0u64);
    let writer = reg.client(ProcessId::new(1));
    let reader = reg.client(ProcessId::new(2));
    writer.write(7);
    group.bench_function("mp/write", |b| b.iter(|| writer.write(7)));
    group.bench_function("mp/read", |b| {
        b.iter(|| {
            let (_, v) = reader.read();
            assert_eq!(v, 7);
        })
    });
    reg.shutdown();

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
