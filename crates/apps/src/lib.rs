//! # byzreg-apps
//!
//! Signature-free applications built on the registers of `byzreg-core`,
//! realizing the transformations described in §1–§2 of the paper:
//!
//! * [`non_equivocation`] — non-equivocating broadcast from sticky
//!   registers (the §8 construction; cf. Clement et al. [4]),
//! * [`reliable_broadcast`] — Byzantine reliable broadcast, the
//!   signature-free counterpart of Cohen & Keidar [5] (`n > 3f`),
//! * [`snapshot`] — Byzantine atomic snapshot from authenticated registers,
//! * [`asset_transfer`] — consensusless asset transfer over the broadcast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset_transfer;
pub mod non_equivocation;
pub mod reliable_broadcast;
pub mod snapshot;

pub use asset_transfer::{AssetTransfer, Transfer, Wallet};
pub use non_equivocation::{NebEndpoint, NonEquivocatingBroadcast};
pub use reliable_broadcast::{RbEndpoint, ReliableBroadcast};
pub use snapshot::{AtomicSnapshot, SnapshotHandle};
