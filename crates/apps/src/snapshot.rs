//! **Byzantine atomic snapshot** — signature-free, `n > 3f`.
//!
//! Cohen & Keidar [5] give a Byzantine-linearizable atomic snapshot from
//! SWMR registers with signatures (`n > 2f`); signing each written value is
//! what stops a Byzantine process from presenting different cell values to
//! different scanners. Here each process's cell is an **authenticated
//! register** (Algorithm 2), whose `Read` only returns verified values with
//! the relay property — so a scanned value can be justified to everyone.
//!
//! The scan uses the classic double collect of Afek et al. [1]: repeat until
//! two successive collects are equal. Unlike [5] we do not implement the
//! embedded-scan helping mechanism, so scans are **obstruction-free** rather
//! than wait-free (a bounded retry count with a best-effort fallback keeps
//! tests and benches terminating); DESIGN.md records this deviation.

use byzreg_core::authenticated::AuthenticatedRegister;
use byzreg_core::{AuthenticatedReader, AuthenticatedWriter};
use byzreg_runtime::{ProcessId, Result, System};

/// A cell value: `(sequence, value)` — the sequence keeps successive updates
/// by the same process distinct so double collects detect motion.
pub type Cell<V> = (u64, V);

/// One installed snapshot object: an authenticated register per process.
pub struct AtomicSnapshot<V: Ord> {
    cells: Vec<AuthenticatedRegister<Cell<V>>>,
    n: usize,
    v0: V,
}

impl<V: byzreg_runtime::Value> AtomicSnapshot<V> {
    /// Installs the object with every segment initialized to `v0`.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    #[must_use]
    pub fn install(system: &System, v0: V) -> Self {
        let n = system.env().n();
        let cells = (1..=n)
            .map(|i| {
                AuthenticatedRegister::install_for_writer(
                    system,
                    (0, v0.clone()),
                    ProcessId::new(i),
                )
            })
            .collect();
        AtomicSnapshot { cells, n, v0 }
    }

    /// The handle of a correct process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is declared Byzantine or the handle was taken.
    #[must_use]
    pub fn handle(&self, pid: ProcessId) -> SnapshotHandle<V> {
        let writer = self.cells[pid.zero_based()].writer();
        let readers = (1..=self.n)
            .map(|i| {
                let owner = ProcessId::new(i);
                (owner != pid).then(|| self.cells[i - 1].reader(pid))
            })
            .collect();
        SnapshotHandle { pid, seq: 0, last_own: (0, self.v0.clone()), writer, readers }
    }
}

impl<V: byzreg_runtime::Value> std::fmt::Debug for AtomicSnapshot<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicSnapshot(n = {})", self.n)
    }
}

/// A process's update/scan handle.
pub struct SnapshotHandle<V: Ord> {
    pid: ProcessId,
    seq: u64,
    last_own: Cell<V>,
    writer: AuthenticatedWriter<Cell<V>>,
    readers: Vec<Option<AuthenticatedReader<Cell<V>>>>,
}

impl<V: byzreg_runtime::Value> SnapshotHandle<V> {
    /// This handle's process.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `update_i(v)`: publishes `v` in this process's segment.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn update(&mut self, v: V) -> Result<()> {
        self.seq += 1;
        self.last_own = (self.seq, v);
        self.writer.write(self.last_own.clone())
    }

    fn collect(&mut self) -> Result<Vec<Cell<V>>> {
        let mut out = Vec::with_capacity(self.readers.len());
        for slot in &mut self.readers {
            match slot {
                Some(reader) => out.push(reader.read()?),
                None => out.push(self.last_own.clone()),
            }
        }
        Ok(out)
    }

    /// `scan()`: a double collect, retried until clean (at most `retries`
    /// times; on exhaustion the last collect is returned, which can only
    /// happen under continuous interference).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn scan_with_retries(&mut self, retries: usize) -> Result<Vec<V>> {
        let mut previous = self.collect()?;
        for _ in 0..retries {
            let current = self.collect()?;
            if current == previous {
                return Ok(current.into_iter().map(|(_, v)| v).collect());
            }
            previous = current;
        }
        Ok(previous.into_iter().map(|(_, v)| v).collect())
    }

    /// `scan()` with the default retry budget (64).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn scan(&mut self) -> Result<Vec<V>> {
        self.scan_with_retries(64)
    }
}

impl<V: byzreg_runtime::Value> std::fmt::Debug for SnapshotHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapshotHandle({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::Scheduling;

    #[test]
    fn scan_sees_completed_updates() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(71)).build();
        let snap = AtomicSnapshot::install(&system, 0u32);
        let mut h2 = snap.handle(ProcessId::new(2));
        let mut h3 = snap.handle(ProcessId::new(3));
        h2.update(22).unwrap();
        h3.update(33).unwrap();
        let view = h2.scan().unwrap();
        assert_eq!(view[1], 22);
        assert_eq!(view[2], 33);
        assert_eq!(view[0], 0, "p1 never updated");
        system.shutdown();
    }

    #[test]
    fn scans_are_comparable_when_sequential() {
        // Two sequential scans by different processes: the second must
        // dominate the first (snapshot monotonicity under quiescence).
        let system = System::builder(4).scheduling(Scheduling::Chaotic(72)).build();
        let snap = AtomicSnapshot::install(&system, 0u32);
        let mut h2 = snap.handle(ProcessId::new(2));
        let mut h3 = snap.handle(ProcessId::new(3));
        h2.update(1).unwrap();
        let s1 = h3.scan().unwrap();
        h2.update(2).unwrap();
        let s2 = h3.scan().unwrap();
        assert_eq!(s1[1], 1);
        assert_eq!(s2[1], 2);
        system.shutdown();
    }

    #[test]
    fn own_segment_is_reflected_without_self_read() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(73)).build();
        let snap = AtomicSnapshot::install(&system, 0u32);
        let mut h2 = snap.handle(ProcessId::new(2));
        h2.update(9).unwrap();
        let view = h2.scan().unwrap();
        assert_eq!(view[1], 9);
        system.shutdown();
    }
}
