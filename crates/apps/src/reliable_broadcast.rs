//! **Byzantine reliable broadcast** — signature-free, `n > 3f`.
//!
//! Cohen & Keidar [5] build a Byzantine-linearizable reliable broadcast from
//! SWMR registers *with signatures* for `n > 2f`. The paper (§1, §2) points
//! out that the signature properties their construction relies on are
//! provided by the registers of this crate's `byzreg-core`, yielding *"the
//! first known implementations of these objects in systems with Byzantine
//! processes without signatures"* — at the cost of requiring `n > 3f`.
//!
//! This module realizes that translation: each `(sender, slot)` pair is one
//! **sticky register**. Because a completed sticky `Write` is visible to all
//! correct readers and can never change (Obs. 22–24), the broadcast enjoys:
//!
//! * **validity** — a correct sender's message is deliverable by everyone
//!   as soon as `broadcast` returns;
//! * **integrity / no-duplication** — at most one message per slot;
//! * **agreement (non-equivocation)** — correct processes never deliver
//!   different messages for the same slot, even from a Byzantine sender;
//! * **totality/relay** — once one correct process delivers, every correct
//!   process that polls the slot delivers the same message.

use std::collections::HashMap;

use byzreg_core::sticky::StickyRegister;
use byzreg_core::{StickyReader, StickyWriter};
use byzreg_runtime::{ProcessId, Result, System};

/// FIFO Byzantine reliable broadcast with a bounded number of slots per
/// sender (slots are pre-allocated sticky registers).
pub struct ReliableBroadcast<M> {
    registers: Vec<Vec<StickyRegister<M>>>, // [sender][slot]
    n: usize,
    slots: usize,
}

impl<M: byzreg_runtime::Value> ReliableBroadcast<M> {
    /// Installs the object with `slots` broadcast slots per sender.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    #[must_use]
    pub fn install(system: &System, slots: usize) -> Self {
        let n = system.env().n();
        let registers = (1..=n)
            .map(|s| {
                (0..slots)
                    .map(|_| StickyRegister::install_for_writer(system, ProcessId::new(s)))
                    .collect()
            })
            .collect();
        ReliableBroadcast { registers, n, slots }
    }

    /// Slots per sender.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The endpoint of a correct process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is declared Byzantine or the endpoint was taken.
    #[must_use]
    pub fn endpoint(&self, pid: ProcessId) -> RbEndpoint<M> {
        let writers = self.registers[pid.zero_based()].iter().map(|r| r.writer()).collect();
        let mut readers = HashMap::new();
        for s in 1..=self.n {
            let sender = ProcessId::new(s);
            if sender != pid {
                let slot_readers: Vec<StickyReader<M>> =
                    self.registers[s - 1].iter().map(|r| r.reader(pid)).collect();
                readers.insert(sender, slot_readers);
            }
        }
        RbEndpoint { pid, next_slot: 0, next_deliver: HashMap::new(), writers, readers }
    }
}

impl<M: byzreg_runtime::Value> std::fmt::Debug for ReliableBroadcast<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReliableBroadcast(n = {}, slots = {})", self.n, self.slots)
    }
}

/// A process's handle on the reliable-broadcast object.
pub struct RbEndpoint<M> {
    pid: ProcessId,
    next_slot: usize,
    next_deliver: HashMap<ProcessId, usize>,
    writers: Vec<StickyWriter<M>>,
    readers: HashMap<ProcessId, Vec<StickyReader<M>>>,
}

impl<M: byzreg_runtime::Value> RbEndpoint<M> {
    /// This endpoint's process.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Broadcasts `m` in this process's next slot.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    ///
    /// # Panics
    ///
    /// Panics if all slots were used.
    pub fn broadcast(&mut self, m: M) -> Result<()> {
        assert!(self.next_slot < self.writers.len(), "out of broadcast slots");
        let slot = self.next_slot;
        self.next_slot += 1;
        self.writers[slot].write(m)
    }

    /// Attempts to deliver `sender`'s next undelivered message (FIFO).
    /// Returns `None` if the next slot is still empty.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn try_deliver(&mut self, sender: ProcessId) -> Result<Option<(usize, M)>> {
        let next = self.next_deliver.entry(sender).or_insert(0);
        let readers = self.readers.get_mut(&sender).expect("not own slot");
        if *next >= readers.len() {
            return Ok(None);
        }
        match readers[*next].read()? {
            Some(m) => {
                let slot = *next;
                *next += 1;
                Ok(Some((slot, m)))
            }
            None => Ok(None),
        }
    }

    /// Drains every currently deliverable message from `sender`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn deliver_all(&mut self, sender: ProcessId) -> Result<Vec<(usize, M)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.try_deliver(sender)? {
            out.push(pair);
        }
        Ok(out)
    }
}

impl<M: byzreg_runtime::Value> std::fmt::Debug for RbEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RbEndpoint({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::Scheduling;

    #[test]
    fn fifo_delivery_of_a_stream() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(61)).build();
        let rb = ReliableBroadcast::install(&system, 3);
        let mut e2 = rb.endpoint(ProcessId::new(2));
        let mut e3 = rb.endpoint(ProcessId::new(3));
        e2.broadcast(10u32).unwrap();
        e2.broadcast(20).unwrap();
        let got = e3.deliver_all(ProcessId::new(2)).unwrap();
        assert_eq!(got, vec![(0, 10), (1, 20)]);
        e2.broadcast(30).unwrap();
        let got = e3.deliver_all(ProcessId::new(2)).unwrap();
        assert_eq!(got, vec![(2, 30)]);
        system.shutdown();
    }

    #[test]
    fn totality_after_first_delivery() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(62)).build();
        let rb = ReliableBroadcast::install(&system, 1);
        let mut e2 = rb.endpoint(ProcessId::new(2));
        let mut e3 = rb.endpoint(ProcessId::new(3));
        let mut e4 = rb.endpoint(ProcessId::new(4));
        e2.broadcast(7u32).unwrap();
        // One correct process delivers...
        assert_eq!(e3.try_deliver(ProcessId::new(2)).unwrap(), Some((0, 7)));
        // ... so every other correct process delivers the same message.
        assert_eq!(e4.try_deliver(ProcessId::new(2)).unwrap(), Some((0, 7)));
        system.shutdown();
    }

    #[test]
    #[should_panic(expected = "out of broadcast slots")]
    fn slot_exhaustion_panics() {
        let system = System::builder(4).build();
        let rb = ReliableBroadcast::install(&system, 1);
        let mut e2 = rb.endpoint(ProcessId::new(2));
        e2.broadcast(1u32).unwrap();
        let _ = e2.broadcast(2);
    }
}
