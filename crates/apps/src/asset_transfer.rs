//! **Asset transfer** — the third object of Cohen & Keidar [5], signature-
//! free for `n > 3f`.
//!
//! Asset transfer is consensusless: because every account has a single
//! owner, it suffices that the owner's outgoing transfers form one agreed
//! sequence — exactly what the FIFO [`ReliableBroadcast`] built from sticky
//! registers provides. An observer applies owner `o`'s `k`-th transfer only
//! after `o`'s previous transfers and enough incoming credits are applied,
//! so Byzantine owners cannot double-spend: all correct observers evaluate
//! the *same* transfer sequence against the *same* validity rule.
//!
//! [`ReliableBroadcast`]: crate::reliable_broadcast::ReliableBroadcast

use std::collections::HashMap;

use byzreg_runtime::{ProcessId, Result, System};

use crate::reliable_broadcast::{RbEndpoint, ReliableBroadcast};

/// A transfer order: `amount` from the broadcasting owner to `to`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Transfer {
    /// Recipient account (a process id index).
    pub to: usize,
    /// Amount.
    pub amount: u64,
}

/// The asset-transfer object: account ledger over reliable broadcast.
pub struct AssetTransfer {
    rb: ReliableBroadcast<Transfer>,
    initial: u64,
    n: usize,
}

impl AssetTransfer {
    /// Installs the object; every account starts with `initial` units and
    /// each owner may issue at most `slots` transfers.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    #[must_use]
    pub fn install(system: &System, initial: u64, slots: usize) -> Self {
        AssetTransfer {
            rb: ReliableBroadcast::install(system, slots),
            initial,
            n: system.env().n(),
        }
    }

    /// The wallet of a correct process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is declared Byzantine or the wallet was taken.
    #[must_use]
    pub fn wallet(&self, pid: ProcessId) -> Wallet {
        Wallet {
            pid,
            n: self.n,
            initial: self.initial,
            rb: self.rb.endpoint(pid),
            applied: Vec::new(),
            pending: HashMap::new(),
            own_seq: Vec::new(),
        }
    }
}

impl std::fmt::Debug for AssetTransfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AssetTransfer(n = {}, initial = {})", self.n, self.initial)
    }
}

/// A process's view of the ledger.
pub struct Wallet {
    pid: ProcessId,
    n: usize,
    initial: u64,
    rb: RbEndpoint<Transfer>,
    /// Applied transfers, in application order: `(owner, transfer)`.
    applied: Vec<(usize, Transfer)>,
    /// Delivered but not yet applicable transfers per owner (FIFO suffix).
    pending: HashMap<usize, Vec<Transfer>>,
    /// This process's own issued transfers (validated locally first).
    own_seq: Vec<Transfer>,
}

impl Wallet {
    /// This wallet's owner.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    fn balances(&self) -> Vec<u64> {
        let mut bal = vec![self.initial; self.n];
        for (owner, t) in &self.applied {
            bal[*owner] -= t.amount;
            bal[t.to] += t.amount;
        }
        bal
    }

    /// The balance of account `acc` (1-based, like process ids) in this
    /// wallet's current view.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn balance(&mut self, acc: usize) -> Result<u64> {
        self.sync()?;
        Ok(self.balances()[acc - 1])
    }

    /// Issues a transfer from this wallet's account. Returns `false`
    /// (without broadcasting) if the local view says the balance is
    /// insufficient.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn transfer(&mut self, to: ProcessId, amount: u64) -> Result<bool> {
        self.sync()?;
        let me = self.pid.zero_based();
        if self.balances()[me] < amount {
            return Ok(false);
        }
        let t = Transfer { to: to.zero_based(), amount };
        self.own_seq.push(t.clone());
        self.rb.broadcast(t.clone())?;
        self.applied.push((me, t));
        Ok(true)
    }

    /// Pulls newly delivered transfers and applies every one that became
    /// valid (sufficient balance at its FIFO position).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] on system shutdown.
    pub fn sync(&mut self) -> Result<()> {
        // Drain new deliveries into per-owner pending queues.
        for s in 1..=self.n {
            let sender = ProcessId::new(s);
            if sender == self.pid {
                continue;
            }
            for (_, t) in self.rb.deliver_all(sender)? {
                self.pending.entry(s - 1).or_default().push(t);
            }
        }
        // Apply pending transfers until a fixpoint: a transfer applies only
        // if its owner's balance covers it, in the owner's FIFO order.
        loop {
            let bal = self.balances();
            let mut progressed = false;
            for (owner, queue) in &mut self.pending {
                if let Some(front) = queue.first() {
                    if bal[*owner] >= front.amount {
                        let t = queue.remove(0);
                        self.applied.push((*owner, t));
                        progressed = true;
                        break; // balances changed; recompute
                    }
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }
}

impl std::fmt::Debug for Wallet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wallet({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::Scheduling;

    #[test]
    fn transfers_move_money() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(81)).build();
        let at = AssetTransfer::install(&system, 100, 4);
        let mut w2 = at.wallet(ProcessId::new(2));
        let mut w3 = at.wallet(ProcessId::new(3));
        assert!(w2.transfer(ProcessId::new(3), 40).unwrap());
        assert_eq!(w3.balance(3).unwrap(), 140);
        assert_eq!(w3.balance(2).unwrap(), 60);
        assert_eq!(w2.balance(2).unwrap(), 60);
        system.shutdown();
    }

    #[test]
    fn overdrafts_are_rejected_locally() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(82)).build();
        let at = AssetTransfer::install(&system, 10, 4);
        let mut w2 = at.wallet(ProcessId::new(2));
        assert!(!w2.transfer(ProcessId::new(3), 11).unwrap());
        assert_eq!(w2.balance(2).unwrap(), 10);
        system.shutdown();
    }

    #[test]
    fn received_funds_can_be_forwarded() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(83)).build();
        let at = AssetTransfer::install(&system, 50, 4);
        let mut w2 = at.wallet(ProcessId::new(2));
        let mut w3 = at.wallet(ProcessId::new(3));
        let mut w4 = at.wallet(ProcessId::new(4));
        assert!(w2.transfer(ProcessId::new(3), 50).unwrap());
        // p3 now has 100 and forwards 75 to p4 — only valid after applying
        // the incoming credit.
        assert!(w3.transfer(ProcessId::new(4), 75).unwrap());
        assert_eq!(w4.balance(4).unwrap(), 125);
        assert_eq!(w4.balance(3).unwrap(), 25);
        assert_eq!(w4.balance(2).unwrap(), 0);
        system.shutdown();
    }

    #[test]
    fn observers_converge_on_the_same_ledger() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(84)).build();
        let at = AssetTransfer::install(&system, 100, 4);
        let mut wallets: Vec<_> = (1..=4).map(|i| at.wallet(ProcessId::new(i))).collect();
        assert!(wallets[0].transfer(ProcessId::new(2), 10).unwrap());
        assert!(wallets[1].transfer(ProcessId::new(3), 20).unwrap());
        assert!(wallets[2].transfer(ProcessId::new(4), 30).unwrap());
        let views: Vec<Vec<u64>> =
            wallets.iter_mut().map(|w| (1..=4).map(|a| w.balance(a).unwrap()).collect()).collect();
        for v in &views {
            assert_eq!(*v, views[0], "all correct observers agree");
            assert_eq!(v.iter().sum::<u64>(), 400, "money is conserved");
        }
        system.shutdown();
    }
}
