//! **Non-equivocating broadcast** from sticky registers (§1, §8).
//!
//! The paper: *"to broadcast a message `m`, a process `p` simply writes `m`
//! into a SWMR sticky register `R`; to deliver `p`'s message, a process
//! reads `R` […]. Because `R` is sticky, once any correct process delivers a
//! message `m` from `p`, every correct process that subsequently reads `R`
//! will also deliver `m`. So correct processes cannot deliver different
//! messages from `p`, even if `p` is Byzantine."*
//!
//! This is the non-equivocation primitive of Clement et al. [4], obtained
//! here without signatures for `n > 3f`.

use std::collections::HashMap;

use byzreg_core::sticky::{AttackPorts, StickyRegister};
use byzreg_core::{StickyReader, StickyWriter};
use byzreg_runtime::{ProcessId, Result, System};

/// One non-equivocating broadcast instance: a sticky register per sender.
pub struct NonEquivocatingBroadcast<M> {
    registers: Vec<StickyRegister<M>>,
    n: usize,
}

impl<M: byzreg_runtime::Value> NonEquivocatingBroadcast<M> {
    /// Installs the object on `system` (one sticky register per process).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    #[must_use]
    pub fn install(system: &System) -> Self {
        let n = system.env().n();
        let registers = (1..=n)
            .map(|s| StickyRegister::install_for_writer(system, ProcessId::new(s)))
            .collect();
        NonEquivocatingBroadcast { registers, n }
    }

    /// The endpoint of a correct process: broadcast its own message, deliver
    /// everyone else's.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is declared Byzantine or the endpoint was taken.
    #[must_use]
    pub fn endpoint(&self, pid: ProcessId) -> NebEndpoint<M> {
        let writer = self.registers[pid.zero_based()].writer();
        let mut readers = HashMap::new();
        for s in 1..=self.n {
            let sender = ProcessId::new(s);
            if sender != pid {
                readers.insert(sender, self.registers[s - 1].reader(pid));
            }
        }
        NebEndpoint { pid, writer, readers }
    }

    /// Attack ports of the Byzantine process `pid` on its own broadcast slot.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is correct.
    #[must_use]
    pub fn attack_ports(&self, pid: ProcessId) -> AttackPorts<M> {
        self.registers[pid.zero_based()].attack_ports(pid)
    }
}

impl<M: byzreg_runtime::Value> std::fmt::Debug for NonEquivocatingBroadcast<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NonEquivocatingBroadcast(n = {})", self.n)
    }
}

/// A process's handle on the broadcast object.
pub struct NebEndpoint<M> {
    pid: ProcessId,
    writer: StickyWriter<M>,
    readers: HashMap<ProcessId, StickyReader<M>>,
}

impl<M: byzreg_runtime::Value> NebEndpoint<M> {
    /// This endpoint's process.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Broadcasts `m`. After this returns, every correct process's
    /// [`NebEndpoint::deliver_from`] returns `Some(m)` — and can never
    /// return anything else.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn broadcast(&mut self, m: M) -> Result<()> {
        self.writer.write(m)
    }

    /// Attempts to deliver `sender`'s message (`None` = nothing broadcast
    /// yet). Two correct processes can never deliver different messages from
    /// the same sender — even a Byzantine one.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `sender == self.pid()` (deliver your own via local state).
    pub fn deliver_from(&mut self, sender: ProcessId) -> Result<Option<M>> {
        self.readers
            .get_mut(&sender)
            .unwrap_or_else(|| panic!("no reader for {sender} (own slot?)"))
            .read()
    }
}

impl<M: byzreg_runtime::Value> std::fmt::Debug for NebEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NebEndpoint({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::Scheduling;

    #[test]
    fn broadcast_is_delivered_by_everyone() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(51)).build();
        let neb = NonEquivocatingBroadcast::install(&system);
        let mut e2 = neb.endpoint(ProcessId::new(2));
        let mut e3 = neb.endpoint(ProcessId::new(3));
        let mut e4 = neb.endpoint(ProcessId::new(4));
        e2.broadcast("proposal-A").unwrap();
        assert_eq!(e3.deliver_from(ProcessId::new(2)).unwrap(), Some("proposal-A"));
        assert_eq!(e4.deliver_from(ProcessId::new(2)).unwrap(), Some("proposal-A"));
        // Nothing from p3 yet.
        assert_eq!(e2.deliver_from(ProcessId::new(3)).unwrap(), None);
        system.shutdown();
    }

    #[test]
    fn all_processes_can_broadcast() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(52)).build();
        let neb = NonEquivocatingBroadcast::install(&system);
        let mut eps: Vec<_> = (1..=4).map(|i| neb.endpoint(ProcessId::new(i))).collect();
        for (i, ep) in eps.iter_mut().enumerate() {
            ep.broadcast(i as u32).unwrap();
        }
        for (i, ep) in eps.iter_mut().enumerate() {
            for s in 0..4 {
                if i == s {
                    continue;
                }
                let got = ep.deliver_from(ProcessId::new(s + 1)).unwrap();
                assert_eq!(got, Some(s as u32));
            }
        }
        system.shutdown();
    }

    #[test]
    fn byzantine_sender_cannot_equivocate() {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(53))
            .byzantine(ProcessId::new(1))
            .build();
        let neb = NonEquivocatingBroadcast::<u32>::install(&system);
        let ports = neb.attack_ports(ProcessId::new(1));
        let shared = ports.shared.clone();
        let mut flip = 0u32;
        system.spawn_byzantine(ProcessId::new(1), move || {
            flip += 1;
            ports.echo.write(Some(if flip % 2 == 0 { 10 } else { 20 }));
            for (k, rep) in ports.replies.iter().enumerate() {
                let c = shared.askers[k].read();
                rep.write((Some(if flip % 2 == 0 { 20 } else { 10 }), c));
            }
            flip < 50_000
        });
        let mut e2 = neb.endpoint(ProcessId::new(2));
        let mut e3 = neb.endpoint(ProcessId::new(3));
        let mut delivered = Vec::new();
        for _ in 0..5 {
            if let Some(m) = e2.deliver_from(ProcessId::new(1)).unwrap() {
                delivered.push(m);
            }
            if let Some(m) = e3.deliver_from(ProcessId::new(1)).unwrap() {
                delivered.push(m);
            }
        }
        delivered.dedup();
        assert!(delivered.len() <= 1, "equivocation observed: {delivered:?}");
        system.shutdown();
    }
}
