//! Algorithm 1: a SWMR **verifiable register** from plain SWMR registers,
//! without signatures, for `n > 3f`.
//!
//! The register offers `Write`/`Read` (a normal SWMR register) plus
//! `Sign(v)`/`Verify(v)` emulating unforgeable signatures (Definition 10).
//! Line numbers in comments refer to Algorithm 1 in the paper.
//!
//! Shared registers (one instance per register object):
//!
//! * `R*` — the writer's value register (line 1/9),
//! * `R_i` — each process's *witness set*: the values it vouches were
//!   written-and-signed,
//! * `R_{i,k}` — SWSR reply registers from helper `p_i` to asker `p_k`,
//! * `C_k` — each reader's asker round counter.
//!
//! # Examples
//!
//! ```
//! use byzreg_core::verifiable::VerifiableRegister;
//! use byzreg_runtime::{ProcessId, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = System::builder(4).build();
//! let reg = VerifiableRegister::install(&system, 0u64);
//! let mut writer = reg.writer();
//! let mut reader = reg.reader(ProcessId::new(2));
//!
//! writer.write(7)?;
//! assert_eq!(reader.read()?, 7);
//! assert!(!reader.verify(&7)?, "written but not signed yet");
//! assert!(writer.sign(&7)?);
//! assert!(reader.verify(&7)?);
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use byzreg_runtime::{
    Env, HelpDemand, HelpShard, HistoryLog, LocalFactory, ProcessId, ReadPort, RegisterFactory,
    Result, Roles, System, Value, WritePort,
};
use byzreg_spec::registers::{VerInv, VerResp};

use crate::quorum::{
    verify_quorum, verify_quorum_many, AskerTracker, Endpoints, EngineParts, QuorumFabric, Reply,
};

/// A process's witness set (the content of `R_i`).
pub type WitnessSet<V> = BTreeSet<V>;

/// Read-only views of every shared register of one verifiable-register
/// instance. Everyone (including adversaries) may hold these.
pub struct SharedPorts<V> {
    /// `R*` — the writer's current value.
    pub r_star: ReadPort<V>,
    /// `R_i` for `i = 1..=n` (index 0-based).
    pub witness: Vec<ReadPort<WitnessSet<V>>>,
    /// `R_{j,k}`: `replies[j][k]` is helper `p_{j+1}`'s register for reader
    /// `p_{k+2}`.
    pub replies: Vec<Vec<ReadPort<Reply<V>>>>,
    /// `C_k` for readers `p_2..=p_n` (index `pid - 2`).
    pub askers: Vec<ReadPort<u64>>,
}

impl<V> Clone for SharedPorts<V> {
    fn clone(&self) -> Self {
        SharedPorts {
            r_star: self.r_star.clone(),
            witness: self.witness.clone(),
            replies: self.replies.clone(),
            askers: self.askers.clone(),
        }
    }
}

impl<V: Value> SharedPorts<V> {
    /// The column of reply registers addressed to reader `pid`
    /// (`R_{j,pid}` for all `j`), used by the verify loop.
    fn reply_column(&self, pid: ProcessId) -> Vec<ReadPort<Reply<V>>> {
        let k = pid.index() - 2;
        self.replies.iter().map(|row| row[k].clone()).collect()
    }
}

/// Write ports owned by one process, as handed to a Byzantine adversary.
///
/// A faulty process may write *anything* into registers it owns — and only
/// into those (§1, Remark): there is no way to obtain another process's
/// write ports from this type.
pub struct AttackPorts<V> {
    /// Which process these ports belong to.
    pub pid: ProcessId,
    /// `R*` — present only for the writer `p1`.
    pub r_star: Option<WritePort<V>>,
    /// `R_pid` — the process's witness set (for `p1` this is the "signed
    /// values" register `R1`).
    pub witness: WritePort<WitnessSet<V>>,
    /// `R_{pid,k}` for every reader `k` (0-based reader index).
    pub replies: Vec<WritePort<Reply<V>>>,
    /// `C_pid` — present only for readers.
    pub asker: Option<WritePort<u64>>,
    /// Read access to every register of the instance.
    pub shared: SharedPorts<V>,
}

struct ProcessPorts<V> {
    witness_w: WritePort<WitnessSet<V>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    asker_w: Option<WritePort<u64>>, // readers only
    r_star_w: Option<WritePort<V>>,  // writer only
}

/// One installed verifiable-register instance (Algorithm 1).
///
/// Install with [`VerifiableRegister::install`], then obtain the unique
/// [`writer`](VerifiableRegister::writer) handle and per-reader
/// [`reader`](VerifiableRegister::reader) handles. Help tasks for all correct
/// processes are attached to the system automatically.
pub struct VerifiableRegister<V> {
    env: Env,
    v0: V,
    shared: SharedPorts<V>,
    endpoints: Endpoints<ProcessPorts<V>>,
    /// `Some` when hosted on a demand-driven help shard (keyed-store
    /// installs); reader handles begin demand around their quorum rounds.
    demand: Option<HelpDemand>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> VerifiableRegister<V> {
    /// Installs the register on `system` with initial value `v0`, wiring all
    /// base registers and attaching the `Help()` task of every correct
    /// process.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (Theorem 31: impossible without signatures).
    pub fn install(system: &System, v0: V) -> Self {
        Self::install_with(system, v0, &LocalFactory)
    }

    /// Like [`VerifiableRegister::install`], but sourcing base registers
    /// from `factory` — e.g. `byzreg_mp::MpFactory` to run Algorithm 1 over
    /// a message-passing system (experiment E6).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_with<F: RegisterFactory>(system: &System, v0: V, factory: &F) -> Self {
        Self::install_impl(system, v0, factory, None)
    }

    /// Like [`VerifiableRegister::install_with`], but hosts the instance's
    /// `Help()` tasks on the demand-driven help shard `shard` instead of
    /// the per-process always-on engines: helpers tick only while one of
    /// this instance's quorum operations is in flight, and the shard's
    /// engine parks otherwise. Used by the keyed store, which partitions
    /// its keys' helping by store shard.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_in_shard<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        Self::install_impl(system, v0, factory, Some(shard))
    }

    fn install_impl<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: Option<&HelpShard>,
    ) -> Self {
        let env = system.env().clone();
        env.require_n_gt_3f();
        let n = env.n();

        // R*: SWMR register of the writer; initially v0.
        let (r_star_w, r_star) = factory.create(&env, ProcessId::new(1), "R*".into(), v0.clone());

        // R_i: SWMR witness-set registers; initially ∅.
        let mut witness_w = Vec::with_capacity(n);
        let mut witness_r = Vec::with_capacity(n);
        for i in 1..=n {
            let (w, r) =
                factory.create(&env, ProcessId::new(i), format!("R[{i}]"), WitnessSet::<V>::new());
            witness_w.push(w);
            witness_r.push(r);
        }

        // R_{j,k} reply registers (initially ⟨∅, 0⟩) and C_k round counters:
        // the shared quorum fabric of §5.1.
        let roles = Roles::identity(n);
        let fabric = QuorumFabric::install(&env, factory, &roles, WitnessSet::<V>::new());

        let shared = SharedPorts {
            r_star,
            witness: witness_r,
            replies: fabric.reply_matrix(),
            askers: fabric.asker_ports(),
        };

        // Attach Help() to every correct process (System drops tasks for
        // declared-Byzantine pids) — on the given help shard, demand-gated,
        // or on the always-on per-process engines.
        let demand = shard.map(HelpShard::new_demand);
        for j in 1..=n {
            let task = HelpTask1 {
                env: env.clone(),
                shared: shared.clone(),
                witness_w: witness_w[j - 1].clone(),
                replies_w: fabric.reply_row(j),
                tracker: AskerTracker::new(n - 1),
            };
            match (shard, &demand) {
                (Some(s), Some(d)) => {
                    system.add_sharded_help_task(s, ProcessId::new(j), d, Box::new(task));
                }
                _ => system.add_help_task(ProcessId::new(j), Box::new(task)),
            }
        }

        // Per-process port bundles for handles / adversaries.
        let mut endpoints = Vec::with_capacity(n);
        for j in 1..=n {
            endpoints.push(ProcessPorts {
                witness_w: witness_w[j - 1].clone(),
                replies_w: fabric.reply_row(j),
                asker_w: fabric.asker_port(j),
                r_star_w: (j == 1).then(|| r_star_w.clone()),
            });
        }

        VerifiableRegister {
            env: env.clone(),
            v0,
            shared,
            endpoints: Endpoints::new(endpoints),
            demand,
            log: HistoryLog::new(env.clock()),
        }
    }

    /// The initial value `v0`.
    pub fn initial_value(&self) -> &V {
        &self.v0
    }

    /// The operation history recorded so far (`H|correct` if only correct
    /// processes used handles).
    #[must_use]
    pub fn history(&self) -> HistoryLog<VerInv<V>, VerResp<V>> {
        self.log.clone()
    }

    /// Read-only views of the shared registers (for diagnostics and tests).
    #[must_use]
    pub fn shared(&self) -> SharedPorts<V> {
        self.shared.clone()
    }

    fn take_ports(&self, pid: ProcessId) -> ProcessPorts<V> {
        self.endpoints.take_pid(pid)
    }

    /// The unique writer handle (process `p1`).
    ///
    /// # Panics
    ///
    /// Panics if taken twice, or if `p1` was declared Byzantine (use
    /// [`VerifiableRegister::attack_ports`] instead).
    #[must_use]
    pub fn writer(&self) -> VerifiableWriter<V> {
        let pid = ProcessId::new(1);
        assert!(!self.env.is_faulty(pid), "p1 is Byzantine; take attack_ports(p1) instead");
        let ports = self.take_ports(pid);
        VerifiableWriter {
            env: self.env.clone(),
            r_star_w: ports.r_star_w.expect("writer ports"),
            r1_w: ports.witness_w,
            written: BTreeSet::new(),
            log: self.log.clone(),
        }
    }

    /// The reader handle for `pid ∈ {p2, …, pn}`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer, was taken before, or was declared
    /// Byzantine.
    #[must_use]
    pub fn reader(&self, pid: ProcessId) -> VerifiableReader<V> {
        assert!(!pid.is_writer(), "p1 is the writer, not a reader");
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports({pid}) instead");
        let ports = self.take_ports(pid);
        VerifiableReader {
            env: self.env.clone(),
            pid,
            ck_w: ports.asker_w.expect("reader ports"),
            reply_column: self.shared.reply_column(pid),
            r_star: self.shared.r_star.clone(),
            demand: self.demand.clone(),
            log: self.log.clone(),
        }
    }

    /// The raw write ports of a **declared-Byzantine** process, for use by an
    /// adversary strategy.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is correct or the ports were already taken.
    #[must_use]
    pub fn attack_ports(&self, pid: ProcessId) -> AttackPorts<V> {
        assert!(
            self.env.is_faulty(pid),
            "{pid} is correct; only declared-Byzantine processes get attack ports"
        );
        let ports = self.take_ports(pid);
        AttackPorts {
            pid,
            r_star: ports.r_star_w,
            witness: ports.witness_w,
            replies: ports.replies_w,
            asker: ports.asker_w,
            shared: self.shared.clone(),
        }
    }
}

impl<V: Value> std::fmt::Debug for VerifiableRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiableRegister")
            .field("n", &self.env.n())
            .field("f", &self.env.f())
            .field("v0", &self.v0)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Writer handle
// ---------------------------------------------------------------------------

/// The writer (`p1`) handle of a verifiable register: `Write` and `Sign`.
///
/// Methods take `&mut self`: a process applies its operations sequentially.
pub struct VerifiableWriter<V> {
    env: Env,
    r_star_w: WritePort<V>,
    r1_w: WritePort<WitnessSet<V>>,
    /// The local variable `r*` (line 2): values written so far.
    written: BTreeSet<V>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> VerifiableWriter<V> {
    /// `Write(v)` — Alg. 1 lines 1–3.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write(&mut self, v: V) -> Result<()> {
        self.env.check_running()?;
        let op = self.log.invoke(ProcessId::new(1), VerInv::Write(v.clone()));
        self.env.run_as(ProcessId::new(1), || {
            self.r_star_w.write(v.clone()); // line 1: R* <- v
        });
        self.written.insert(v); // line 2: r* <- r* ∪ {v}
        self.log.respond(op, ProcessId::new(1), VerResp::Done); // line 3
        Ok(())
    }

    /// `Sign(v)` — Alg. 1 lines 4–8. Returns `true` for `success`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn sign(&mut self, v: &V) -> Result<bool> {
        self.env.check_running()?;
        let op = self.log.invoke(ProcessId::new(1), VerInv::Sign(v.clone()));
        let success = self.written.contains(v); // line 4: v ∈ r*?
        if success {
            self.env.run_as(ProcessId::new(1), || {
                // line 5: R1 <- R1 ∪ {v} (owner RMW; one step).
                self.r1_w.update(|set| {
                    set.insert(v.clone());
                });
            });
        }
        self.log.respond(op, ProcessId::new(1), VerResp::SignResult(success));
        Ok(success) // lines 6/8
    }
}

impl<V: Value> std::fmt::Debug for VerifiableWriter<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifiableWriter(p1, {} values written)", self.written.len())
    }
}

// ---------------------------------------------------------------------------
// Reader handle
// ---------------------------------------------------------------------------

/// A reader (`p2..=pn`) handle of a verifiable register: `Read` and `Verify`.
pub struct VerifiableReader<V> {
    env: Env,
    pid: ProcessId,
    ck_w: WritePort<u64>,
    reply_column: Vec<ReadPort<Reply<V>>>,
    r_star: ReadPort<V>,
    demand: Option<HelpDemand>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> VerifiableReader<V> {
    /// The reader's process id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `Read()` — Alg. 1 lines 9–10.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn read(&mut self) -> Result<V> {
        self.env.check_running()?;
        let op = self.log.invoke(self.pid, VerInv::Read);
        let v = self.env.run_as(self.pid, || self.r_star.read()); // line 9
        self.log.respond(op, self.pid, VerResp::ReadValue(v.clone()));
        Ok(v) // line 10
    }

    /// `Verify(v)` — Alg. 1 lines 11–24.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn verify(&mut self, v: &V) -> Result<bool> {
        self.env.check_running()?;
        // Keep the instance's help shard awake for the quorum rounds.
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let op = self.log.invoke(self.pid, VerInv::Verify(v.clone()));
        let outcome = self
            .env
            .run_as(self.pid, || verify_quorum(&self.env, &self.ck_w, &self.reply_column, v))?;
        self.log.respond(op, self.pid, VerResp::VerifyResult(outcome));
        Ok(outcome)
    }

    /// Batched `Verify`: decides every value of `vs` in **one** shared §5.1
    /// round sequence instead of `vs.len()` of them (the asker counter and
    /// the reply reads are amortized across the batch; see
    /// [`crate::quorum::quorum_rounds_many`]). Outcomes are returned in
    /// input order; each is exactly what a standalone
    /// [`verify`](VerifiableReader::verify) spanning the batch would return.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        self.env.check_running()?;
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let ops: Vec<_> =
            vs.iter().map(|v| self.log.invoke(self.pid, VerInv::Verify(v.clone()))).collect();
        let outcomes = self.env.run_as(self.pid, || {
            verify_quorum_many(&self.env, &self.ck_w, &self.reply_column, vs)
        })?;
        for (op, outcome) in ops.into_iter().zip(&outcomes) {
            self.log.respond(op, self.pid, VerResp::VerifyResult(*outcome));
        }
        Ok(outcomes)
    }

    /// This reader's §5.1 engine handles (asker counter + reply column),
    /// for fusing verifies across register instances — see
    /// [`crate::quorum::verify_quorum_groups`]. The handles carry the
    /// reader's own capabilities only; holding the reader handle is what
    /// authorizes taking them.
    #[must_use]
    pub fn engine_parts(&self) -> EngineParts<V> {
        EngineParts {
            ck: self.ck_w.clone(),
            replies: self.reply_column.clone(),
            demand: self.demand.clone(),
        }
    }
}

impl<V: Value> std::fmt::Debug for VerifiableReader<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifiableReader({})", self.pid)
    }
}

// ---------------------------------------------------------------------------
// Help task (lines 25-36)
// ---------------------------------------------------------------------------

struct HelpTask1<V: Value> {
    env: Env,
    shared: SharedPorts<V>,
    witness_w: WritePort<WitnessSet<V>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    tracker: AskerTracker,
}

impl<V: Value> byzreg_runtime::HelpTask for HelpTask1<V> {
    fn tick(&mut self) {
        // Lines 27-28: sample C_k and compute askers.
        let (ck, askers) = self.tracker.poll(&self.shared.askers);
        if askers.is_empty() {
            return; // line 29 (no askers: do nothing this round)
        }
        // Line 30: read R_i of every process.
        let r_all: Vec<WitnessSet<V>> = self.shared.witness.iter().map(ReadPort::read).collect();
        // Line 31: candidate values = r1 ∪ values appearing anywhere.
        let mut candidates: BTreeSet<&V> = BTreeSet::new();
        for set in &r_all {
            candidates.extend(set.iter());
        }
        let f = self.env.f();
        for v in candidates {
            let in_r1 = r_all[0].contains(v);
            let witnesses = r_all.iter().filter(|set| set.contains(v)).count();
            if in_r1 || witnesses >= f + 1 {
                // Line 32: R_j <- R_j ∪ {v} (owner RMW; one step).
                self.witness_w.update(|set| {
                    set.insert(v.clone());
                });
            }
        }
        // Line 33: r_j <- R_j.
        let r_j = self.witness_w.read();
        // Lines 34-36: help each asker.
        self.tracker.serve(&self.replies_w, &ck, &askers, &r_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{Scheduling, System};

    fn sys(n: usize, seed: u64) -> System {
        System::builder(n).scheduling(Scheduling::Chaotic(seed)).build()
    }

    #[test]
    fn write_then_read_round_trips() {
        let system = sys(4, 1);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        assert_eq!(r.read().unwrap(), 0);
        w.write(5).unwrap();
        assert_eq!(r.read().unwrap(), 5);
        w.write(6).unwrap();
        assert_eq!(r.read().unwrap(), 6);
        system.shutdown();
    }

    #[test]
    fn sign_fails_for_unwritten_values() {
        let system = sys(4, 2);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        assert!(!w.sign(&3).unwrap(), "cannot sign a value never written");
        w.write(3).unwrap();
        assert!(w.sign(&3).unwrap());
        system.shutdown();
    }

    #[test]
    fn verify_false_before_sign_true_after() {
        let system = sys(4, 3);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(3));
        w.write(9).unwrap();
        assert!(!r.verify(&9).unwrap(), "written but unsigned");
        assert!(w.sign(&9).unwrap());
        assert!(r.verify(&9).unwrap());
        // Obs. 13: stays true for every reader from now on.
        let mut r4 = reg.reader(ProcessId::new(4));
        assert!(r4.verify(&9).unwrap());
        system.shutdown();
    }

    #[test]
    fn old_values_can_be_signed_later() {
        let system = sys(4, 4);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(1).unwrap();
        w.write(2).unwrap();
        assert!(w.sign(&1).unwrap(), "§4: the writer may sign older values");
        assert!(r.verify(&1).unwrap());
        assert!(!r.verify(&2).unwrap());
        assert_eq!(r.read().unwrap(), 2);
        system.shutdown();
    }

    #[test]
    fn verify_never_written_value_is_false() {
        let system = sys(4, 5);
        let reg = VerifiableRegister::install(&system, 0u32);
        let _w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        assert!(!r.verify(&42).unwrap());
        system.shutdown();
    }

    #[test]
    fn works_at_larger_scales() {
        let system = sys(7, 6);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        w.write(11).unwrap();
        w.sign(&11).unwrap();
        for k in 2..=7 {
            let mut r = reg.reader(ProcessId::new(k));
            assert!(r.verify(&11).unwrap(), "reader p{k}");
        }
        system.shutdown();
    }

    #[test]
    fn lockstep_execution_terminates_and_verifies() {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(42)).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(7).unwrap();
        w.sign(&7).unwrap();
        assert!(r.verify(&7).unwrap());
        assert!(!r.verify(&8).unwrap());
        system.shutdown();
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn install_rejects_n_le_3f() {
        let system = System::builder(3).resilience(1).build();
        let _ = VerifiableRegister::install(&system, 0u32);
    }

    #[test]
    fn history_is_recorded_for_all_ops() {
        let system = sys(4, 7);
        let reg = VerifiableRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(1).unwrap();
        w.sign(&1).unwrap();
        let _ = r.read().unwrap();
        let _ = r.verify(&1).unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0].invocation, VerInv::Write(1)));
        assert!(matches!(ops[1].invocation, VerInv::Sign(1)));
    }

    #[test]
    fn attack_ports_only_for_declared_byzantine() {
        let system = System::builder(4).byzantine(ProcessId::new(3)).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(3));
        assert_eq!(ports.pid, ProcessId::new(3));
        assert!(ports.r_star.is_none(), "p3 does not own R*");
        assert!(ports.asker.is_some());
        system.shutdown();
    }

    #[test]
    #[should_panic(expected = "is correct")]
    fn attack_ports_for_correct_process_panics() {
        let system = System::builder(4).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let _ = reg.attack_ports(ProcessId::new(3));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_reader_take_panics() {
        let system = System::builder(4).build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let _a = reg.reader(ProcessId::new(2));
        let _b = reg.reader(ProcessId::new(2));
    }
}
