//! The `SignatureRegister` trait layer: one interface over all three
//! register families of the paper.
//!
//! Algorithms 1–3 share a shape — a unique writer installs values, any
//! reader can later check them, and a check that once succeeded can never
//! be denied — but differ in *when* a value becomes checkable:
//!
//! | family | `sign_value` | `verify_value(v)` is `true` iff |
//! |---|---|---|
//! | [`VerifiableRegister`] | explicit `Sign(v)` | a successful `Sign(v)` happened |
//! | [`AuthenticatedRegister`] | implicit (each write auto-signs) | `v` was written (or `v = v0`) |
//! | [`StickyRegister`] | implicit (the first write wins) | `v` is the stuck value |
//!
//! The traits make that difference a *parameter* instead of three parallel
//! APIs: generic harnesses (see `byzreg-bench` and `tests/families.rs`)
//! drive every family through one code path, over any
//! [`RegisterFactory`] — including the message-passing emulation of
//! `byzreg-mp`.
//!
//! # Example
//!
//! ```
//! use byzreg_core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
//! use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
//! use byzreg_runtime::{ProcessId, Result, System};
//!
//! fn smoke<R: SignatureRegister<u64>>(system: &System) -> Result<bool> {
//!     let reg = R::install_default(system, 0);
//!     let mut writer = reg.signer();
//!     let mut reader = reg.verifier(ProcessId::new(2));
//!     writer.write_value(7)?;
//!     writer.sign_value(&7)?;
//!     reader.verify_value(&7)
//! }
//!
//! # fn main() -> Result<()> {
//! let system = System::builder(4).build();
//! assert!(smoke::<VerifiableRegister<u64>>(&system)?);
//! assert!(smoke::<AuthenticatedRegister<u64>>(&system)?);
//! assert!(smoke::<StickyRegister<u64>>(&system)?);
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

use byzreg_runtime::{HelpShard, ProcessId, RegisterFactory, Result, System, Value};

use crate::quorum::EngineParts;

use crate::authenticated::{AuthenticatedReader, AuthenticatedRegister, AuthenticatedWriter};
use crate::sticky::{StickyReader, StickyRegister, StickyWriter};
use crate::verifiable::{VerifiableReader, VerifiableRegister, VerifiableWriter};

/// The three register families of the paper, for labeling generic output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Algorithm 1: explicit `Sign`/`Verify`.
    Verifiable,
    /// Algorithm 2: every write atomically signed.
    Authenticated,
    /// Algorithm 3: the first write sticks forever.
    Sticky,
}

impl Family {
    /// A short lowercase label (stable; used in bench ids and test names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Family::Verifiable => "verifiable",
            Family::Authenticated => "authenticated",
            Family::Sticky => "sticky",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A writer handle in the trait layer.
pub trait SignatureSigner<V: Value>: Send {
    /// Writes `v` into the register.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn write_value(&mut self, v: V) -> Result<()>;

    /// Makes `v` verifiable. Families whose writes are implicitly signed
    /// (authenticated, sticky) return `Ok(true)` without taking steps.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn sign_value(&mut self, v: &V) -> Result<bool>;
}

/// A reader handle in the trait layer.
pub trait SignatureVerifier<V: Value>: Send {
    /// The reader's process id.
    fn pid(&self) -> ProcessId;

    /// Reads the register; `None` is the sticky `⊥` (the other families
    /// always return `Some`).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn read_value(&mut self) -> Result<Option<V>>;

    /// Checks `v`'s signature property — `Verify(v)` for Algorithms 1–2,
    /// "is `v` the stuck value" for Algorithm 3. Once this returns `true`
    /// for a correct process, it returns `true` forever, for everyone.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn verify_value(&mut self, v: &V) -> Result<bool>;

    /// Checks the signature property of every value in `vs`, returning one
    /// outcome per value, in order.
    ///
    /// Semantically equivalent to calling
    /// [`verify_value`](SignatureVerifier::verify_value) once per value —
    /// which is exactly what the default does. Families override it to
    /// amortize the §5.1 quorum machinery across the batch: the
    /// verifiable/authenticated readers run **one** shared round sequence
    /// for the whole batch (`byzreg_core::quorum::verify_quorum_many`), and
    /// the sticky reader answers every check from a single quorum read of
    /// its immutable content.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        vs.iter().map(|v| self.verify_value(v)).collect()
    }

    /// The reader-side §5.1 engine handles of this register instance, for
    /// fusing `Verify` batches **across register instances** into one
    /// shared round sequence with one logical asker counter per reader
    /// (see [`crate::quorum::verify_quorum_groups`]; the keyed store's
    /// `verify_many` is the consumer). `None` — the default, and the
    /// sticky family's answer — means this family's checks do not run the
    /// voting engine: the sticky register answers a whole batch from a
    /// single quorum read instead, so there is nothing to fuse.
    ///
    /// Checks decided through a fused run are not recorded in the
    /// instance's operation history: the history log is per-instance
    /// (diagnostics and spec monitors), while a fused run spans many.
    fn engine_parts(&self) -> Option<EngineParts<V>> {
        None
    }
}

/// An installed register instance of one family.
///
/// `v0` is the family's initial value; the sticky register ignores it (its
/// initial content is `⊥` by Definition 21).
pub trait SignatureRegister<V: Value>: Sized + Send + Sync + 'static {
    /// This family's writer handle type.
    type Signer: SignatureSigner<V>;
    /// This family's reader handle type.
    type Verifier: SignatureVerifier<V>;

    /// Which family this is (for labels in generic harnesses).
    const FAMILY: Family;

    /// Installs the register on `system` with in-process base registers.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (Theorem 31).
    fn install_default(system: &System, v0: V) -> Self {
        Self::install_with_factory(system, v0, &byzreg_runtime::LocalFactory)
    }

    /// Installs the register with base registers from `factory` (e.g. the
    /// message-passing emulation of `byzreg-mp`).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    fn install_with_factory<F: RegisterFactory>(system: &System, v0: V, factory: &F) -> Self;

    /// Installs the register with its `Help()` tasks hosted on the
    /// demand-driven help shard `shard` instead of the per-process
    /// always-on engines: helpers tick only while one of this instance's
    /// helper-dependent operations is in flight, and a shard with nothing
    /// pending parks (see `byzreg_runtime::HelpShard`). The keyed store
    /// installs every key through this, under the key's shard.
    ///
    /// The default falls back to [`install_with_factory`]
    /// (`SignatureRegister::install_with_factory`) — always-on helping is
    /// a conservative superset of demand-driven helping, so implementors
    /// that have not adopted shard hosting remain correct.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    fn install_in_shard<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        let _ = shard;
        Self::install_with_factory(system, v0, factory)
    }

    /// The unique writer handle.
    ///
    /// # Panics
    ///
    /// Panics if taken twice or if the writer is declared Byzantine.
    fn signer(&self) -> Self::Signer;

    /// The reader handle for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer, taken twice, or declared Byzantine.
    fn verifier(&self, pid: ProcessId) -> Self::Verifier;
}

// ---------------------------------------------------------------------------
// Algorithm 1: verifiable
// ---------------------------------------------------------------------------

impl<V: Value> SignatureRegister<V> for VerifiableRegister<V> {
    type Signer = VerifiableWriter<V>;
    type Verifier = VerifiableReader<V>;
    const FAMILY: Family = Family::Verifiable;

    fn install_with_factory<F: RegisterFactory>(system: &System, v0: V, factory: &F) -> Self {
        VerifiableRegister::install_with(system, v0, factory)
    }

    fn install_in_shard<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        VerifiableRegister::install_in_shard(system, v0, factory, shard)
    }

    fn signer(&self) -> Self::Signer {
        self.writer()
    }

    fn verifier(&self, pid: ProcessId) -> Self::Verifier {
        self.reader(pid)
    }
}

impl<V: Value> SignatureSigner<V> for VerifiableWriter<V> {
    fn write_value(&mut self, v: V) -> Result<()> {
        self.write(v)
    }

    fn sign_value(&mut self, v: &V) -> Result<bool> {
        self.sign(v)
    }
}

impl<V: Value> SignatureVerifier<V> for VerifiableReader<V> {
    fn pid(&self) -> ProcessId {
        VerifiableReader::pid(self)
    }

    fn read_value(&mut self) -> Result<Option<V>> {
        self.read().map(Some)
    }

    fn verify_value(&mut self, v: &V) -> Result<bool> {
        self.verify(v)
    }

    fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        VerifiableReader::verify_many(self, vs)
    }

    fn engine_parts(&self) -> Option<EngineParts<V>> {
        Some(VerifiableReader::engine_parts(self))
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2: authenticated
// ---------------------------------------------------------------------------

impl<V: Value> SignatureRegister<V> for AuthenticatedRegister<V> {
    type Signer = AuthenticatedWriter<V>;
    type Verifier = AuthenticatedReader<V>;
    const FAMILY: Family = Family::Authenticated;

    fn install_with_factory<F: RegisterFactory>(system: &System, v0: V, factory: &F) -> Self {
        AuthenticatedRegister::install_with(system, v0, factory)
    }

    fn install_in_shard<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        AuthenticatedRegister::install_in_shard(system, v0, factory, shard)
    }

    fn signer(&self) -> Self::Signer {
        self.writer()
    }

    fn verifier(&self, pid: ProcessId) -> Self::Verifier {
        self.reader(pid)
    }
}

impl<V: Value> SignatureSigner<V> for AuthenticatedWriter<V> {
    fn write_value(&mut self, v: V) -> Result<()> {
        self.write(v)
    }

    /// Every authenticated write is atomically signed (Definition 15);
    /// there is nothing left to do.
    fn sign_value(&mut self, _v: &V) -> Result<bool> {
        Ok(true)
    }
}

impl<V: Value> SignatureVerifier<V> for AuthenticatedReader<V> {
    fn pid(&self) -> ProcessId {
        AuthenticatedReader::pid(self)
    }

    fn read_value(&mut self) -> Result<Option<V>> {
        self.read().map(Some)
    }

    fn verify_value(&mut self, v: &V) -> Result<bool> {
        self.verify(v)
    }

    fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        AuthenticatedReader::verify_many(self, vs)
    }

    fn engine_parts(&self) -> Option<EngineParts<V>> {
        Some(AuthenticatedReader::engine_parts(self))
    }
}

// ---------------------------------------------------------------------------
// Algorithm 3: sticky
// ---------------------------------------------------------------------------

impl<V: Value> SignatureRegister<V> for StickyRegister<V> {
    type Signer = StickyWriter<V>;
    type Verifier = StickyReader<V>;
    const FAMILY: Family = Family::Sticky;

    fn install_with_factory<F: RegisterFactory>(system: &System, _v0: V, factory: &F) -> Self {
        // The sticky register's initial value is ⊥ (Definition 21); v0 is
        // meaningless for this family and deliberately ignored.
        StickyRegister::install_with(system, factory)
    }

    fn install_in_shard<F: RegisterFactory>(
        system: &System,
        _v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        StickyRegister::install_in_shard(system, factory, shard)
    }

    fn signer(&self) -> Self::Signer {
        self.writer()
    }

    fn verifier(&self, pid: ProcessId) -> Self::Verifier {
        self.reader(pid)
    }
}

impl<V: Value> SignatureSigner<V> for StickyWriter<V> {
    fn write_value(&mut self, v: V) -> Result<()> {
        self.write(v)
    }

    /// A completed sticky write is already unforgeable and undeniable
    /// (Obs. 22–24); signing is implicit in `write_value`.
    fn sign_value(&mut self, _v: &V) -> Result<bool> {
        Ok(true)
    }
}

impl<V: Value> SignatureVerifier<V> for StickyReader<V> {
    fn pid(&self) -> ProcessId {
        StickyReader::pid(self)
    }

    fn read_value(&mut self) -> Result<Option<V>> {
        self.read()
    }

    /// `verify_value(v)` over a sticky register: "is `v` the register's
    /// immutable content" — first-write-wins makes this a signature check.
    fn verify_value(&mut self, v: &V) -> Result<bool> {
        Ok(self.read()?.as_ref() == Some(v))
    }

    /// One quorum read answers the whole batch: the register content never
    /// changes, so every check compares against the same stuck value.
    fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        if vs.is_empty() {
            return Ok(Vec::new());
        }
        let stuck = self.read()?;
        Ok(vs.iter().map(|v| stuck.as_ref() == Some(v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{Scheduling, System};

    fn family_smoke<R: SignatureRegister<u32>>(system: &System) {
        let reg = R::install_default(system, 0);
        let mut w = reg.signer();
        let mut r = reg.verifier(ProcessId::new(2));
        assert!(!r.verify_value(&7).unwrap(), "{}: nothing signed yet", R::FAMILY);
        w.write_value(7).unwrap();
        assert!(w.sign_value(&7).unwrap(), "{}: sign must succeed", R::FAMILY);
        assert_eq!(r.read_value().unwrap(), Some(7), "{}", R::FAMILY);
        assert!(r.verify_value(&7).unwrap(), "{}: signed value verifies", R::FAMILY);
    }

    #[test]
    fn all_families_pass_one_generic_smoke() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(5)).build();
        family_smoke::<VerifiableRegister<u32>>(&system);
        family_smoke::<AuthenticatedRegister<u32>>(&system);
        family_smoke::<StickyRegister<u32>>(&system);
        system.shutdown();
    }

    fn batch_matches_loop<R: SignatureRegister<u32>>(system: &System) {
        let reg = R::install_default(system, 0);
        let mut w = reg.signer();
        let mut r = reg.verifier(ProcessId::new(2));
        w.write_value(3).unwrap();
        assert!(w.sign_value(&3).unwrap());
        let vs = [3u32, 8, 3, 5];
        let batched = r.verify_many(&vs).unwrap();
        let looped: Vec<bool> = vs.iter().map(|v| r.verify_value(v).unwrap()).collect();
        assert_eq!(batched, looped, "{}: batched != per-value loop", R::FAMILY);
        assert_eq!(batched, vec![true, false, true, false], "{}", R::FAMILY);
        assert!(r.verify_many(&[]).unwrap().is_empty(), "{}", R::FAMILY);
    }

    #[test]
    fn verify_many_agrees_with_per_value_verify_for_all_families() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(9)).build();
        batch_matches_loop::<VerifiableRegister<u32>>(&system);
        batch_matches_loop::<AuthenticatedRegister<u32>>(&system);
        batch_matches_loop::<StickyRegister<u32>>(&system);
        system.shutdown();
    }

    #[test]
    fn family_labels_are_stable() {
        assert_eq!(Family::Verifiable.label(), "verifiable");
        assert_eq!(Family::Authenticated.to_string(), "authenticated");
        assert_eq!(Family::Sticky.label(), "sticky");
    }

    #[test]
    fn sticky_verify_is_first_write_wins() {
        let system = System::builder(4).scheduling(Scheduling::Chaotic(6)).build();
        let reg = <StickyRegister<u32> as SignatureRegister<u32>>::install_default(&system, 0);
        let mut w = reg.signer();
        let mut r = reg.verifier(ProcessId::new(3));
        w.write_value(5).unwrap();
        w.write_value(9).unwrap(); // no-op: the register is stuck on 5
        assert!(r.verify_value(&5).unwrap());
        assert!(!r.verify_value(&9).unwrap(), "the second write never happened");
        system.shutdown();
    }
}
