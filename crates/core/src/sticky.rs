//! Algorithm 3: a SWMR **sticky register** from plain SWMR registers,
//! without signatures, for `n > 3f`.
//!
//! Once a value is written into a sticky register, the register never
//! changes again — even if the writer is Byzantine (Definition 21,
//! Observation 24). Line numbers in comments refer to Algorithm 3.
//!
//! §9.1 explains the two mechanisms layered on top of the witness scheme of
//! Algorithms 1–2:
//!
//! * **Echo stage**: a process *echoes* (into `E_j`) only the **first**
//!   non-`⊥` value it sees in the writer's `E_1`, and becomes a *witness*
//!   (`R_j ← v`) only after seeing `n − f` echoes of `v` — this stricter
//!   policy prevents correct processes from witnessing different values.
//! * **Write waits**: `Write(v)` returns only after `n − f` witnesses exist,
//!   otherwise a subsequent `Read` could still return `⊥`.
//!
//! # Examples
//!
//! ```
//! use byzreg_core::sticky::StickyRegister;
//! use byzreg_runtime::{ProcessId, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = System::builder(4).build();
//! let reg = StickyRegister::install(&system);
//! let mut writer = reg.writer();
//! let mut reader = reg.reader(ProcessId::new(2));
//!
//! writer.write(7u64)?;
//! assert_eq!(reader.read()?, Some(7));
//! writer.write(9)?; // too late: the register is stuck on 7
//! assert_eq!(reader.read()?, Some(7));
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

use byzreg_runtime::{
    Env, HelpDemand, HelpShard, HistoryLog, LocalFactory, ProcessId, ReadPort, RegisterFactory,
    Result, Roles, System, Value, WritePort,
};
use byzreg_spec::registers::{StickyInv, StickyResp};

use crate::quorum::{quorum_rounds, AskerTracker, Ballot, Endpoints, QuorumFabric, Tagged};

/// `⊥`-able register content (`None` = `⊥`).
pub type Slot<V> = Option<V>;

/// A helper's reply `⟨u_j, c_j⟩`: the single value it witnesses (or `⊥`)
/// tagged with the asker round it answers.
pub type Reply<V> = Tagged<Slot<V>>;

/// Read-only views of every shared register of one sticky-register instance.
pub struct SharedPorts<V> {
    /// `E_i` — echo registers, one per process (0-based).
    pub echo: Vec<ReadPort<Slot<V>>>,
    /// `R_i` — witness registers, one per process (0-based).
    pub witness: Vec<ReadPort<Slot<V>>>,
    /// `R_{j,k}` reply registers: `replies[j][k]`, `k` 0-based over readers.
    pub replies: Vec<Vec<ReadPort<Reply<V>>>>,
    /// `C_k` for readers (index `pid - 2`).
    pub askers: Vec<ReadPort<u64>>,
}

impl<V> Clone for SharedPorts<V> {
    fn clone(&self) -> Self {
        SharedPorts {
            echo: self.echo.clone(),
            witness: self.witness.clone(),
            replies: self.replies.clone(),
            askers: self.askers.clone(),
        }
    }
}

impl<V: Value> SharedPorts<V> {
    fn reply_column(&self, reader_role: usize) -> Vec<ReadPort<Reply<V>>> {
        let k = reader_role - 2;
        self.replies.iter().map(|row| row[k].clone()).collect()
    }
}

/// Write ports owned by one process, handed to a Byzantine adversary.
pub struct AttackPorts<V> {
    /// The faulty process.
    pub pid: ProcessId,
    /// `E_pid` — the echo register.
    pub echo: WritePort<Slot<V>>,
    /// `R_pid` — the witness register.
    pub witness: WritePort<Slot<V>>,
    /// `R_{pid,k}` for every reader `k`.
    pub replies: Vec<WritePort<Reply<V>>>,
    /// `C_pid` — only for readers.
    pub asker: Option<WritePort<u64>>,
    /// Read access to everything.
    pub shared: SharedPorts<V>,
}

struct ProcessPorts<V> {
    echo_w: WritePort<Slot<V>>,
    witness_w: WritePort<Slot<V>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    asker_w: Option<WritePort<u64>>,
}

/// One installed sticky-register instance (Algorithm 3).
pub struct StickyRegister<V> {
    env: Env,
    roles: Roles,
    shared: SharedPorts<V>,
    endpoints: Endpoints<ProcessPorts<V>>,
    /// `Some` when hosted on a demand-driven help shard (keyed-store
    /// installs). Both handles use it: the reader's quorum `Read` *and*
    /// the writer's witness wait (lines 3–5) depend on helpers running.
    demand: Option<HelpDemand>,
    log: HistoryLog<StickyInv<V>, StickyResp<V>>,
}

impl<V: Value> StickyRegister<V> {
    /// Installs the register (initial value `⊥`) and attaches the `Help()`
    /// task of every correct process.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (Theorem 31).
    pub fn install(system: &System) -> Self {
        Self::install_with(system, &LocalFactory)
    }

    /// Installs the register with `writer` playing the writer role (used by
    /// broadcast objects, which keep one sticky register per sender).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_for_writer(system: &System, writer: ProcessId) -> Self {
        let roles = Roles::with_writer(system.env().n(), writer);
        Self::install_impl(system, &LocalFactory, roles, None)
    }

    /// Like [`StickyRegister::install`], but sourcing base registers from
    /// `factory` (e.g. a message-passing emulation, experiment E6).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_with<F: RegisterFactory>(system: &System, factory: &F) -> Self {
        let roles = Roles::identity(system.env().n());
        Self::install_impl(system, factory, roles, None)
    }

    /// Like [`StickyRegister::install_with`], but hosts the instance's
    /// `Help()` tasks on the demand-driven help shard `shard` (see
    /// `byzreg_runtime::HelpShard`): helpers tick only while one of this
    /// instance's operations — a quorum `Read` or a `Write` waiting for
    /// its `n − f` witnesses — is in flight. Used by the keyed store,
    /// which partitions its keys' helping by store shard.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_in_shard<F: RegisterFactory>(
        system: &System,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        let roles = Roles::identity(system.env().n());
        Self::install_impl(system, factory, roles, Some(shard))
    }

    fn install_impl<F: RegisterFactory>(
        system: &System,
        factory: &F,
        roles: Roles,
        shard: Option<&HelpShard>,
    ) -> Self {
        let env = system.env().clone();
        env.require_n_gt_3f();
        let n = env.n();

        let mut echo_w = Vec::with_capacity(n);
        let mut echo_r = Vec::with_capacity(n);
        let mut witness_w = Vec::with_capacity(n);
        let mut witness_r = Vec::with_capacity(n);
        for i in 1..=n {
            let owner = roles.actual(i);
            let (w, r) = factory.create(&env, owner, format!("E[{i}]"), Slot::<V>::None);
            echo_w.push(w);
            echo_r.push(r);
            let (w, r) = factory.create(&env, owner, format!("R[{i}]"), Slot::<V>::None);
            witness_w.push(w);
            witness_r.push(r);
        }

        // R_{j,k} reply registers (initially ⟨⊥, 0⟩) and C_k round counters:
        // the shared quorum fabric of §5.1.
        let fabric = QuorumFabric::install(&env, factory, &roles, Slot::<V>::None);

        let shared = SharedPorts {
            echo: echo_r,
            witness: witness_r,
            replies: fabric.reply_matrix(),
            askers: fabric.asker_ports(),
        };

        let demand = shard.map(HelpShard::new_demand);
        for j in 1..=n {
            let task = HelpTask3 {
                env: env.clone(),
                shared: shared.clone(),
                echo_w: echo_w[j - 1].clone(),
                witness_w: witness_w[j - 1].clone(),
                replies_w: fabric.reply_row(j),
                tracker: AskerTracker::new(n - 1),
            };
            match (shard, &demand) {
                (Some(s), Some(d)) => {
                    system.add_sharded_help_task(s, roles.actual(j), d, Box::new(task));
                }
                _ => system.add_help_task(roles.actual(j), Box::new(task)),
            }
        }

        let mut endpoints = Vec::with_capacity(n);
        for j in 1..=n {
            endpoints.push(ProcessPorts {
                echo_w: echo_w[j - 1].clone(),
                witness_w: witness_w[j - 1].clone(),
                replies_w: fabric.reply_row(j),
                asker_w: fabric.asker_port(j),
            });
        }

        StickyRegister {
            env: env.clone(),
            roles,
            shared,
            endpoints: Endpoints::new(endpoints),
            demand,
            log: HistoryLog::new(env.clock()),
        }
    }

    /// The process playing the writer role.
    #[must_use]
    pub fn writer_pid(&self) -> ProcessId {
        self.roles.writer()
    }

    /// The recorded operation history.
    #[must_use]
    pub fn history(&self) -> HistoryLog<StickyInv<V>, StickyResp<V>> {
        self.log.clone()
    }

    /// Read-only views of the shared registers.
    #[must_use]
    pub fn shared(&self) -> SharedPorts<V> {
        self.shared.clone()
    }

    fn take_ports(&self, role: usize) -> ProcessPorts<V> {
        self.endpoints.take(role)
    }

    /// The unique writer handle.
    ///
    /// # Panics
    ///
    /// Panics if taken twice or if the writer is declared Byzantine.
    #[must_use]
    pub fn writer(&self) -> StickyWriter<V> {
        let pid = self.roles.writer();
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports({pid}) instead");
        let ports = self.take_ports(1);
        StickyWriter {
            env: self.env.clone(),
            pid,
            e1_w: ports.echo_w,
            witness: self.shared.witness.clone(),
            demand: self.demand.clone(),
            log: self.log.clone(),
        }
    }

    /// The reader handle for any process other than the writer.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer, taken twice, or declared Byzantine.
    #[must_use]
    pub fn reader(&self, pid: ProcessId) -> StickyReader<V> {
        let role = self.roles.role_of(pid);
        assert!(role != 1, "{pid} is the writer, not a reader");
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports({pid}) instead");
        let ports = self.take_ports(role);
        StickyReader {
            env: self.env.clone(),
            pid,
            ck_w: ports.asker_w.expect("reader ports"),
            reply_column: self.shared.reply_column(role),
            demand: self.demand.clone(),
            log: self.log.clone(),
        }
    }

    /// The raw write ports of a declared-Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is correct or already taken.
    #[must_use]
    pub fn attack_ports(&self, pid: ProcessId) -> AttackPorts<V> {
        assert!(
            self.env.is_faulty(pid),
            "{pid} is correct; only declared-Byzantine processes get attack ports"
        );
        let ports = self.take_ports(self.roles.role_of(pid));
        AttackPorts {
            pid,
            echo: ports.echo_w,
            witness: ports.witness_w,
            replies: ports.replies_w,
            asker: ports.asker_w,
            shared: self.shared.clone(),
        }
    }
}

impl<V: Value> std::fmt::Debug for StickyRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StickyRegister")
            .field("n", &self.env.n())
            .field("f", &self.env.f())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Writer handle
// ---------------------------------------------------------------------------

/// The writer handle of a sticky register.
pub struct StickyWriter<V> {
    env: Env,
    pid: ProcessId,
    e1_w: WritePort<Slot<V>>,
    witness: Vec<ReadPort<Slot<V>>>,
    demand: Option<HelpDemand>,
    log: HistoryLog<StickyInv<V>, StickyResp<V>>,
}

impl<V: Value> StickyWriter<V> {
    /// `Write(v)` — Alg. 3 lines 1–6.
    ///
    /// Returns only after `n − f` processes witness the value (§9.1: without
    /// the wait, a `Read` after a completed `Write` could still return `⊥`).
    /// If a value was already written, `Write` is a no-op returning `done`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write(&mut self, v: V) -> Result<()> {
        self.env.check_running()?;
        // The witness wait of lines 3-5 terminates only through the help
        // tasks' echo/witness stages: keep the shard awake for the write.
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let op = self.log.invoke(self.pid, StickyInv::Write(v.clone()));
        let result = self.env.run_as(self.pid, || -> Result<()> {
            // Line 1: if E1 ≠ ⊥ then return done. Line 2: E1 <- v.
            // Owner RMW keeps lines 1-2 atomic w.r.t. p1's own Help thread
            // (which may also write E1; see register::update docs).
            let first = self.e1_w.update(|e| {
                if e.is_none() {
                    *e = Some(v.clone());
                    true
                } else {
                    false
                }
            });
            if !first {
                return Ok(()); // line 1
            }
            // Lines 3-5: wait until n−f processes have R_i = v.
            let need = self.env.n_minus_f();
            loop {
                self.env.check_running()?;
                let count = self.witness.iter().filter(|r| r.read().as_ref() == Some(&v)).count();
                if count >= need {
                    return Ok(()); // line 6
                }
            }
        });
        match result {
            Ok(()) => {
                self.log.respond(op, self.pid, StickyResp::Done);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// **Ablation** (§9.1): `Write(v)` *without* waiting for `n − f`
    /// witnesses.
    ///
    /// The paper explains why the wait in lines 3–5 is necessary: *"without
    /// this wait, a process may invoke a `Read` after a `Write(v)` completes
    /// and get back `⊥` rather than `v`"* — the stricter witness policy may
    /// delay acceptance of the value. This method exists so the ablation
    /// experiment (`tests/ablation.rs`) can demonstrate exactly that
    /// anomaly; it must never be used where Definition 21 semantics are
    /// expected.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write_without_witness_wait(&mut self, v: V) -> Result<()> {
        self.env.check_running()?;
        let op = self.log.invoke(self.pid, StickyInv::Write(v.clone()));
        self.env.run_as(self.pid, || {
            self.e1_w.update(|e| {
                if e.is_none() {
                    *e = Some(v.clone());
                }
            });
        });
        // Lines 3-5 deliberately omitted.
        self.log.respond(op, self.pid, StickyResp::Done);
        Ok(())
    }
}

impl<V: Value> std::fmt::Debug for StickyWriter<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StickyWriter({})", self.pid)
    }
}

// ---------------------------------------------------------------------------
// Reader handle
// ---------------------------------------------------------------------------

/// A reader handle of a sticky register.
pub struct StickyReader<V> {
    env: Env,
    pid: ProcessId,
    ck_w: WritePort<u64>,
    reply_column: Vec<ReadPort<Reply<V>>>,
    demand: Option<HelpDemand>,
    log: HistoryLog<StickyInv<V>, StickyResp<V>>,
}

impl<V: Value> StickyReader<V> {
    /// The reader's process id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `Read()` — Alg. 3 lines 7–22. Returns `None` for `⊥`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn read(&mut self) -> Result<Slot<V>> {
        self.env.check_running()?;
        // The quorum rounds of lines 7-22 need helpers: keep the shard
        // awake for the read.
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let op = self.log.invoke(self.pid, StickyInv::Read);
        let outcome = self.env.run_as(self.pid, || self.read_procedure())?;
        self.log.respond(op, self.pid, StickyResp::ReadValue(outcome.clone()));
        Ok(outcome)
    }

    fn read_procedure(&self) -> Result<Slot<V>> {
        let n = self.env.n();
        let f = self.env.f();
        // Lines 7-22, via the shared §5.1 round engine: `setval` entries are
        // affirmations (they accumulate in `votes`), `⊥`-replies are
        // dissents, and a dissent set larger than `f` decides `⊥`. The
        // engine's set0-reset on affirmation is exactly line 17
        // (`set⊥ <- ∅`).
        let votes: std::cell::RefCell<std::collections::BTreeMap<V, usize>> =
            std::cell::RefCell::new(std::collections::BTreeMap::new());
        quorum_rounds(
            &self.env,
            &self.ck_w,
            &self.reply_column,
            |_, u_j: Slot<V>| match u_j {
                Some(v) => {
                    // Lines 15-16: setval ∪= {⟨uj, pj⟩} (each pj classifies
                    // at most once, so counting per value is exact).
                    *votes.borrow_mut().entry(v).or_insert(0) += 1;
                    Ballot::Affirm
                }
                None => Ballot::Dissent, // lines 18-19
            },
            |_n1, n_bot| {
                // Lines 20-21: a value witnessed by >= n−f processes wins.
                if let Some((v, _)) = votes.borrow().iter().find(|(_, c)| **c >= n - f) {
                    return Some(Some(v.clone()));
                }
                // Line 22.
                (n_bot > f).then_some(None)
            },
        )
    }
}

impl<V: Value> std::fmt::Debug for StickyReader<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StickyReader({})", self.pid)
    }
}

// ---------------------------------------------------------------------------
// Help task (lines 23-40)
// ---------------------------------------------------------------------------

struct HelpTask3<V: Value> {
    env: Env,
    shared: SharedPorts<V>,
    echo_w: WritePort<Slot<V>>,
    witness_w: WritePort<Slot<V>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    tracker: AskerTracker,
}

impl<V: Value> HelpTask3<V> {
    /// Sets the witness register to `v` if it is still `⊥` (guarded; the
    /// guard preserves the sequential-process semantics of `Rj = ⊥` checks).
    fn witness_if_unset(&self, v: V) {
        self.witness_w.update(|slot| {
            if slot.is_none() {
                *slot = Some(v);
            }
        });
    }
}

impl<V: Value> byzreg_runtime::HelpTask for HelpTask3<V> {
    fn tick(&mut self) {
        let n = self.env.n();
        let f = self.env.f();

        // Lines 25-27: echo the first non-⊥ value seen in E1.
        if self.echo_w.read().is_none() {
            let e1 = self.shared.echo[0].read(); // line 26: ej <- E1
            if e1.is_some() {
                // Line 27, guarded: only the first echo sticks. The guard
                // also prevents p1's help thread from clobbering p1's own
                // Write (owner RMW; see register::update docs).
                self.echo_w.update(|slot| {
                    if slot.is_none() {
                        *slot = e1;
                    }
                });
            }
        }

        // Lines 28-30: become a witness of v after n−f echoes of v.
        if self.witness_w.read().is_none() {
            let echoes: Vec<Slot<V>> = self.shared.echo.iter().map(ReadPort::read).collect();
            if let Some(v) = majority_value(&echoes, n - f) {
                self.witness_if_unset(v);
            }
        }

        // Lines 31-32: sample C_k, compute askers.
        let (ck, askers) = self.tracker.poll(&self.shared.askers);
        if askers.is_empty() {
            return; // line 33
        }

        // Lines 34-36: with an asker waiting, also accept f+1 witnesses.
        if self.witness_w.read().is_none() {
            let witnesses: Vec<Slot<V>> = self.shared.witness.iter().map(ReadPort::read).collect();
            if let Some(v) = majority_value(&witnesses, f + 1) {
                self.witness_if_unset(v);
            }
        }

        // Line 37: rj <- Rj.
        let r_j = self.witness_w.read();
        // Lines 38-40.
        self.tracker.serve(&self.replies_w, &ck, &askers, &r_j);
    }
}

/// Returns a value `v ≠ ⊥` held by at least `threshold` of the given slots.
fn majority_value<V: Value>(slots: &[Slot<V>], threshold: usize) -> Option<V> {
    let mut counts: std::collections::BTreeMap<&V, usize> = std::collections::BTreeMap::new();
    for v in slots.iter().flatten() {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().find(|(_, c)| *c >= threshold).map(|(v, _)| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{Scheduling, System};

    fn sys(n: usize, seed: u64) -> System {
        System::builder(n).scheduling(Scheduling::Chaotic(seed)).build()
    }

    #[test]
    fn read_bottom_before_any_write() {
        let system = sys(4, 21);
        let reg = StickyRegister::<u32>::install(&system);
        let mut r = reg.reader(ProcessId::new(2));
        assert_eq!(r.read().unwrap(), None);
        system.shutdown();
    }

    #[test]
    fn write_then_read_returns_value() {
        let system = sys(4, 22);
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(5u32).unwrap();
        assert_eq!(r.read().unwrap(), Some(5));
        system.shutdown();
    }

    #[test]
    fn second_write_is_a_noop() {
        let system = sys(4, 23);
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        w.write(5u32).unwrap();
        w.write(9).unwrap(); // returns done but changes nothing (line 1)
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            assert_eq!(r.read().unwrap(), Some(5), "reader p{k}");
        }
        system.shutdown();
    }

    #[test]
    fn completed_write_is_visible_to_all_readers() {
        // §9.1: the n−f witness wait makes the written value immediately
        // readable — never ⊥ after Write returns.
        let system = sys(7, 24);
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        w.write(3u32).unwrap();
        for k in 2..=7 {
            let mut r = reg.reader(ProcessId::new(k));
            assert_eq!(r.read().unwrap(), Some(3));
        }
        system.shutdown();
    }

    #[test]
    fn lockstep_terminates() {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(7)).build();
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(3));
        assert_eq!(r.read().unwrap(), None);
        w.write(1u32).unwrap();
        assert_eq!(r.read().unwrap(), Some(1));
        system.shutdown();
    }

    #[test]
    fn byzantine_writer_cannot_make_readers_disagree() {
        // The adversary writes different values into E1 over time and stuffs
        // its reply registers; correct readers must never return two
        // different non-⊥ values (Obs. 24 / Cor. 182).
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(25))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = StickyRegister::install(&system);
        let ports = reg.attack_ports(ProcessId::new(1));
        let shared = ports.shared.clone();
        let mut flip = 0u32;
        system.spawn_byzantine(ProcessId::new(1), move || {
            flip += 1;
            ports.echo.write(Some(if flip % 2 == 0 { 111 } else { 222 }));
            ports.witness.write(Some(if flip % 3 == 0 { 111 } else { 222 }));
            for (k, rep) in ports.replies.iter().enumerate() {
                let c = shared.askers[k].read();
                rep.write((Some(if flip % 2 == 0 { 222 } else { 111 }), c));
            }
            flip < 10_000
        });
        let mut got = Vec::new();
        for k in 2..=4 {
            let mut r = reg.reader(ProcessId::new(k));
            for _ in 0..3 {
                if let Some(v) = r.read().unwrap() {
                    got.push(v);
                }
            }
        }
        // All non-⊥ reads agree.
        got.dedup();
        assert!(got.len() <= 1, "readers observed disagreeing values: {got:?}");
        system.shutdown();
    }

    #[test]
    fn history_is_recorded() {
        let system = sys(4, 26);
        let reg = StickyRegister::install(&system);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(1u32).unwrap();
        let _ = r.read().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn majority_value_thresholds() {
        let slots = vec![Some(1u32), Some(1), None, Some(2)];
        assert_eq!(majority_value(&slots, 2), Some(1));
        assert_eq!(majority_value(&slots, 3), None);
        assert_eq!(majority_value::<u32>(&[None, None], 1), None);
    }
}
