//! # byzreg-core
//!
//! The paper's contribution: three SWMR register types that provide
//! signature properties **without signatures**, in systems with `n > 3f`
//! processes of which `f` may be Byzantine (Hu & Toueg, *"You can lie but
//! not deny"*, PODC 2025).
//!
//! * [`verifiable`] — Algorithm 1: `Write`/`Read`/`Sign`/`Verify`,
//! * [`authenticated`] — Algorithm 2: every `Write` atomically "signed",
//! * [`sticky`] — Algorithm 3: the first written value never changes,
//! * [`test_or_set`] — §10: test-or-set from each register (Observation 30)
//!   plus the *naive* plain-register implementations broken by the Figure 1
//!   histories (Theorem 29),
//! * [`attacks`] — canned Byzantine adversary strategies,
//! * [`quorum`] — the shared `set0`/`set1` voting engine of §5.1 and the
//!   reply/asker register fabric all three algorithms install,
//! * [`api`] — the [`SignatureRegister`] trait layer: one generic interface
//!   (install / writer / reader, sign / verify) over all three families,
//!   for harnesses that iterate over register types.
//!
//! # Quick start
//!
//! ```
//! use byzreg_core::VerifiableRegister;
//! use byzreg_runtime::{ProcessId, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = System::builder(4).build(); // n = 4, f = 1
//! let reg = VerifiableRegister::install(&system, 0u64);
//! let mut writer = reg.writer();
//! let mut reader = reg.reader(ProcessId::new(2));
//!
//! writer.write(7)?;
//! writer.sign(&7)?;
//! assert!(reader.verify(&7)?); // and no one can ever deny it
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Thresholds are written exactly as in the paper (`>= f + 1`, `>= n - f`).
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

pub mod api;
pub mod attacks;
pub mod authenticated;
pub mod quorum;
pub mod sticky;
pub mod test_or_set;
pub mod verifiable;

pub use api::{Family, SignatureRegister, SignatureSigner, SignatureVerifier};
pub use authenticated::{AuthenticatedReader, AuthenticatedRegister, AuthenticatedWriter};
pub use sticky::{StickyReader, StickyRegister, StickyWriter};
pub use test_or_set::{
    TosFromAuthenticated, TosFromSticky, TosFromVerifiable, TosSetter, TosTester,
};
pub use verifiable::{VerifiableReader, VerifiableRegister, VerifiableWriter};
