//! §10: the **test-or-set** object.
//!
//! A test-or-set object (Definition 26) is a register initialized to 0 that
//! one process (the *setter*) can set to 1 and others (*testers*) can test;
//! `Test` returns 1 iff a `Set` occurs before it. The paper uses it to prove
//! the `n > 3f` bound optimal:
//!
//! * Observation 30: test-or-set **is** implementable — wait-free, for any
//!   `n > f` — from a verifiable, authenticated, or sticky register. The
//!   three constructions are [`TosFromVerifiable`], [`TosFromAuthenticated`],
//!   and [`TosFromSticky`].
//! * Theorem 29: it is **not** implementable from plain SWMR registers when
//!   `3 ≤ n ≤ 3f`. The [`naive`] module implements the natural
//!   witness-quorum attempts sketched in §5.1 from plain registers; the
//!   Figure 1 histories (see `tests/impossibility.rs` and experiment E1)
//!   break each of them in exactly the way the proof's case analysis
//!   predicts.
//!
//! All implementations record their operations against the
//! [`TestOrSetSpec`](byzreg_spec::registers::TestOrSetSpec) alphabet so the
//! Lemma 28 monitor and the linearizability checker can audit them.

use byzreg_runtime::{Env, HistoryLog, ProcessId, Result, System};
use byzreg_spec::registers::{TosInv, TosResp};

use crate::authenticated::{AuthenticatedReader, AuthenticatedRegister, AuthenticatedWriter};
use crate::sticky::{StickyReader, StickyRegister, StickyWriter};
use crate::verifiable::{VerifiableReader, VerifiableRegister, VerifiableWriter};

/// The setter side of a test-or-set object.
pub trait TosSetter: Send {
    /// `Set` — sets the object to 1.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn set(&mut self) -> Result<()>;
}

/// The tester side of a test-or-set object.
pub trait TosTester: Send {
    /// `Test` — returns `true` for 1.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    fn test(&mut self) -> Result<bool>;
}

/// The recorded test-or-set history type.
pub type TosHistory = HistoryLog<TosInv, TosResp>;

// ---------------------------------------------------------------------------
// From a verifiable register (§10)
// ---------------------------------------------------------------------------

/// Test-or-set from a SWMR **verifiable** register initialized to `0`:
/// `Set = Write(1); Sign(1)`, `Test = Verify(1)`.
pub struct TosFromVerifiable {
    reg: VerifiableRegister<u8>,
    log: TosHistory,
}

impl TosFromVerifiable {
    /// Installs the construction on `system`.
    #[must_use]
    pub fn install(system: &System) -> Self {
        let reg = VerifiableRegister::install(system, 0u8);
        let log = HistoryLog::new(system.env().clock());
        TosFromVerifiable { reg, log }
    }

    /// The unique setter handle (process `p1`).
    #[must_use]
    pub fn setter(&self) -> VerifiableTosSetter {
        VerifiableTosSetter { writer: self.reg.writer(), log: self.log.clone() }
    }

    /// A tester handle for reader `pid`.
    #[must_use]
    pub fn tester(&self, pid: ProcessId) -> VerifiableTosTester {
        VerifiableTosTester { reader: self.reg.reader(pid), log: self.log.clone() }
    }

    /// The recorded test-or-set history.
    #[must_use]
    pub fn history(&self) -> TosHistory {
        self.log.clone()
    }

    /// The backing register (e.g. to take attack ports).
    #[must_use]
    pub fn backing(&self) -> &VerifiableRegister<u8> {
        &self.reg
    }
}

/// Setter over a verifiable register.
pub struct VerifiableTosSetter {
    writer: VerifiableWriter<u8>,
    log: TosHistory,
}

impl TosSetter for VerifiableTosSetter {
    fn set(&mut self) -> Result<()> {
        let op = self.log.invoke(ProcessId::new(1), TosInv::Set);
        self.writer.write(1)?;
        let signed = self.writer.sign(&1)?;
        debug_assert!(signed, "Sign(1) must succeed right after Write(1)");
        self.log.respond(op, ProcessId::new(1), TosResp::Done);
        Ok(())
    }
}

/// Tester over a verifiable register.
pub struct VerifiableTosTester {
    reader: VerifiableReader<u8>,
    log: TosHistory,
}

impl TosTester for VerifiableTosTester {
    fn test(&mut self) -> Result<bool> {
        let pid = self.reader.pid();
        let op = self.log.invoke(pid, TosInv::Test);
        let one = self.reader.verify(&1)?;
        self.log.respond(op, pid, TosResp::TestResult(one));
        Ok(one)
    }
}

// ---------------------------------------------------------------------------
// From an authenticated register (§10)
// ---------------------------------------------------------------------------

/// Test-or-set from a SWMR **authenticated** register initialized to `0`:
/// `Set = Write(1)`, `Test = Verify(1)`.
pub struct TosFromAuthenticated {
    reg: AuthenticatedRegister<u8>,
    log: TosHistory,
}

impl TosFromAuthenticated {
    /// Installs the construction on `system`.
    #[must_use]
    pub fn install(system: &System) -> Self {
        let reg = AuthenticatedRegister::install(system, 0u8);
        let log = HistoryLog::new(system.env().clock());
        TosFromAuthenticated { reg, log }
    }

    /// The unique setter handle (process `p1`).
    #[must_use]
    pub fn setter(&self) -> AuthenticatedTosSetter {
        AuthenticatedTosSetter { writer: self.reg.writer(), log: self.log.clone() }
    }

    /// A tester handle for reader `pid`.
    #[must_use]
    pub fn tester(&self, pid: ProcessId) -> AuthenticatedTosTester {
        AuthenticatedTosTester { reader: self.reg.reader(pid), log: self.log.clone() }
    }

    /// The recorded test-or-set history.
    #[must_use]
    pub fn history(&self) -> TosHistory {
        self.log.clone()
    }

    /// The backing register.
    #[must_use]
    pub fn backing(&self) -> &AuthenticatedRegister<u8> {
        &self.reg
    }
}

/// Setter over an authenticated register.
pub struct AuthenticatedTosSetter {
    writer: AuthenticatedWriter<u8>,
    log: TosHistory,
}

impl TosSetter for AuthenticatedTosSetter {
    fn set(&mut self) -> Result<()> {
        let op = self.log.invoke(ProcessId::new(1), TosInv::Set);
        self.writer.write(1)?;
        self.log.respond(op, ProcessId::new(1), TosResp::Done);
        Ok(())
    }
}

/// Tester over an authenticated register.
pub struct AuthenticatedTosTester {
    reader: AuthenticatedReader<u8>,
    log: TosHistory,
}

impl TosTester for AuthenticatedTosTester {
    fn test(&mut self) -> Result<bool> {
        let pid = self.reader.pid();
        let op = self.log.invoke(pid, TosInv::Test);
        let one = self.reader.verify(&1)?;
        self.log.respond(op, pid, TosResp::TestResult(one));
        Ok(one)
    }
}

// ---------------------------------------------------------------------------
// From a sticky register (§10)
// ---------------------------------------------------------------------------

/// Test-or-set from a SWMR **sticky** register initialized to `⊥`:
/// `Set = Write(1)`, `Test = (Read() == 1)`.
pub struct TosFromSticky {
    reg: StickyRegister<u8>,
    log: TosHistory,
}

impl TosFromSticky {
    /// Installs the construction on `system`.
    #[must_use]
    pub fn install(system: &System) -> Self {
        let reg = StickyRegister::install(system);
        let log = HistoryLog::new(system.env().clock());
        TosFromSticky { reg, log }
    }

    /// The unique setter handle (process `p1`).
    #[must_use]
    pub fn setter(&self) -> StickyTosSetter {
        StickyTosSetter { writer: self.reg.writer(), log: self.log.clone() }
    }

    /// A tester handle for reader `pid`.
    #[must_use]
    pub fn tester(&self, pid: ProcessId) -> StickyTosTester {
        StickyTosTester { reader: self.reg.reader(pid), log: self.log.clone() }
    }

    /// The recorded test-or-set history.
    #[must_use]
    pub fn history(&self) -> TosHistory {
        self.log.clone()
    }

    /// The backing register.
    #[must_use]
    pub fn backing(&self) -> &StickyRegister<u8> {
        &self.reg
    }
}

/// Setter over a sticky register.
pub struct StickyTosSetter {
    writer: StickyWriter<u8>,
    log: TosHistory,
}

impl TosSetter for StickyTosSetter {
    fn set(&mut self) -> Result<()> {
        let op = self.log.invoke(ProcessId::new(1), TosInv::Set);
        self.writer.write(1)?;
        self.log.respond(op, ProcessId::new(1), TosResp::Done);
        Ok(())
    }
}

/// Tester over a sticky register.
pub struct StickyTosTester {
    reader: StickyReader<u8>,
    log: TosHistory,
}

impl TosTester for StickyTosTester {
    fn test(&mut self) -> Result<bool> {
        let pid = self.reader.pid();
        let op = self.log.invoke(pid, TosInv::Test);
        let one = self.reader.read()? == Some(1);
        self.log.respond(op, pid, TosResp::TestResult(one));
        Ok(one)
    }
}

// ---------------------------------------------------------------------------
// Naive implementations from plain registers (provably breakable, Thm 29)
// ---------------------------------------------------------------------------

pub mod naive {
    //! The "partial algorithm" of §5.1, implemented from **plain** SWMR
    //! registers — the natural witness-quorum attempts whose impossibility
    //! Theorem 29 proves for `3 ≤ n ≤ 3f`.
    //!
    //! Each process `p_i` owns a boolean *vouch* register `V_i` ("I am a
    //! witness that `Set` happened"). The setter's `Set` raises `V_1`;
    //! correct processes propagate (Srikanth–Toueg style): vouch upon seeing
    //! `V_1` or `f + 1` vouchers. Two decision rules are provided, matching
    //! the two horns of the proof's case analysis:
    //!
    //! * [`Rule::Threshold`] — `Test` returns 1 only with `f + 1` vouchers
    //!   (or upon reading `V_1` directly and awaiting propagation). Sound
    //!   against forgery, but the Figure 1 history **H2** makes it violate
    //!   the relay property, Lemma 28(3): after the Byzantine coalition
    //!   resets its registers, only `f` honest vouchers remain.
    //! * [`Rule::Gullible`] — `Test` returns 1 on *any* voucher. Relay-proof,
    //!   but the Figure 1 history **H3** makes `f` Byzantine vouchers forge
    //!   a `Set` that never happened, violating Lemma 28(2).

    use byzreg_runtime::{register, ReadPort, WritePort};

    use super::*;

    /// Decision rule of the naive tester (see module docs).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Rule {
        /// Return 1 only with `f + 1` concurrent vouchers.
        Threshold,
        /// Return 1 on any voucher.
        Gullible,
    }

    /// Write ports of one process of the naive implementation, for
    /// adversaries.
    pub struct AttackPorts {
        /// The faulty process.
        pub pid: ProcessId,
        /// Its vouch register `V_pid`.
        pub vouch: WritePort<bool>,
        /// Read access to every vouch register.
        pub all: Vec<ReadPort<bool>>,
    }

    /// A naive test-or-set object from plain SWMR boolean registers.
    pub struct NaiveTestOrSet {
        env: Env,
        rule: Rule,
        vouch_r: Vec<ReadPort<bool>>,
        endpoints: parking_lot::Mutex<Vec<Option<WritePort<bool>>>>,
        log: TosHistory,
    }

    impl NaiveTestOrSet {
        /// Installs the naive object with the given decision `rule`.
        ///
        /// Deliberately does **not** require `n > 3f`: the whole point is to
        /// run it at `n ≤ 3f` and watch Theorem 29 bite.
        #[must_use]
        pub fn install(system: &System, rule: Rule) -> Self {
            Self::install_with_sleepers(system, rule, std::collections::HashMap::new())
        }

        /// Like [`NaiveTestOrSet::install`], but processes listed in
        /// `sleepers` keep their help task suspended while their flag is
        /// `true` — this stages the "asleep until t6" processes of the
        /// Figure 1 histories (the scheduler is under adversary control in
        /// the proof of Theorem 29).
        #[must_use]
        pub fn install_with_sleepers(
            system: &System,
            rule: Rule,
            sleepers: std::collections::HashMap<
                ProcessId,
                std::sync::Arc<std::sync::atomic::AtomicBool>,
            >,
        ) -> Self {
            let env = system.env().clone();
            let n = env.n();
            let gate = env.gate();
            let mut vouch_w = Vec::with_capacity(n);
            let mut vouch_r = Vec::with_capacity(n);
            for i in 1..=n {
                let (w, r) =
                    register::swmr(gate.clone(), ProcessId::new(i), format!("V[{i}]"), false);
                vouch_w.push(w);
                vouch_r.push(r);
            }
            // Propagation help task (correct processes only): vouch upon
            // seeing V_1 or f+1 vouchers.
            for j in 1..=n {
                let all = vouch_r.clone();
                let own = vouch_w[j - 1].clone();
                let f = env.f();
                let asleep = sleepers.get(&ProcessId::new(j)).cloned();
                system.add_help_task(
                    ProcessId::new(j),
                    Box::new(move || {
                        if let Some(flag) = &asleep {
                            if flag.load(std::sync::atomic::Ordering::SeqCst) {
                                return; // taking no steps, per the schedule
                            }
                        }
                        if own.read() {
                            return;
                        }
                        let count = all.iter().filter(|r| r.read()).count();
                        if all[0].read() || count >= f + 1 {
                            own.write(true);
                        }
                    }),
                );
            }
            NaiveTestOrSet {
                env: env.clone(),
                rule,
                vouch_r,
                endpoints: parking_lot::Mutex::new(vouch_w.into_iter().map(Some).collect()),
                log: HistoryLog::new(env.clock()),
            }
        }

        /// The recorded history.
        #[must_use]
        pub fn history(&self) -> TosHistory {
            self.log.clone()
        }

        fn take(&self, pid: ProcessId) -> WritePort<bool> {
            self.endpoints.lock()[pid.zero_based()]
                .take()
                .unwrap_or_else(|| panic!("ports of {pid} already taken"))
        }

        /// The setter handle (`p1`).
        ///
        /// # Panics
        ///
        /// Panics if taken twice or `p1` is Byzantine.
        #[must_use]
        pub fn setter(&self) -> NaiveSetter {
            let pid = ProcessId::new(1);
            assert!(!self.env.is_faulty(pid), "p1 is Byzantine; take attack_ports");
            NaiveSetter { env: self.env.clone(), v1: self.take(pid), log: self.log.clone() }
        }

        /// A tester handle.
        ///
        /// # Panics
        ///
        /// Panics if `pid` is the setter, taken twice, or Byzantine.
        #[must_use]
        pub fn tester(&self, pid: ProcessId) -> NaiveTester {
            assert!(!pid.is_writer(), "p1 is the setter");
            assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports");
            NaiveTester {
                env: self.env.clone(),
                pid,
                rule: self.rule,
                own: self.take(pid),
                all: self.vouch_r.clone(),
                log: self.log.clone(),
            }
        }

        /// The raw ports of a declared-Byzantine process.
        ///
        /// # Panics
        ///
        /// Panics if `pid` is correct or taken.
        #[must_use]
        pub fn attack_ports(&self, pid: ProcessId) -> AttackPorts {
            assert!(self.env.is_faulty(pid), "{pid} is correct");
            AttackPorts { pid, vouch: self.take(pid), all: self.vouch_r.clone() }
        }
    }

    /// The naive setter.
    pub struct NaiveSetter {
        env: Env,
        v1: WritePort<bool>,
        log: TosHistory,
    }

    impl TosSetter for NaiveSetter {
        fn set(&mut self) -> Result<()> {
            self.env.check_running()?;
            let op = self.log.invoke(ProcessId::new(1), TosInv::Set);
            self.env.run_as(ProcessId::new(1), || self.v1.write(true));
            self.log.respond(op, ProcessId::new(1), TosResp::Done);
            Ok(())
        }
    }

    /// The naive tester.
    pub struct NaiveTester {
        env: Env,
        pid: ProcessId,
        rule: Rule,
        own: WritePort<bool>,
        all: Vec<ReadPort<bool>>,
        log: TosHistory,
    }

    impl TosTester for NaiveTester {
        fn test(&mut self) -> Result<bool> {
            self.env.check_running()?;
            let op = self.log.invoke(self.pid, TosInv::Test);
            let f = self.env.f();
            let result = self.env.run_as(self.pid, || -> Result<bool> {
                loop {
                    self.env.check_running()?;
                    let vouchers = self.all.iter().filter(|r| r.read()).count();
                    match self.rule {
                        Rule::Gullible => {
                            // Believe anyone. (Terminates immediately.)
                            return Ok(vouchers >= 1);
                        }
                        Rule::Threshold => {
                            if vouchers >= f + 1 {
                                // Join the witnesses ourselves, then accept.
                                self.own.write(true);
                                return Ok(true);
                            }
                            // No direct evidence from the setter and not
                            // enough vouchers: reject.
                            if !self.all[0].read() && vouchers <= f {
                                return Ok(false);
                            }
                            // V_1 is raised: wait for propagation.
                        }
                    }
                }
            })?;
            self.log.respond(op, self.pid, TosResp::TestResult(result));
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::naive::{NaiveTestOrSet, Rule};
    use super::*;
    use byzreg_runtime::{Scheduling, System};
    use byzreg_spec::monitors::test_or_set_monitor;

    fn sys(n: usize, seed: u64) -> System {
        System::builder(n).scheduling(Scheduling::Chaotic(seed)).build()
    }

    fn run_happy_path(
        mut setter: impl TosSetter,
        mut t1: impl TosTester,
        mut t2: impl TosTester,
    ) -> (bool, bool, bool) {
        let before = t1.test().unwrap();
        setter.set().unwrap();
        let after1 = t1.test().unwrap();
        let after2 = t2.test().unwrap();
        (before, after1, after2)
    }

    #[test]
    fn from_verifiable_obeys_observation_27() {
        let system = sys(4, 31);
        let tos = TosFromVerifiable::install(&system);
        let (before, after1, after2) = run_happy_path(
            tos.setter(),
            tos.tester(ProcessId::new(2)),
            tos.tester(ProcessId::new(3)),
        );
        assert!(!before && after1 && after2);
        assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
        system.shutdown();
    }

    #[test]
    fn from_authenticated_obeys_observation_27() {
        let system = sys(4, 32);
        let tos = TosFromAuthenticated::install(&system);
        let (before, after1, after2) = run_happy_path(
            tos.setter(),
            tos.tester(ProcessId::new(2)),
            tos.tester(ProcessId::new(3)),
        );
        assert!(!before && after1 && after2);
        assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
        system.shutdown();
    }

    #[test]
    fn from_sticky_obeys_observation_27() {
        let system = sys(4, 33);
        let tos = TosFromSticky::install(&system);
        let (before, after1, after2) = run_happy_path(
            tos.setter(),
            tos.tester(ProcessId::new(2)),
            tos.tester(ProcessId::new(3)),
        );
        assert!(!before && after1 && after2);
        assert!(test_or_set_monitor(true, &tos.history().complete_ops()).is_ok());
        system.shutdown();
    }

    #[test]
    fn naive_threshold_works_without_faults() {
        // With n > 3f and nobody Byzantine the naive algorithm is fine —
        // the impossibility only bites at n <= 3f with real adversaries.
        let system = sys(4, 34);
        let tos = NaiveTestOrSet::install(&system, Rule::Threshold);
        let (before, after1, after2) = run_happy_path(
            tos.setter(),
            tos.tester(ProcessId::new(2)),
            tos.tester(ProcessId::new(3)),
        );
        assert!(!before && after1 && after2);
        system.shutdown();
    }

    #[test]
    fn naive_gullible_works_without_faults() {
        let system = sys(4, 35);
        let tos = NaiveTestOrSet::install(&system, Rule::Gullible);
        let (before, after1, after2) = run_happy_path(
            tos.setter(),
            tos.tester(ProcessId::new(2)),
            tos.tester(ProcessId::new(3)),
        );
        assert!(!before && after1 && after2);
        system.shutdown();
    }
}
