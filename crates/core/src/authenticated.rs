//! Algorithm 2: a SWMR **authenticated register** from plain SWMR registers,
//! without signatures, for `n > 3f`.
//!
//! Every value written is atomically "signed with the writer's signature"
//! (Definition 15): there is no separate `Sign` operation, and `Verify(v)`
//! returns `true` iff `v` was written (or `v = v0`). Line numbers in
//! comments refer to Algorithm 2 in the paper.
//!
//! Differences from Algorithm 1 (§7.1): the writer keeps a *single* register
//! `R1` holding timestamped tuples `⟨ℓ, v⟩` (no separate `R*`), and `Read`
//! internally runs the `Verify(−)` procedure on the freshest value before
//! returning it — if verification fails (possible only with a Byzantine
//! writer), the read returns `v0`.
//!
//! A Byzantine writer may store *malformed* content in `R1`; the
//! [`WriterRecord::Garbage`] variant models exactly that, and `Read`'s
//! type-check (line 5: "if `r` is a set of tuples of the form `⟨ℓ, v⟩`")
//! is implemented faithfully.
//!
//! # Examples
//!
//! ```
//! use byzreg_core::authenticated::AuthenticatedRegister;
//! use byzreg_runtime::{ProcessId, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = System::builder(4).build();
//! let reg = AuthenticatedRegister::install(&system, 0u64);
//! let mut writer = reg.writer();
//! let mut reader = reg.reader(ProcessId::new(2));
//!
//! writer.write(7)?;
//! assert_eq!(reader.read()?, 7);
//! assert!(reader.verify(&7)?, "writes are atomically signed");
//! assert!(reader.verify(&0)?, "v0 is deemed signed");
//! assert!(!reader.verify(&9)?);
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use byzreg_runtime::{
    Env, HelpDemand, HelpShard, HistoryLog, LocalFactory, ProcessId, ReadPort, RegisterFactory,
    Result, Roles, System, Value, WritePort,
};
use byzreg_spec::registers::{AuthInv, AuthResp};

use crate::quorum::{
    verify_quorum, verify_quorum_many, AskerTracker, Endpoints, EngineParts, QuorumFabric, Reply,
};

/// A process's witness set (content of `R_j`, `j ≠ 1`).
pub type WitnessSet<V> = BTreeSet<V>;

/// Content of the writer's register `R1`.
///
/// A correct writer only ever stores [`WriterRecord::Tuples`]; the
/// [`WriterRecord::Garbage`] variant lets a Byzantine writer store content
/// that is *not* "a set of tuples of the form `⟨ℓ, v⟩`", exercising the
/// type-check in `Read` (Alg. 2 line 5).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WriterRecord<V: Ord> {
    /// A set of timestamped values `⟨ℓ, v⟩`.
    Tuples(BTreeSet<(u64, V)>),
    /// Malformed content (the payload is arbitrary adversary-chosen noise).
    Garbage(u64),
}

impl<V: Value> WriterRecord<V> {
    /// The set of values carried by the record (`{v | ⟨−, v⟩ ∈ r}`, line 30);
    /// empty for garbage.
    #[must_use]
    pub fn values(&self) -> BTreeSet<V> {
        match self {
            WriterRecord::Tuples(set) => set.iter().map(|(_, v)| v.clone()).collect(),
            WriterRecord::Garbage(_) => BTreeSet::new(),
        }
    }

    /// The tuple with the greatest `⟨ℓ, v⟩` (footnote 8: lexicographic), if
    /// the record is well-formed and non-empty.
    #[must_use]
    pub fn freshest(&self) -> Option<&(u64, V)> {
        match self {
            WriterRecord::Tuples(set) => set.iter().next_back(),
            WriterRecord::Garbage(_) => None,
        }
    }
}

/// Read-only views of every shared register of one authenticated-register
/// instance.
pub struct SharedPorts<V: Ord> {
    /// `R1` — the writer's timestamped-value set.
    pub r1: ReadPort<WriterRecord<V>>,
    /// `R_k` for readers `p2..=pn` (index `pid - 2`); witness sets.
    pub witness: Vec<ReadPort<WitnessSet<V>>>,
    /// `R_{j,k}` reply registers: `replies[j][k]`, `j` 0-based over all
    /// processes, `k` 0-based over readers.
    pub replies: Vec<Vec<ReadPort<Reply<V>>>>,
    /// `C_k` for readers (index `pid - 2`).
    pub askers: Vec<ReadPort<u64>>,
}

impl<V: Ord> Clone for SharedPorts<V> {
    fn clone(&self) -> Self {
        SharedPorts {
            r1: self.r1.clone(),
            witness: self.witness.clone(),
            replies: self.replies.clone(),
            askers: self.askers.clone(),
        }
    }
}

impl<V: Value> SharedPorts<V> {
    fn reply_column(&self, reader_role: usize) -> Vec<ReadPort<Reply<V>>> {
        let k = reader_role - 2;
        self.replies.iter().map(|row| row[k].clone()).collect()
    }
}

/// Write ports owned by one process, handed to a Byzantine adversary.
pub struct AttackPorts<V: Ord> {
    /// The faulty process.
    pub pid: ProcessId,
    /// `R1` — only for the writer; may be loaded with [`WriterRecord::Garbage`].
    pub r1: Option<WritePort<WriterRecord<V>>>,
    /// `R_pid` — only for readers.
    pub witness: Option<WritePort<WitnessSet<V>>>,
    /// `R_{pid,k}` for every reader `k`.
    pub replies: Vec<WritePort<Reply<V>>>,
    /// `C_pid` — only for readers.
    pub asker: Option<WritePort<u64>>,
    /// Read access to everything.
    pub shared: SharedPorts<V>,
}

struct ProcessPorts<V: Ord> {
    r1_w: Option<WritePort<WriterRecord<V>>>,
    witness_w: Option<WritePort<WitnessSet<V>>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    asker_w: Option<WritePort<u64>>,
}

/// One installed authenticated-register instance (Algorithm 2).
pub struct AuthenticatedRegister<V: Ord> {
    env: Env,
    roles: Roles,
    v0: V,
    shared: SharedPorts<V>,
    endpoints: Endpoints<ProcessPorts<V>>,
    /// `Some` when hosted on a demand-driven help shard (keyed-store
    /// installs); reader handles begin demand around their quorum rounds.
    demand: Option<HelpDemand>,
    log: HistoryLog<AuthInv<V>, AuthResp<V>>,
}

impl<V: Value> AuthenticatedRegister<V> {
    /// Installs the register on `system` with initial value `v0` and attaches
    /// the `Help()` task of every correct process.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (Theorem 31).
    pub fn install(system: &System, v0: V) -> Self {
        Self::install_with(system, v0, &LocalFactory)
    }

    /// Installs the register with `writer` playing the writer role (used by
    /// objects that keep one authenticated cell per process, such as the
    /// atomic snapshot of `byzreg-apps`).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_for_writer(system: &System, v0: V, writer: ProcessId) -> Self {
        let roles = Roles::with_writer(system.env().n(), writer);
        Self::install_impl(system, v0, &LocalFactory, roles, None)
    }

    /// Like [`AuthenticatedRegister::install`], but sourcing base registers
    /// from `factory` (e.g. a message-passing emulation, experiment E6).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_with<F: RegisterFactory>(system: &System, v0: V, factory: &F) -> Self {
        let roles = Roles::identity(system.env().n());
        Self::install_impl(system, v0, factory, roles, None)
    }

    /// Like [`AuthenticatedRegister::install_with`], but hosts the
    /// instance's `Help()` tasks on the demand-driven help shard `shard`
    /// (see `byzreg_runtime::HelpShard`): helpers tick only while one of
    /// this instance's quorum operations is in flight. Used by the keyed
    /// store, which partitions its keys' helping by store shard.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn install_in_shard<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        shard: &HelpShard,
    ) -> Self {
        let roles = Roles::identity(system.env().n());
        Self::install_impl(system, v0, factory, roles, Some(shard))
    }

    fn install_impl<F: RegisterFactory>(
        system: &System,
        v0: V,
        factory: &F,
        roles: Roles,
        shard: Option<&HelpShard>,
    ) -> Self {
        let env = system.env().clone();
        env.require_n_gt_3f();
        let n = env.n();

        // R1: writer's tuple set; initially {⟨0, v0⟩} (line "shared registers").
        let mut init = BTreeSet::new();
        init.insert((0u64, v0.clone()));
        let (r1_w, r1_r) =
            factory.create(&env, roles.actual(1), "R1".into(), WriterRecord::Tuples(init));

        // R_k for readers: witness sets; initially {v0}.
        let mut witness_w = Vec::with_capacity(n - 1);
        let mut witness_r = Vec::with_capacity(n - 1);
        for k in 2..=n {
            let mut set = WitnessSet::new();
            set.insert(v0.clone());
            let (w, r) = factory.create(&env, roles.actual(k), format!("R[{k}]"), set);
            witness_w.push(w);
            witness_r.push(r);
        }

        // R_{j,k} reply registers (initially ⟨∅, 0⟩) and C_k round counters:
        // the shared quorum fabric of §5.1.
        let fabric = QuorumFabric::install(&env, factory, &roles, WitnessSet::<V>::new());

        let shared = SharedPorts {
            r1: r1_r,
            witness: witness_r,
            replies: fabric.reply_matrix(),
            askers: fabric.asker_ports(),
        };

        let demand = shard.map(HelpShard::new_demand);
        for j in 1..=n {
            let task = HelpTask2 {
                env: env.clone(),
                j,
                shared: shared.clone(),
                witness_w: (j >= 2).then(|| witness_w[j - 2].clone()),
                replies_w: fabric.reply_row(j),
                tracker: AskerTracker::new(n - 1),
            };
            match (shard, &demand) {
                (Some(s), Some(d)) => {
                    system.add_sharded_help_task(s, roles.actual(j), d, Box::new(task));
                }
                _ => system.add_help_task(roles.actual(j), Box::new(task)),
            }
        }

        let mut endpoints = Vec::with_capacity(n);
        for j in 1..=n {
            endpoints.push(ProcessPorts {
                r1_w: (j == 1).then(|| r1_w.clone()),
                witness_w: (j >= 2).then(|| witness_w[j - 2].clone()),
                replies_w: fabric.reply_row(j),
                asker_w: fabric.asker_port(j),
            });
        }

        AuthenticatedRegister {
            env: env.clone(),
            roles,
            v0,
            shared,
            endpoints: Endpoints::new(endpoints),
            demand,
            log: HistoryLog::new(env.clock()),
        }
    }

    /// The process playing the writer role.
    #[must_use]
    pub fn writer_pid(&self) -> ProcessId {
        self.roles.writer()
    }

    /// The initial value `v0`.
    pub fn initial_value(&self) -> &V {
        &self.v0
    }

    /// The recorded operation history.
    #[must_use]
    pub fn history(&self) -> HistoryLog<AuthInv<V>, AuthResp<V>> {
        self.log.clone()
    }

    /// Read-only views of the shared registers.
    #[must_use]
    pub fn shared(&self) -> SharedPorts<V> {
        self.shared.clone()
    }

    fn take_ports(&self, role: usize) -> ProcessPorts<V> {
        self.endpoints.take(role)
    }

    /// The unique writer handle.
    ///
    /// # Panics
    ///
    /// Panics if taken twice or if the writer is declared Byzantine.
    #[must_use]
    pub fn writer(&self) -> AuthenticatedWriter<V> {
        let pid = self.roles.writer();
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports({pid}) instead");
        let ports = self.take_ports(1);
        AuthenticatedWriter {
            env: self.env.clone(),
            pid,
            r1_w: ports.r1_w.expect("writer ports"),
            seq: 0,
            log: self.log.clone(),
        }
    }

    /// The reader handle for any process other than the writer.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer, taken twice, or declared Byzantine.
    #[must_use]
    pub fn reader(&self, pid: ProcessId) -> AuthenticatedReader<V> {
        let role = self.roles.role_of(pid);
        assert!(role != 1, "{pid} is the writer, not a reader");
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine; take attack_ports({pid}) instead");
        let ports = self.take_ports(role);
        AuthenticatedReader {
            env: self.env.clone(),
            pid,
            v0: self.v0.clone(),
            ck_w: ports.asker_w.expect("reader ports"),
            reply_column: self.shared.reply_column(role),
            r1: self.shared.r1.clone(),
            demand: self.demand.clone(),
            log: self.log.clone(),
        }
    }

    /// The raw write ports of a declared-Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is correct or already taken.
    #[must_use]
    pub fn attack_ports(&self, pid: ProcessId) -> AttackPorts<V> {
        assert!(
            self.env.is_faulty(pid),
            "{pid} is correct; only declared-Byzantine processes get attack ports"
        );
        let ports = self.take_ports(self.roles.role_of(pid));
        AttackPorts {
            pid,
            r1: ports.r1_w,
            witness: ports.witness_w,
            replies: ports.replies_w,
            asker: ports.asker_w,
            shared: self.shared.clone(),
        }
    }
}

impl<V: Value> std::fmt::Debug for AuthenticatedRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthenticatedRegister")
            .field("n", &self.env.n())
            .field("f", &self.env.f())
            .field("v0", &self.v0)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Writer handle
// ---------------------------------------------------------------------------

/// The writer handle: `Write` only — every write is auto-"signed".
pub struct AuthenticatedWriter<V: Ord> {
    env: Env,
    pid: ProcessId,
    r1_w: WritePort<WriterRecord<V>>,
    /// The local counter `ℓ` (line 1).
    seq: u64,
    log: HistoryLog<AuthInv<V>, AuthResp<V>>,
}

impl<V: Value> AuthenticatedWriter<V> {
    /// `Write(v)` — Alg. 2 lines 1–3.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write(&mut self, v: V) -> Result<()> {
        self.env.check_running()?;
        let op = self.log.invoke(self.pid, AuthInv::Write(v.clone()));
        self.seq += 1; // line 1: ℓ <- ℓ + 1
        let seq = self.seq;
        self.env.run_as(self.pid, || {
            // line 2: R1 <- R1 ∪ {⟨ℓ, v⟩} (owner RMW; one step).
            self.r1_w.update(|rec| match rec {
                WriterRecord::Tuples(set) => {
                    set.insert((seq, v.clone()));
                }
                WriterRecord::Garbage(_) => {
                    // Unreachable for a correct writer; restore well-formedness.
                    let mut set = BTreeSet::new();
                    set.insert((seq, v.clone()));
                    *rec = WriterRecord::Tuples(set);
                }
            });
        });
        self.log.respond(op, self.pid, AuthResp::Done); // line 3
        Ok(())
    }
}

impl<V: Value> std::fmt::Debug for AuthenticatedWriter<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AuthenticatedWriter({}, ℓ = {})", self.pid, self.seq)
    }
}

// ---------------------------------------------------------------------------
// Reader handle
// ---------------------------------------------------------------------------

/// A reader handle: `Read` and `Verify`.
pub struct AuthenticatedReader<V: Ord> {
    env: Env,
    pid: ProcessId,
    v0: V,
    ck_w: WritePort<u64>,
    reply_column: Vec<ReadPort<Reply<V>>>,
    r1: ReadPort<WriterRecord<V>>,
    demand: Option<HelpDemand>,
    log: HistoryLog<AuthInv<V>, AuthResp<V>>,
}

impl<V: Value> AuthenticatedReader<V> {
    /// The reader's process id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `Read()` — Alg. 2 lines 4–9.
    ///
    /// Reads the freshest tuple of `R1` and *verifies* it before returning;
    /// on verification failure (Byzantine writer) returns `v0` (§7.1).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn read(&mut self) -> Result<V> {
        self.env.check_running()?;
        // The internal Verify(−) of line 7 runs quorum rounds: keep the
        // instance's help shard awake for the whole read.
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let op = self.log.invoke(self.pid, AuthInv::Read);
        let value = self.env.run_as(self.pid, || -> Result<V> {
            let r = self.r1.read(); // line 4: r <- R1
                                    // line 5: "if r is a set of tuples of the form ⟨ℓ, v⟩".
            if let Some((_, v)) = r.freshest() {
                // line 6 picked the max tuple; line 7: verified <- Verify(v).
                // This is the *procedure*, not a recorded operation
                // (cf. the "dual-use" footnote 7).
                let verified = verify_quorum(&self.env, &self.ck_w, &self.reply_column, v)?;
                if verified {
                    return Ok(v.clone()); // line 8
                }
            }
            Ok(self.v0.clone()) // line 9
        })?;
        self.log.respond(op, self.pid, AuthResp::ReadValue(value.clone()));
        Ok(value)
    }

    /// `Verify(v)` — Alg. 2 lines 10–23 (identical to Algorithm 1's).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn verify(&mut self, v: &V) -> Result<bool> {
        self.env.check_running()?;
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let op = self.log.invoke(self.pid, AuthInv::Verify(v.clone()));
        let outcome = self
            .env
            .run_as(self.pid, || verify_quorum(&self.env, &self.ck_w, &self.reply_column, v))?;
        self.log.respond(op, self.pid, AuthResp::VerifyResult(outcome));
        Ok(outcome)
    }

    /// Batched `Verify`: decides every value of `vs` in **one** shared §5.1
    /// round sequence instead of `vs.len()` of them (see
    /// [`crate::quorum::quorum_rounds_many`]). Outcomes are returned in
    /// input order; each is exactly what a standalone
    /// [`verify`](AuthenticatedReader::verify) spanning the batch would
    /// return.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn verify_many(&mut self, vs: &[V]) -> Result<Vec<bool>> {
        self.env.check_running()?;
        let _help = self.demand.as_ref().map(HelpDemand::begin);
        let ops: Vec<_> =
            vs.iter().map(|v| self.log.invoke(self.pid, AuthInv::Verify(v.clone()))).collect();
        let outcomes = self.env.run_as(self.pid, || {
            verify_quorum_many(&self.env, &self.ck_w, &self.reply_column, vs)
        })?;
        for (op, outcome) in ops.into_iter().zip(&outcomes) {
            self.log.respond(op, self.pid, AuthResp::VerifyResult(*outcome));
        }
        Ok(outcomes)
    }

    /// This reader's §5.1 engine handles (asker counter + reply column),
    /// for fusing verifies across register instances — see
    /// [`crate::quorum::verify_quorum_groups`]. The handles carry the
    /// reader's own capabilities only; holding the reader handle is what
    /// authorizes taking them.
    #[must_use]
    pub fn engine_parts(&self) -> EngineParts<V> {
        EngineParts {
            ck: self.ck_w.clone(),
            replies: self.reply_column.clone(),
            demand: self.demand.clone(),
        }
    }
}

impl<V: Value> std::fmt::Debug for AuthenticatedReader<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AuthenticatedReader({})", self.pid)
    }
}

// ---------------------------------------------------------------------------
// Help task (lines 24-38)
// ---------------------------------------------------------------------------

struct HelpTask2<V: Value> {
    env: Env,
    /// 1-based process index of the helper.
    j: usize,
    shared: SharedPorts<V>,
    /// `R_j` write port — `None` for the writer (`j = 1` has no witness reg).
    witness_w: Option<WritePort<WitnessSet<V>>>,
    replies_w: Vec<WritePort<Reply<V>>>,
    tracker: AskerTracker,
}

impl<V: Value> byzreg_runtime::HelpTask for HelpTask2<V> {
    fn tick(&mut self) {
        // Lines 26-27: sample C_k, compute askers.
        let (ck, askers) = self.tracker.poll(&self.shared.askers);
        if askers.is_empty() {
            return; // line 28
        }
        // Lines 29-30: r <- R1; r1 <- {v | ⟨−, v⟩ ∈ r}.
        let r1: BTreeSet<V> = self.shared.r1.read().values();

        let r_j: WitnessSet<V> = if let Some(witness_w) = &self.witness_w {
            // Lines 31-34 (j ≠ 1): read every reader's R_i, then witness any
            // value in r1 or with >= f+1 witnesses (counting r1 as one set,
            // cf. "1 <= i <= n" in line 33).
            let mut all_sets: Vec<WitnessSet<V>> = Vec::with_capacity(self.env.n());
            all_sets.push(r1.clone());
            for port in &self.shared.witness {
                all_sets.push(port.read()); // line 32
            }
            let mut candidates: BTreeSet<&V> = BTreeSet::new();
            for set in &all_sets {
                candidates.extend(set.iter());
            }
            let f = self.env.f();
            for v in candidates {
                let in_r1 = r1.contains(v);
                let count = all_sets.iter().filter(|s| s.contains(v)).count();
                if in_r1 || count >= f + 1 {
                    // line 34: R_j <- R_j ∪ {v}.
                    witness_w.update(|set| {
                        set.insert(v.clone());
                    });
                }
            }
            witness_w.read() // line 35: r_j <- R_j
        } else {
            // j = 1: the writer replies with the values of R1 itself
            // (footnote 9; Lemma 103 Case 2 relies on this).
            r1
        };

        // Lines 36-38: help each asker.
        self.tracker.serve(&self.replies_w, &ck, &askers, &r_j);
        debug_assert!(self.j >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{Scheduling, System};

    fn sys(n: usize, seed: u64) -> System {
        System::builder(n).scheduling(Scheduling::Chaotic(seed)).build()
    }

    #[test]
    fn writes_are_atomically_signed() {
        let system = sys(4, 11);
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        assert!(!r.verify(&5).unwrap());
        w.write(5).unwrap();
        assert!(r.verify(&5).unwrap(), "no separate Sign needed");
        assert_eq!(r.read().unwrap(), 5);
        system.shutdown();
    }

    #[test]
    fn v0_is_always_verified() {
        let system = sys(4, 12);
        let reg = AuthenticatedRegister::install(&system, 99u32);
        let mut r = reg.reader(ProcessId::new(3));
        assert!(r.verify(&99).unwrap());
        assert_eq!(r.read().unwrap(), 99);
        system.shutdown();
    }

    #[test]
    fn read_returns_freshest_write() {
        let system = sys(4, 13);
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        for v in [3u32, 9, 4] {
            w.write(v).unwrap();
        }
        assert_eq!(r.read().unwrap(), 4, "highest timestamp wins, not highest value");
        // All written values stay verifiable.
        assert!(r.verify(&3).unwrap());
        assert!(r.verify(&9).unwrap());
        system.shutdown();
    }

    #[test]
    fn garbage_r1_makes_reads_fall_back_to_v0() {
        // A Byzantine writer stores malformed content; correct readers must
        // return v0 (Alg. 2 lines 5/9).
        let system = System::builder(4).byzantine(ProcessId::new(1)).build();
        let reg = AuthenticatedRegister::install(&system, 7u32);
        let ports = reg.attack_ports(ProcessId::new(1));
        ports.r1.as_ref().unwrap().write(WriterRecord::Garbage(0xDEAD));
        let mut r = reg.reader(ProcessId::new(2));
        assert_eq!(r.read().unwrap(), 7);
        system.shutdown();
    }

    #[test]
    fn erased_r1_read_returns_v0_not_stale_value() {
        // Byzantine writer "writes" v by inserting a tuple, readers verify it;
        // then it erases R1 entirely. Reads fall back to v0; Verify(v)
        // keeps returning true (relay) because witnesses persist.
        let system = System::builder(4).byzantine(ProcessId::new(1)).build();
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(1));
        let mut tuples = BTreeSet::new();
        tuples.insert((1u64, 5u32));
        ports.r1.as_ref().unwrap().write(WriterRecord::Tuples(tuples));
        let mut r2 = reg.reader(ProcessId::new(2));
        assert_eq!(r2.read().unwrap(), 5);
        assert!(r2.verify(&5).unwrap());
        // Erase.
        ports.r1.as_ref().unwrap().write(WriterRecord::Tuples(BTreeSet::new()));
        assert_eq!(r2.read().unwrap(), 0, "erased R1 -> v0");
        // But the "signature" cannot be denied (Obs. 18).
        assert!(r2.verify(&5).unwrap(), "you can lie but not deny");
        let mut r3 = reg.reader(ProcessId::new(3));
        assert!(r3.verify(&5).unwrap());
        system.shutdown();
    }

    #[test]
    fn lockstep_terminates() {
        let system = System::builder(4).scheduling(Scheduling::Lockstep(99)).build();
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(4));
        w.write(8).unwrap();
        assert_eq!(r.read().unwrap(), 8);
        assert!(r.verify(&8).unwrap());
        assert!(!r.verify(&1).unwrap());
        system.shutdown();
    }

    #[test]
    fn history_records_reads_not_inner_verifies() {
        let system = sys(4, 14);
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(1).unwrap();
        let _ = r.read().unwrap();
        system.shutdown();
        let ops = reg.history().complete_ops();
        // Write + Read only: the Read's inner Verify is a procedure call,
        // not an operation (footnote 7).
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1].invocation, AuthInv::Read));
    }

    #[test]
    fn works_at_n_7() {
        let system = sys(7, 15);
        let reg = AuthenticatedRegister::install(&system, 0u32);
        let mut w = reg.writer();
        w.write(3).unwrap();
        for k in 2..=7 {
            let mut r = reg.reader(ProcessId::new(k));
            assert_eq!(r.read().unwrap(), 3);
            assert!(r.verify(&3).unwrap());
        }
        system.shutdown();
    }

    #[test]
    fn writer_record_helpers() {
        let mut set = BTreeSet::new();
        set.insert((1u64, 5u32));
        set.insert((2u64, 3u32));
        let rec = WriterRecord::Tuples(set);
        assert_eq!(rec.freshest(), Some(&(2, 3)));
        assert_eq!(rec.values().len(), 2);
        let garbage: WriterRecord<u32> = WriterRecord::Garbage(1);
        assert_eq!(garbage.freshest(), None);
        assert!(garbage.values().is_empty());
    }
}
