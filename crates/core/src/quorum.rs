//! The shared §5.1 quorum machinery of Algorithms 1–3.
//!
//! All three register families are built from the same skeleton:
//!
//! * a matrix of SWSR *reply* registers `R_{j,k}` (helper `p_j` → asker
//!   `p_k`) and per-reader *asker* round counters `C_k` — installed by
//!   [`QuorumFabric`];
//! * the `set0`/`set1` voting loop a reader runs over its reply column —
//!   the generic engine [`quorum_rounds`], instantiated as
//!   [`verify_quorum`] by the `Verify(−)` of Algorithms 1–2 and by the
//!   sticky `Read` of Algorithm 3;
//! * the helper-side asker/`prev_ck` handshake — [`AskerTracker`].
//!
//! §5.1 explains the voting mechanism: a reader proceeds in rounds; in each
//! round it bumps its asker register `C_k` and waits for *one* fresh reply
//! from any process outside `set0 ∪ set1`. An affirmative reply moves the
//! helper into `set1` **and resets `set0`**, giving dissenters the
//! opportunity to re-check; a dissent adds the helper to `set0`. `set1` is
//! non-decreasing, which is what makes the relay property stick.

use std::collections::BTreeSet;

use byzreg_runtime::{
    Env, HelpDemand, HelpDemandGuard, ProcessId, ReadPort, RegisterFactory, Result, Roles, Value,
    WritePort,
};

use parking_lot::Mutex;

/// A reply payload tagged with the asker round it answers (`⟨−, c_j⟩`).
pub type Tagged<W> = (W, u64);

/// A helper's reply register content for Algorithms 1–2: the set of values
/// it currently witnesses, tagged with the asker round (`⟨r_j, c_j⟩`).
pub type Reply<V> = Tagged<BTreeSet<V>>;

/// How the voting engine classifies one reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ballot {
    /// The reply supports the asker's hypothesis: the helper joins `set1`
    /// and `set0` is reset (Alg. 1 lines 18–20).
    Affirm,
    /// The reply opposes it: the helper joins `set0` (lines 21–22).
    Dissent,
}

/// The §5.1 round engine shared by every quorum decision in this crate.
///
/// Runs rounds of: bump `C_k`, wait for one *fresh* reply from a process
/// outside `set0 ∪ set1`, classify it with `tally`, then let `decide`
/// inspect the updated tallies `(n1, n0)` — the sizes of `set1` and `set0`.
/// `Ballot::Affirm` resets `set0`, so dissenters are re-asked after every
/// affirmation; `set1` only ever grows.
///
/// `replies` is the asker's reply column `R_{j,k}` over all processes `p_j`.
///
/// [`quorum_rounds_many`] is this loop's batched sibling; it is kept as a
/// separate copy so this single-item path stays annotated line-by-line
/// against Algorithm 1 and pays no extra reply clone. **Any change to the
/// round protocol here must be mirrored there** (the
/// `quorum_rounds_many_matches_single_engine_outcomes` test compares the
/// two).
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn quorum_rounds<W: Value, T>(
    env: &Env,
    ck: &WritePort<u64>,
    replies: &[ReadPort<Tagged<W>>],
    mut tally: impl FnMut(usize, W) -> Ballot,
    mut decide: impl FnMut(usize, usize) -> Option<T>,
) -> Result<T> {
    let n = env.n();
    debug_assert_eq!(replies.len(), n);
    let mut set1 = vec![false; n];
    let mut set0 = vec![false; n];
    let mut n1 = 0usize;
    let mut n0 = 0usize;

    // Alg. 1 line 12: while true (each iteration is a "round").
    loop {
        env.check_running()?;
        // Line 13: Ck <- Ck + 1 (owner increment; see register::update docs).
        let my_ck = ck.update(|c| {
            *c += 1;
            *c
        });
        // Lines 14-17: repeat reading R_{j,k} of every p_j not in
        // set1 ∪ set0 until one of them carries a timestamp >= Ck.
        let (j, r_j) = 'fresh: loop {
            env.check_running()?;
            for (j, port) in replies.iter().enumerate() {
                if set1[j] || set0[j] {
                    continue;
                }
                let (r_j, c_j) = port.read();
                if c_j >= my_ck {
                    break 'fresh (j, r_j);
                }
            }
        };
        match tally(j, r_j) {
            Ballot::Affirm => {
                // Lines 18-20: set1 <- set1 ∪ {pj}; set0 <- ∅.
                set1[j] = true;
                n1 += 1;
                set0 = vec![false; n];
                n0 = 0;
            }
            Ballot::Dissent => {
                // Lines 21-22: set0 <- set0 ∪ {pj}.
                set0[j] = true;
                n0 += 1;
            }
        }
        // Lines 23-24 (and Alg. 3 lines 20-22): the decision rule.
        if let Some(outcome) = decide(n1, n0) {
            return Ok(outcome);
        }
    }
}

/// The batched §5.1 round engine: runs `items` independent voting loops in
/// one round sequence, sharing the asker counter `C_k` and the reply reads
/// across the whole batch.
///
/// Each item keeps its own `set1`/`set0`; a reply fresh for the current
/// round is tallied against **every** still-undecided item whose sets do
/// not yet classify the helper. Each item therefore observes a subsequence
/// of the shared rounds that is, on its own, a valid execution of
/// [`quorum_rounds`]: freshness only requires a reply to answer a `C_k`
/// bump issued after the item's previous transition, and extra bumps in
/// between are indistinguishable from scheduling delay. The per-item
/// safety and termination arguments of §5.1 carry over unchanged, while a
/// batch of `m` values costs one round sequence instead of `m`.
///
/// `tally` receives `(item, helper, reply)`, `decide` receives
/// `(item, n1, n0)`; the returned vector is indexed by item.
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn quorum_rounds_many<W: Value, T>(
    env: &Env,
    ck: &WritePort<u64>,
    replies: &[ReadPort<Tagged<W>>],
    items: usize,
    mut tally: impl FnMut(usize, usize, &W) -> Ballot,
    mut decide: impl FnMut(usize, usize, usize) -> Option<T>,
) -> Result<Vec<T>> {
    let n = env.n();
    debug_assert_eq!(replies.len(), n);
    let mut set1 = vec![vec![false; n]; items];
    let mut set0 = vec![vec![false; n]; items];
    let mut n1 = vec![0usize; items];
    let mut n0 = vec![0usize; items];
    let mut outcome: Vec<Option<T>> = (0..items).map(|_| None).collect();
    let mut pending = items;

    while pending > 0 {
        env.check_running()?;
        let my_ck = ck.update(|c| {
            *c += 1;
            *c
        });
        // A helper is relevant while some undecided item has not yet
        // classified it. Computed once per round — the sets and outcomes
        // only change after a reply is processed — so the wait below costs
        // O(n) per spin instead of O(n·items).
        let relevant: Vec<bool> = (0..n)
            .map(|j| (0..items).any(|i| outcome[i].is_none() && !set1[i][j] && !set0[i][j]))
            .collect();
        // Wait for one fresh reply from a relevant helper (the batched
        // form of lines 14-17; an undecided item always has one, cf.
        // `quorum_rounds`).
        let (j, r_j) = 'fresh: loop {
            env.check_running()?;
            for (j, port) in replies.iter().enumerate() {
                if !relevant[j] {
                    continue;
                }
                let (r_j, c_j) = port.read();
                if c_j >= my_ck {
                    break 'fresh (j, r_j);
                }
            }
        };
        // One physical reply feeds every item that would still accept it.
        for i in 0..items {
            if outcome[i].is_some() || set1[i][j] || set0[i][j] {
                continue;
            }
            match tally(i, j, &r_j) {
                Ballot::Affirm => {
                    set1[i][j] = true;
                    n1[i] += 1;
                    set0[i] = vec![false; n];
                    n0[i] = 0;
                }
                Ballot::Dissent => {
                    set0[i][j] = true;
                    n0[i] += 1;
                }
            }
            if let Some(t) = decide(i, n1[i], n0[i]) {
                outcome[i] = Some(t);
                pending -= 1;
            }
        }
    }
    Ok(outcome.into_iter().map(|t| t.expect("all items decided")).collect())
}

/// Runs the `Verify(v)` procedure of Algorithms 1 and 2 (lines 11–24 /
/// 10–23) for the reader owning `ck`: `|set1| ≥ n − f` decides `true`,
/// `|set0| > f` decides `false`.
///
/// `replies` is the reader's column of SWSR registers `R_{j,k}`, one per
/// process `p_j` (including the writer and the reader itself).
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn verify_quorum<V: Value>(
    env: &Env,
    ck: &WritePort<u64>,
    replies: &[ReadPort<Reply<V>>],
    v: &V,
) -> Result<bool> {
    let n = env.n();
    let f = env.f();
    quorum_rounds(
        env,
        ck,
        replies,
        |_, r_j| if r_j.contains(v) { Ballot::Affirm } else { Ballot::Dissent },
        |n1, n0| {
            if n1 >= n - f {
                Some(true)
            } else if n0 > f {
                Some(false)
            } else {
                None
            }
        },
    )
}

/// Batched `Verify`: decides every value of `vs` in one shared round
/// sequence (see [`quorum_rounds_many`]), with the same per-value decision
/// rule as [`verify_quorum`]. Returns one outcome per value, in order.
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn verify_quorum_many<V: Value>(
    env: &Env,
    ck: &WritePort<u64>,
    replies: &[ReadPort<Reply<V>>],
    vs: &[V],
) -> Result<Vec<bool>> {
    let n = env.n();
    let f = env.f();
    quorum_rounds_many(
        env,
        ck,
        replies,
        vs.len(),
        |i, _, r_j| if r_j.contains(&vs[i]) { Ballot::Affirm } else { Ballot::Dissent },
        |_, n1, n0| {
            if n1 >= n - f {
                Some(true)
            } else if n0 > f {
                Some(false)
            } else {
                None
            }
        },
    )
}

/// The reader-side §5.1 engine handles of one register instance: cloned
/// ports of the reader's asker counter `C_k` and reply column `R_{j,k}`.
///
/// Obtained from a reader handle (which *is* the reader's capability — the
/// asker counter is the reader's own write port), these let a caller fuse
/// `Verify` batches **across register instances** through
/// [`verify_quorum_groups`], sharing one logical asker counter per reader.
pub struct EngineParts<V: Value> {
    /// The reader's asker round counter `C_k` of this instance.
    pub ck: WritePort<u64>,
    /// The reader's reply column `R_{j,k}` of this instance, one port per
    /// process `p_j`.
    pub replies: Vec<ReadPort<Reply<V>>>,
    /// The instance's help-shard demand handle, when the instance is hosted
    /// on a demand-driven shard (keyed-store installs): a fused run begins
    /// demand on every touched instance so the right shards' engines wake
    /// and keep ticking while the batch has pending rounds. `None` for
    /// instances on the unsharded always-on engines.
    pub demand: Option<HelpDemand>,
}

/// One register instance's slice of a cross-instance batched `Verify`.
pub struct VerifyGroup<V: Value> {
    /// The instance's reader-side engine handles.
    pub parts: EngineParts<V>,
    /// The values to check against this instance.
    pub vs: Vec<V>,
}

/// Cross-register batched `Verify`: decides every group's values with **one
/// logical asker counter per reader** driving all groups' round sequences
/// in lockstep, instead of one independent round sequence per register.
///
/// All groups must belong to the *same* reader `p_k` of the same system
/// `env`. The engine keeps a single monotone cursor, starting above every
/// group's current `C_k`; each shared round writes the cursor into every
/// still-undecided group's counter (one logical bump, fanned out) and then
/// harvests **one** fresh reply per pending group before the cursor
/// advances. Per group, the observed execution is exactly a
/// [`quorum_rounds_many`] run whose counter values skip — helpers only
/// ever require `C_k` to increase, and a reply is fresh iff it answers the
/// current cursor — so the §5.1 safety and termination arguments apply to
/// each group unchanged. The win is wall-clock: a batch touching `m`
/// registers waits `max` of the groups' round counts, not their sum, and
/// every register's helpers work the same engine rounds concurrently.
///
/// Decision rule per value: `|set1| ≥ n − f` ⇒ `true`, `|set0| > f` ⇒
/// `false`, as in [`verify_quorum`]. Returns one outcome vector per group,
/// in group order.
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn verify_quorum_groups<V: Value>(
    env: &Env,
    groups: &[VerifyGroup<V>],
) -> Result<Vec<Vec<bool>>> {
    let n = env.n();
    let f = env.f();

    // Signal "this batch has pending rounds" to every touched instance's
    // help shard for the whole run: demand-driven shard engines tick the
    // touched keys' help tasks exactly while these guards are held.
    let _demand: Vec<HelpDemandGuard> =
        groups.iter().filter_map(|g| g.parts.demand.as_ref().map(HelpDemand::begin)).collect();

    struct GroupState {
        set1: Vec<Vec<bool>>,
        set0: Vec<Vec<bool>>,
        n1: Vec<usize>,
        n0: Vec<usize>,
        outcome: Vec<Option<bool>>,
        pending: usize,
    }

    let mut states: Vec<GroupState> = groups
        .iter()
        .map(|g| {
            let items = g.vs.len();
            GroupState {
                set1: vec![vec![false; n]; items],
                set0: vec![vec![false; n]; items],
                n1: vec![0; items],
                n0: vec![0; items],
                outcome: (0..items).map(|_| None).collect(),
                pending: items,
            }
        })
        .collect();
    let mut pending_total: usize = states.iter().map(|s| s.pending).sum();

    // The shared logical counter: one cursor per reader, strictly above
    // every group's current C_k so each fan-out write is a fresh bump.
    let mut cursor = groups.iter().map(|g| g.parts.ck.read()).max().unwrap_or(0);

    while pending_total > 0 {
        env.check_running()?;
        cursor += 1;
        for (g, s) in groups.iter().zip(&states) {
            if s.pending > 0 {
                g.parts.ck.update(|c| *c = cursor);
            }
        }
        // Harvest one fresh reply per pending group before the next shared
        // bump (the batched form of Alg. 1 lines 14–17, fanned over
        // groups: each group's round only completes on a reply answering
        // the current cursor).
        //
        // Helper relevance — some undecided item has not classified the
        // helper (cf. `quorum_rounds_many`) — is hoisted out of the spin:
        // a group's sets only change when its round's reply is processed,
        // after which the group leaves the spin, so one computation per
        // round keeps each spin pass O(n) per group, not O(n·items).
        let relevant: Vec<Vec<bool>> = groups
            .iter()
            .zip(&states)
            .map(|(g, s)| {
                (0..n)
                    .map(|j| {
                        (0..g.vs.len())
                            .any(|i| s.outcome[i].is_none() && !s.set1[i][j] && !s.set0[i][j])
                    })
                    .collect()
            })
            .collect();
        let mut need: Vec<bool> = states.iter().map(|s| s.pending > 0).collect();
        let mut remaining = need.iter().filter(|x| **x).count();
        while remaining > 0 {
            env.check_running()?;
            for (gi, g) in groups.iter().enumerate() {
                if !need[gi] {
                    continue;
                }
                let s = &mut states[gi];
                let fresh = (0..n).find_map(|j| {
                    if !relevant[gi][j] {
                        return None;
                    }
                    let (r_j, c_j) = g.parts.replies[j].read();
                    (c_j >= cursor).then_some((j, r_j))
                });
                let Some((j, r_j)) = fresh else { continue };
                // One physical reply feeds every item that would accept it.
                for i in 0..g.vs.len() {
                    if s.outcome[i].is_some() || s.set1[i][j] || s.set0[i][j] {
                        continue;
                    }
                    if r_j.contains(&g.vs[i]) {
                        s.set1[i][j] = true;
                        s.n1[i] += 1;
                        s.set0[i] = vec![false; n];
                        s.n0[i] = 0;
                    } else {
                        s.set0[i][j] = true;
                        s.n0[i] += 1;
                    }
                    let decided = if s.n1[i] >= n - f {
                        Some(true)
                    } else if s.n0[i] > f {
                        Some(false)
                    } else {
                        None
                    };
                    if decided.is_some() {
                        s.outcome[i] = decided;
                        s.pending -= 1;
                        pending_total -= 1;
                    }
                }
                need[gi] = false;
                remaining -= 1;
            }
        }
    }

    Ok(states
        .into_iter()
        .map(|s| s.outcome.into_iter().map(|o| o.expect("all items decided")).collect())
        .collect())
}

/// Tracks the asker/`prev_ck` handshake of the `Help()` procedures
/// (Alg. 1 lines 25–28/36, Alg. 2 lines 24–27/38, Alg. 3 lines 23/31–32/40).
#[derive(Debug)]
pub struct AskerTracker {
    prev_ck: Vec<u64>,
}

impl AskerTracker {
    /// Creates a tracker for `readers` readers, with every `prev_ck = 0`.
    #[must_use]
    pub fn new(readers: usize) -> Self {
        AskerTracker { prev_ck: vec![0; readers] }
    }

    /// Reads every `C_k` and returns `(ck, askers)`: the sampled counters and
    /// the (0-based) reader indices whose counter increased since the last
    /// acknowledged round.
    pub fn poll(&self, c: &[ReadPort<u64>]) -> (Vec<u64>, Vec<usize>) {
        let ck: Vec<u64> = c.iter().map(ReadPort::read).collect();
        let askers =
            ck.iter().enumerate().filter(|(k, v)| **v > self.prev_ck[*k]).map(|(k, _)| k).collect();
        (ck, askers)
    }

    /// Acknowledges that reader `k` was helped at round `ck` (line 36/38/40:
    /// `prev_ck <- ck`).
    pub fn acknowledge(&mut self, k: usize, ck: u64) {
        self.prev_ck[k] = ck;
    }

    /// Answers every pending asker with `reply` and acknowledges the served
    /// rounds (the lines 34–36 / 36–38 / 38–40 epilogue of every `Help()`).
    pub fn serve<W: Value>(
        &mut self,
        replies_w: &[WritePort<Tagged<W>>],
        ck: &[u64],
        askers: &[usize],
        reply: &W,
    ) {
        for &k in askers {
            replies_w[k].write((reply.clone(), ck[k]));
            self.acknowledge(k, ck[k]);
        }
    }
}

/// The reply-and-asker register fabric every register family installs: the
/// SWSR reply matrix `R_{j,k}` (initially `⟨init, 0⟩`) and the reader round
/// counters `C_k` (initially 0), with owners assigned through `roles`.
pub struct QuorumFabric<W: Value> {
    reply_w: Vec<Vec<WritePort<Tagged<W>>>>,
    reply_r: Vec<Vec<ReadPort<Tagged<W>>>>,
    asker_w: Vec<WritePort<u64>>,
    asker_r: Vec<ReadPort<u64>>,
}

impl<W: Value> QuorumFabric<W> {
    /// Installs the fabric for the `roles.n()` processes of `env`, sourcing
    /// base registers from `factory`.
    pub fn install<F: RegisterFactory>(env: &Env, factory: &F, roles: &Roles, init: W) -> Self {
        let n = roles.n();
        let mut reply_w = Vec::with_capacity(n);
        let mut reply_r = Vec::with_capacity(n);
        for j in 1..=n {
            let mut row_w = Vec::with_capacity(n - 1);
            let mut row_r = Vec::with_capacity(n - 1);
            for k in 2..=n {
                let (w, r) = factory.create(
                    env,
                    roles.actual(j),
                    format!("R[{j},{k}]"),
                    (init.clone(), 0u64),
                );
                row_w.push(w);
                row_r.push(r);
            }
            reply_w.push(row_w);
            reply_r.push(row_r);
        }
        let mut asker_w = Vec::with_capacity(n - 1);
        let mut asker_r = Vec::with_capacity(n - 1);
        for k in 2..=n {
            let (w, r) = factory.create(env, roles.actual(k), format!("C[{k}]"), 0u64);
            asker_w.push(w);
            asker_r.push(r);
        }
        QuorumFabric { reply_w, reply_r, asker_w, asker_r }
    }

    /// The full reply matrix, read side (`[j][k]`, both 0-based).
    #[must_use]
    pub fn reply_matrix(&self) -> Vec<Vec<ReadPort<Tagged<W>>>> {
        self.reply_r.clone()
    }

    /// The asker counters, read side (index `role - 2`).
    #[must_use]
    pub fn asker_ports(&self) -> Vec<ReadPort<u64>> {
        self.asker_r.clone()
    }

    /// Helper `role`'s row of reply write ports (`R_{role,k}` for all `k`).
    #[must_use]
    pub fn reply_row(&self, role: usize) -> Vec<WritePort<Tagged<W>>> {
        self.reply_w[role - 1].clone()
    }

    /// Reader `role`'s asker write port (`C_role`); `None` for the writer.
    #[must_use]
    pub fn asker_port(&self, role: usize) -> Option<WritePort<u64>> {
        (role >= 2).then(|| self.asker_w[role - 2].clone())
    }
}

/// One-shot per-process port bundles with the "taken at most once" rule all
/// register families enforce on their writer/reader/attack handles.
pub(crate) struct Endpoints<P>(Mutex<Vec<Option<P>>>);

impl<P> Endpoints<P> {
    pub(crate) fn new(ports: Vec<P>) -> Self {
        Endpoints(Mutex::new(ports.into_iter().map(Some).collect()))
    }

    /// Takes role `role`'s bundle.
    ///
    /// # Panics
    ///
    /// Panics if the bundle was taken before.
    pub(crate) fn take(&self, role: usize) -> P {
        self.0.lock()[role - 1]
            .take()
            .unwrap_or_else(|| panic!("ports of role {role} already taken"))
    }

    /// Takes the bundle of the process with the given pid-shaped message.
    ///
    /// # Panics
    ///
    /// Panics if the bundle was taken before.
    pub(crate) fn take_pid(&self, pid: ProcessId) -> P {
        self.0.lock()[pid.zero_based()]
            .take()
            .unwrap_or_else(|| panic!("ports of {pid} already taken"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{register, LocalFactory, ProcessId, System};

    #[test]
    fn asker_tracker_detects_increases_only() {
        let sys = System::builder(4).build();
        let env = sys.env();
        let mut ports = Vec::new();
        let mut writers = Vec::new();
        for k in 2..=4 {
            let (w, r) = register::swmr(env.gate(), ProcessId::new(k), format!("C{k}"), 0u64);
            writers.push(w);
            ports.push(r);
        }
        let mut t = AskerTracker::new(3);
        let (ck, askers) = t.poll(&ports);
        assert!(askers.is_empty());
        assert_eq!(ck, vec![0, 0, 0]);

        writers[1].write(3);
        let (ck, askers) = t.poll(&ports);
        assert_eq!(askers, vec![1]);
        t.acknowledge(1, ck[1]);
        let (_, askers) = t.poll(&ports);
        assert!(askers.is_empty(), "acknowledged rounds are not re-reported");

        writers[1].write(4);
        writers[0].write(1);
        let (_, askers) = t.poll(&ports);
        assert_eq!(askers, vec![0, 1]);
    }

    #[test]
    fn verify_quorum_true_with_full_witness_sets() {
        // n = 4, f = 1: all four reply registers already carry the value with
        // a huge timestamp, so the loop should return true without helpers.
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let mut set = BTreeSet::new();
            set.insert(7u32);
            let (_w, r) =
                register::swmr(env.gate(), ProcessId::new(j), format!("R{j}2"), (set, u64::MAX));
            cols.push(r);
        }
        let got = verify_quorum(&env, &ck_w, &cols, &7).unwrap();
        assert!(got);
    }

    #[test]
    fn verify_quorum_false_when_enough_fresh_noes() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (BTreeSet::<u32>::new(), u64::MAX),
            );
            cols.push(r);
        }
        let got = verify_quorum(&env, &ck_w, &cols, &7).unwrap();
        assert!(!got, "f + 1 = 2 empty replies suffice for false");
    }

    #[test]
    fn verify_quorum_aborts_on_shutdown() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            // Stale timestamps: nobody ever replies.
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (BTreeSet::<u32>::new(), 0u64),
            );
            cols.push(r);
        }
        sys.shutdown();
        let got = verify_quorum(&env, &ck_w, &cols, &7);
        assert!(got.is_err());
    }

    #[test]
    fn quorum_rounds_supports_non_boolean_decisions() {
        // A sticky-style decision: count per-value affirmations.
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (Some(9u32), u64::MAX),
            );
            cols.push(r);
        }
        let n = env.n();
        let f = env.f();
        let votes = std::cell::RefCell::new(std::collections::BTreeMap::new());
        let got: Option<u32> = quorum_rounds(
            &env,
            &ck_w,
            &cols,
            |_, slot: Option<u32>| match slot {
                Some(v) => {
                    *votes.borrow_mut().entry(v).or_insert(0usize) += 1;
                    Ballot::Affirm
                }
                None => Ballot::Dissent,
            },
            |_n1, n0| {
                if let Some((v, _)) = votes.borrow().iter().find(|(_, c)| **c >= n - f) {
                    return Some(Some(*v));
                }
                (n0 > f).then_some(None)
            },
        )
        .unwrap();
        assert_eq!(got, Some(9));
    }

    #[test]
    fn verify_quorum_many_decides_each_value_independently() {
        // Replies witness {3, 7} everywhere: 3 and 7 decide true, 9 decides
        // false, all in one shared round sequence.
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, ck_r) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let mut set = BTreeSet::new();
            set.insert(3u32);
            set.insert(7u32);
            let (_w, r) =
                register::swmr(env.gate(), ProcessId::new(j), format!("R{j}2"), (set, u64::MAX));
            cols.push(r);
        }
        let got = verify_quorum_many(&env, &ck_w, &cols, &[3, 9, 7]).unwrap();
        assert_eq!(got, vec![true, false, true]);
        assert!(ck_r.read() >= 1, "the batch bumped the shared asker counter");
    }

    #[test]
    fn verify_quorum_many_on_empty_batch_takes_no_steps() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, ck_r) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let cols: Vec<ReadPort<Reply<u32>>> = (1..=4)
            .map(|j| {
                register::swmr(
                    env.gate(),
                    ProcessId::new(j),
                    format!("R{j}2"),
                    (BTreeSet::new(), 0u64),
                )
                .1
            })
            .collect();
        let got = verify_quorum_many::<u32>(&env, &ck_w, &cols, &[]).unwrap();
        assert!(got.is_empty());
        assert_eq!(ck_r.read(), 0, "no rounds were run");
    }

    #[test]
    fn quorum_rounds_many_matches_single_engine_outcomes() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let mut cols = Vec::new();
        for j in 1..=4 {
            let mut set = BTreeSet::new();
            set.insert(5u32);
            let (_w, r) =
                register::swmr(env.gate(), ProcessId::new(j), format!("R{j}2"), (set, u64::MAX));
            cols.push(r);
        }
        let (ck_a, _) = register::swmr(env.gate(), ProcessId::new(2), "Ca", 0u64);
        let batched = verify_quorum_many(&env, &ck_a, &cols, &[5u32, 6]).unwrap();
        let (ck_b, _) = register::swmr(env.gate(), ProcessId::new(2), "Cb", 0u64);
        let singles = vec![
            verify_quorum(&env, &ck_b, &cols, &5u32).unwrap(),
            verify_quorum(&env, &ck_b, &cols, &6u32).unwrap(),
        ];
        assert_eq!(batched, singles);
    }

    #[test]
    fn quorum_rounds_many_aborts_on_shutdown() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            // Stale timestamps: nobody ever replies.
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (BTreeSet::<u32>::new(), 0u64),
            );
            cols.push(r);
        }
        sys.shutdown();
        assert!(verify_quorum_many(&env, &ck_w, &cols, &[7]).is_err());
    }

    /// A ready-to-answer reply column (every helper witnesses `witnessed`
    /// at a huge timestamp) plus its asker counter, as one fused group.
    fn ready_group(
        sys: &System,
        tag: &str,
        witnessed: &[u32],
        vs: &[u32],
    ) -> (VerifyGroup<u32>, ReadPort<u64>) {
        let env = sys.env();
        let (ck_w, ck_r) = register::swmr(env.gate(), ProcessId::new(2), format!("C{tag}"), 0u64);
        let replies = (1..=env.n())
            .map(|j| {
                let set: BTreeSet<u32> = witnessed.iter().copied().collect();
                register::swmr(env.gate(), ProcessId::new(j), format!("R{j}{tag}"), (set, u64::MAX))
                    .1
            })
            .collect();
        let parts = EngineParts { ck: ck_w, replies, demand: None };
        (VerifyGroup { parts, vs: vs.to_vec() }, ck_r)
    }

    #[test]
    fn verify_quorum_groups_matches_per_register_outcomes() {
        let sys = System::builder(4).build();
        let (g1, _) = ready_group(&sys, "a", &[3, 7], &[3, 9, 7]);
        let (g2, _) = ready_group(&sys, "b", &[5], &[5, 3]);
        let got = verify_quorum_groups(sys.env(), &[g1, g2]).unwrap();
        assert_eq!(got, vec![vec![true, false, true], vec![true, false]]);
    }

    #[test]
    fn verify_quorum_groups_shares_one_logical_counter() {
        // The fused engine drives every group's C_k to the *same* cursor
        // value — one logical asker counter per reader, fanned out — even
        // when the groups start from different counter values.
        let sys = System::builder(4).build();
        let (g1, ck1) = ready_group(&sys, "a", &[1], &[1]);
        let (g2, ck2) = ready_group(&sys, "b", &[2], &[2, 9]);
        g1.parts.ck.write(17); // a prior per-register history
        let _ = verify_quorum_groups(sys.env(), &[g1, g2]).unwrap();
        assert_eq!(ck1.read(), ck2.read(), "both registers end at the shared cursor");
        assert!(ck1.read() > 17, "the cursor starts above every group's counter");
    }

    #[test]
    fn verify_quorum_groups_handles_empty_input() {
        let sys = System::builder(4).build();
        assert!(verify_quorum_groups::<u32>(sys.env(), &[]).unwrap().is_empty());
        let (g, ck) = ready_group(&sys, "a", &[1], &[]);
        let got = verify_quorum_groups(sys.env(), &[g]).unwrap();
        assert_eq!(got, vec![Vec::<bool>::new()]);
        assert_eq!(ck.read(), 0, "an all-empty batch runs no rounds");
    }

    #[test]
    fn verify_quorum_groups_aborts_on_shutdown() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C", 0u64);
        let replies = (1..=4)
            .map(|j| {
                // Stale timestamps: nobody ever replies.
                register::swmr(
                    env.gate(),
                    ProcessId::new(j),
                    format!("R{j}"),
                    (BTreeSet::<u32>::new(), 0u64),
                )
                .1
            })
            .collect();
        sys.shutdown();
        let groups =
            [VerifyGroup { parts: EngineParts { ck: ck_w, replies, demand: None }, vs: vec![7] }];
        assert!(verify_quorum_groups(&env, &groups).is_err());
    }

    #[test]
    fn fabric_wires_owners_and_names() {
        let sys = System::builder(4).build();
        let roles = Roles::identity(4);
        let fabric =
            QuorumFabric::install(sys.env(), &LocalFactory, &roles, BTreeSet::<u32>::new());
        let matrix = fabric.reply_matrix();
        assert_eq!(matrix.len(), 4);
        assert_eq!(matrix[0].len(), 3);
        assert_eq!(matrix[2][0].owner(), ProcessId::new(3));
        assert_eq!(matrix[2][0].name(), "R[3,2]");
        assert_eq!(fabric.asker_ports().len(), 3);
        assert!(fabric.asker_port(1).is_none(), "the writer has no C_k");
        let c3 = fabric.asker_port(3).unwrap();
        assert_eq!(c3.owner(), ProcessId::new(3));
        // Reply rows answer through the owning helper.
        let row = fabric.reply_row(2);
        assert_eq!(row.len(), 3);
        row[1].write((BTreeSet::new(), 5));
        assert_eq!(matrix[1][1].read().1, 5);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn endpoints_enforce_single_take() {
        let eps = Endpoints::new(vec![1, 2, 3]);
        let _ = eps.take(2);
        let _ = eps.take(2);
    }
}
