//! The `set0`/`set1` quorum-voting loop shared by the `Verify(−)` procedures
//! of Algorithm 1 (verifiable register) and Algorithm 2 (authenticated
//! register).
//!
//! §5.1 explains the mechanism: a reader proceeds in rounds; in each round it
//! bumps its asker register `C_k` and waits for *one* fresh reply from any
//! process outside `set0 ∪ set1`. A "yes" reply (the value is in the helper's
//! witness set) moves the helper into `set1` **and resets `set0`**, giving
//! "no"-voters the opportunity to re-check; a "no" reply adds the helper to
//! `set0`. `|set1| ≥ n − f` decides `true`; `|set0| > f` decides `false`.
//! `set1` is non-decreasing, which is what makes the relay property stick.

use std::collections::BTreeSet;

use byzreg_runtime::{Env, ReadPort, Result, Value, WritePort};

/// A helper's reply register content: the set of values it currently
/// witnesses, tagged with the asker round it answers (`⟨r_j, c_j⟩`).
pub type Reply<V> = (BTreeSet<V>, u64);

/// Runs the `Verify(v)` procedure of Algorithms 1 and 2 (lines 11–24 /
/// 10–23) for the reader owning `ck`.
///
/// `replies` is the reader's column of SWSR registers `R_{j,k}`, one per
/// process `p_j` (including the writer and the reader itself).
///
/// # Errors
///
/// Returns [`byzreg_runtime::Error::Shutdown`] if the system shuts down
/// mid-operation.
pub fn verify_quorum<V: Value>(
    env: &Env,
    ck: &WritePort<u64>,
    replies: &[ReadPort<Reply<V>>],
    v: &V,
) -> Result<bool> {
    let n = env.n();
    let f = env.f();
    debug_assert_eq!(replies.len(), n);
    let mut set1 = vec![false; n];
    let mut set0 = vec![false; n];
    let mut n1 = 0usize;
    let mut n0 = 0usize;

    // Alg. 1 line 12: while true (each iteration is a "round").
    loop {
        env.check_running()?;
        // Line 13: Ck <- Ck + 1 (owner increment; see register::update docs).
        let my_ck = ck.update(|c| {
            *c += 1;
            *c
        });
        // Lines 14-17: repeat reading R_{j,k} of every p_j not in
        // set1 ∪ set0 until one of them carries a timestamp >= Ck.
        let (j, r_j) = 'fresh: loop {
            env.check_running()?;
            for (j, port) in replies.iter().enumerate() {
                if set1[j] || set0[j] {
                    continue;
                }
                let (r_j, c_j) = port.read();
                if c_j >= my_ck {
                    break 'fresh (j, r_j);
                }
            }
        };
        if r_j.contains(v) {
            // Lines 18-20: set1 <- set1 ∪ {pj}; set0 <- ∅.
            set1[j] = true;
            n1 += 1;
            set0 = vec![false; n];
            n0 = 0;
        } else {
            // Lines 21-22: set0 <- set0 ∪ {pj}.
            set0[j] = true;
            n0 += 1;
        }
        // Lines 23-24.
        if n1 >= n - f {
            return Ok(true);
        }
        if n0 > f {
            return Ok(false);
        }
    }
}

/// Tracks the asker/`prev_ck` handshake of the `Help()` procedures
/// (Alg. 1 lines 25–28/36, Alg. 2 lines 24–27/38, Alg. 3 lines 23/31–32/40).
#[derive(Debug)]
pub struct AskerTracker {
    prev_ck: Vec<u64>,
}

impl AskerTracker {
    /// Creates a tracker for `readers` readers, with every `prev_ck = 0`.
    #[must_use]
    pub fn new(readers: usize) -> Self {
        AskerTracker { prev_ck: vec![0; readers] }
    }

    /// Reads every `C_k` and returns `(ck, askers)`: the sampled counters and
    /// the (0-based) reader indices whose counter increased since the last
    /// acknowledged round.
    pub fn poll(&self, c: &[ReadPort<u64>]) -> (Vec<u64>, Vec<usize>) {
        let ck: Vec<u64> = c.iter().map(ReadPort::read).collect();
        let askers = ck
            .iter()
            .enumerate()
            .filter(|(k, v)| **v > self.prev_ck[*k])
            .map(|(k, _)| k)
            .collect();
        (ck, askers)
    }

    /// Acknowledges that reader `k` was helped at round `ck` (line 36/38/40:
    /// `prev_ck <- ck`).
    pub fn acknowledge(&mut self, k: usize, ck: u64) {
        self.prev_ck[k] = ck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::{register, ProcessId, System};

    #[test]
    fn asker_tracker_detects_increases_only() {
        let sys = System::builder(4).build();
        let env = sys.env();
        let mut ports = Vec::new();
        let mut writers = Vec::new();
        for k in 2..=4 {
            let (w, r) = register::swmr(env.gate(), ProcessId::new(k), format!("C{k}"), 0u64);
            writers.push(w);
            ports.push(r);
        }
        let mut t = AskerTracker::new(3);
        let (ck, askers) = t.poll(&ports);
        assert!(askers.is_empty());
        assert_eq!(ck, vec![0, 0, 0]);

        writers[1].write(3);
        let (ck, askers) = t.poll(&ports);
        assert_eq!(askers, vec![1]);
        t.acknowledge(1, ck[1]);
        let (_, askers) = t.poll(&ports);
        assert!(askers.is_empty(), "acknowledged rounds are not re-reported");

        writers[1].write(4);
        writers[0].write(1);
        let (_, askers) = t.poll(&ports);
        assert_eq!(askers, vec![0, 1]);
    }

    #[test]
    fn verify_quorum_true_with_full_witness_sets() {
        // n = 4, f = 1: all four reply registers already carry the value with
        // a huge timestamp, so the loop should return true without helpers.
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let mut set = BTreeSet::new();
            set.insert(7u32);
            let (_w, r) =
                register::swmr(env.gate(), ProcessId::new(j), format!("R{j}2"), (set, u64::MAX));
            cols.push(r);
        }
        let got = verify_quorum(&env, &ck_w, &cols, &7).unwrap();
        assert!(got);
    }

    #[test]
    fn verify_quorum_false_when_enough_fresh_noes() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (BTreeSet::<u32>::new(), u64::MAX),
            );
            cols.push(r);
        }
        let got = verify_quorum(&env, &ck_w, &cols, &7).unwrap();
        assert!(!got, "f + 1 = 2 empty replies suffice for false");
    }

    #[test]
    fn verify_quorum_aborts_on_shutdown() {
        let sys = System::builder(4).build();
        let env = sys.env().clone();
        let (ck_w, _) = register::swmr(env.gate(), ProcessId::new(2), "C2", 0u64);
        let mut cols = Vec::new();
        for j in 1..=4 {
            // Stale timestamps: nobody ever replies.
            let (_w, r) = register::swmr(
                env.gate(),
                ProcessId::new(j),
                format!("R{j}2"),
                (BTreeSet::<u32>::new(), 0u64),
            );
            cols.push(r);
        }
        sys.shutdown();
        let got = verify_quorum(&env, &ck_w, &cols, &7);
        assert!(got.is_err());
    }
}
