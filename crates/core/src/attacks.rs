//! Canned Byzantine adversary strategies.
//!
//! Each function builds a [`ByzantineBehavior`] from the attack ports of a
//! declared-faulty process. Strategies only ever write through ports the
//! faulty process owns — the type system enforces the paper's write-port
//! rule (§1, Remark) even for adversaries.
//!
//! The strategies target the specific weaknesses the paper discusses:
//!
//! * [`verifiable`] — the *lie-then-deny* writer of §1, vote-flipping
//!   helpers staging the `f < k < 2f + 1` "bind" of §5.1, and witness
//!   forgers probing unforgeability (Obs. 12),
//! * [`authenticated`] — erase-after-write writers (§7.1's motivation for
//!   verified reads),
//! * [`sticky`] — equivocating writers trying to defeat uniqueness
//!   (Obs. 24).

use byzreg_runtime::ByzantineBehavior;

/// Attacks against the verifiable register (Algorithm 1).
pub mod verifiable {
    use std::collections::BTreeSet;

    use byzreg_runtime::{ReadPort, Value};

    use super::ByzantineBehavior;
    use crate::verifiable::AttackPorts;

    /// A writer that writes and "signs" `value`, then erases everything and
    /// writes `junk` — the canonical *"you can lie but not deny"* scenario.
    ///
    /// Correct readers that verified `value` before the erasure must keep
    /// verifying it afterwards (Obs. 13): the erasure is a lie the witness
    /// mechanism refuses to honor.
    pub fn lie_then_deny<V: Value>(
        ports: AttackPorts<V>,
        value: V,
        junk: V,
    ) -> impl ByzantineBehavior {
        let mut step = 0u64;
        move || {
            step += 1;
            match step {
                1 => {
                    // Behave like a correct Write(value) + Sign(value).
                    if let Some(r_star) = &ports.r_star {
                        r_star.write(value.clone());
                    }
                    ports.witness.update(|set| {
                        set.insert(value.clone());
                    });
                    true
                }
                2..=50 => true, // let correct readers verify
                51 => {
                    // Deny: erase the signature set and overwrite the value.
                    ports.witness.write(BTreeSet::new());
                    if let Some(r_star) = &ports.r_star {
                        r_star.write(junk.clone());
                    }
                    true
                }
                _ => {
                    // Keep answering askers with empty witness sets ("No").
                    reply_all(&ports, &BTreeSet::new());
                    step < 100_000
                }
            }
        }
    }

    /// A helper that flips between witnessing `value` and witnessing nothing
    /// on every fresh asker round — staging the `f < k < 2f + 1` bind of
    /// §5.1 that the `set0`-reset mechanism defuses.
    pub fn vote_flipper<V: Value>(ports: AttackPorts<V>, value: V) -> impl ByzantineBehavior {
        let mut flip = false;
        let mut last_seen: Vec<u64> = vec![0; ports.replies.len()];
        move || {
            for (k, rep) in ports.replies.iter().enumerate() {
                let ck = ports.shared.askers[k].read();
                if ck > last_seen[k] {
                    flip = !flip;
                    let set: BTreeSet<V> = if flip {
                        std::iter::once(value.clone()).collect()
                    } else {
                        BTreeSet::new()
                    };
                    rep.write((set, ck));
                    last_seen[k] = ck;
                }
            }
            true
        }
    }

    /// A process that claims to witness `forged` — a value never written or
    /// signed. With at most `f` forgers, `Verify(forged)` must stay `false`
    /// (Obs. 12: `f + 1` witnesses are needed to convert anyone).
    pub fn witness_forger<V: Value>(ports: AttackPorts<V>, forged: V) -> impl ByzantineBehavior {
        move || {
            let set: BTreeSet<V> = std::iter::once(forged.clone()).collect();
            ports.witness.write(set.clone());
            reply_all(&ports, &set);
            true
        }
    }

    /// A crashed process: takes no further steps.
    pub fn silent<V: Value>(_ports: AttackPorts<V>) -> impl ByzantineBehavior {
        || false
    }

    fn reply_all<V: Value>(ports: &AttackPorts<V>, set: &BTreeSet<V>) {
        let askers: Vec<ReadPort<u64>> = ports.shared.askers.clone();
        for (k, rep) in ports.replies.iter().enumerate() {
            let ck = askers[k].read();
            rep.write((set.clone(), ck));
        }
    }
}

/// Attacks against the authenticated register (Algorithm 2).
pub mod authenticated {
    use std::collections::BTreeSet;

    use byzreg_runtime::Value;

    use super::ByzantineBehavior;
    use crate::authenticated::{AttackPorts, WriterRecord};

    /// A writer that writes `value` like a correct process, then erases `R1`
    /// and finally fills it with garbage. Readers that saw `value` keep
    /// verifying it; reads fall back to `v0` once `R1` is unusable.
    pub fn write_then_erase<V: Value>(ports: AttackPorts<V>, value: V) -> impl ByzantineBehavior {
        let mut step = 0u64;
        move || {
            step += 1;
            let Some(r1) = &ports.r1 else { return false };
            match step {
                1 => {
                    let mut tuples = BTreeSet::new();
                    tuples.insert((1u64, value.clone()));
                    r1.write(WriterRecord::Tuples(tuples));
                    true
                }
                2..=50 => true,
                51 => {
                    r1.write(WriterRecord::Tuples(BTreeSet::new()));
                    true
                }
                52 => {
                    r1.write(WriterRecord::Garbage(0xBAD_F00D));
                    true
                }
                _ => step < 100_000,
            }
        }
    }

    /// A writer that equivocates: alternates `R1` between two singleton
    /// tuple-sets, never letting a stable freshest value exist.
    pub fn equivocator<V: Value>(ports: AttackPorts<V>, a: V, b: V) -> impl ByzantineBehavior {
        let mut step = 0u64;
        move || {
            step += 1;
            let Some(r1) = &ports.r1 else { return false };
            let v = if step % 2 == 0 { a.clone() } else { b.clone() };
            let mut tuples = BTreeSet::new();
            tuples.insert((step, v));
            r1.write(WriterRecord::Tuples(tuples));
            step < 100_000
        }
    }

    /// A reader-helper that claims to witness `forged`; with ≤ `f` allies
    /// this must not make `Verify(forged)` return `true`.
    pub fn witness_forger<V: Value>(ports: AttackPorts<V>, forged: V) -> impl ByzantineBehavior {
        move || {
            if let Some(witness) = &ports.witness {
                let set: BTreeSet<V> = std::iter::once(forged.clone()).collect();
                witness.write(set.clone());
                for (k, rep) in ports.replies.iter().enumerate() {
                    let ck = ports.shared.askers[k].read();
                    rep.write((set.clone(), ck));
                }
            }
            true
        }
    }
}

/// Attacks against the sticky register (Algorithm 3).
pub mod sticky {
    use byzreg_runtime::Value;

    use super::ByzantineBehavior;
    use crate::sticky::AttackPorts;

    /// A writer that tries to equivocate between `a` and `b`: flips its echo
    /// register, its witness register, and its replies. Uniqueness
    /// (Obs. 24) must hold regardless.
    pub fn equivocator<V: Value>(ports: AttackPorts<V>, a: V, b: V) -> impl ByzantineBehavior {
        let mut step = 0u64;
        move || {
            step += 1;
            let v = if step % 2 == 0 { a.clone() } else { b.clone() };
            ports.echo.write(Some(v.clone()));
            if step % 3 == 0 {
                ports.witness.write(Some(v.clone()));
            }
            for (k, rep) in ports.replies.iter().enumerate() {
                let ck = ports.shared.askers[k].read();
                rep.write((Some(v.clone()), ck));
            }
            step < 100_000
        }
    }

    /// A helper that always reports `⊥` with fresh round numbers, trying to
    /// push readers toward returning `⊥` spuriously.
    pub fn bottom_pusher<V: Value>(ports: AttackPorts<V>) -> impl ByzantineBehavior {
        move || {
            ports.witness.write(None);
            for (k, rep) in ports.replies.iter().enumerate() {
                let ck = ports.shared.askers[k].read();
                rep.write((None::<V>, ck));
            }
            true
        }
    }

    /// A crashed process.
    pub fn silent<V: Value>(_ports: AttackPorts<V>) -> impl ByzantineBehavior {
        || false
    }
}

#[cfg(test)]
mod tests {
    use byzreg_runtime::{ProcessId, Scheduling, System};

    use crate::sticky::StickyRegister;
    use crate::verifiable::VerifiableRegister;

    #[test]
    fn lie_then_deny_cannot_deny() {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(41))
            .byzantine(ProcessId::new(1))
            .build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(1));
        system.spawn_byzantine(ProcessId::new(1), super::verifiable::lie_then_deny(ports, 7, 99));

        let mut r2 = reg.reader(ProcessId::new(2));
        // Wait until the value verifies once...
        let mut verified = false;
        for _ in 0..200 {
            if r2.verify(&7).unwrap() {
                verified = true;
                break;
            }
        }
        assert!(verified, "the adversary does sign 7 initially");
        // ... after which it can never be denied, for any reader.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(r2.verify(&7).unwrap());
        let mut r3 = reg.reader(ProcessId::new(3));
        assert!(r3.verify(&7).unwrap());
        system.shutdown();
    }

    #[test]
    fn one_witness_forger_cannot_forge() {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(42))
            .byzantine(ProcessId::new(4))
            .build();
        let reg = VerifiableRegister::install(&system, 0u32);
        let ports = reg.attack_ports(ProcessId::new(4));
        system.spawn_byzantine(ProcessId::new(4), super::verifiable::witness_forger(ports, 666));
        let mut r2 = reg.reader(ProcessId::new(2));
        for _ in 0..10 {
            assert!(!r2.verify(&666).unwrap(), "f = 1 forger cannot fake a signature");
        }
        system.shutdown();
    }

    #[test]
    fn sticky_bottom_pusher_cannot_unwrite() {
        let system = System::builder(4)
            .scheduling(Scheduling::Chaotic(43))
            .byzantine(ProcessId::new(4))
            .build();
        let reg = StickyRegister::install(&system);
        let ports = reg.attack_ports(ProcessId::new(4));
        system.spawn_byzantine(ProcessId::new(4), super::sticky::bottom_pusher::<u32>(ports));
        let mut w = reg.writer();
        w.write(5u32).unwrap();
        for k in 2..=3 {
            let mut r = reg.reader(ProcessId::new(k));
            assert_eq!(r.read().unwrap(), Some(5), "p{k} must not be pushed to ⊥");
        }
        system.shutdown();
    }
}
