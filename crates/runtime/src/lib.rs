//! # byzreg-runtime
//!
//! Shared-memory substrate for the `byzreg` workspace — the model of §3 of
//! *"You can lie but not deny: SWMR registers with signature properties in
//! systems with Byzantine processes"* (Hu & Toueg, PODC 2025) made
//! executable:
//!
//! * [`register`] — atomic SWMR/SWSR base registers whose *write ports* are
//!   structurally restricted to their owner (the Remark of §1),
//! * [`gate`] — pluggable schedulers for shared-memory steps, including a
//!   deterministic seeded lockstep scheduler,
//! * [`system`] — `n` processes with background `Help()` engines and
//!   Byzantine adversary actors,
//! * [`history`] — global recording of operation histories (`H|correct`),
//!   the input to the Byzantine linearizability checkers in `byzreg-spec`.
//!
//! # Example
//!
//! ```
//! use byzreg_runtime::{register, ProcessId, Scheduling, System};
//!
//! let system = System::builder(4).scheduling(Scheduling::Lockstep(7)).build();
//! let env = system.env();
//! let (w, r) = register::swmr(env.gate(), ProcessId::new(1), "R*", 0u64);
//! env.run_as(ProcessId::new(1), || w.write(41));
//! env.run_as(ProcessId::new(2), || assert_eq!(r.read(), 41));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod factory;
pub mod gate;
pub mod history;
pub mod pid;
pub mod register;
pub mod system;

pub use error::{Error, Result};
pub use factory::{LocalFactory, RegisterFactory};
pub use gate::{FreeGate, LockstepGate, Participation, StepGate};
pub use history::{Clock, CompleteOp, Event, EventKind, HistoryLog, OpToken};
pub use pid::{ProcessId, Roles};
pub use register::{custom_swmr, swmr, CellBackend, ReadPort, WritePort};
pub use system::{
    ByzantineBehavior, Env, HelpDemand, HelpDemandGuard, HelpShard, HelpTask, Scheduling, System,
    SystemBuilder,
};

/// Marker trait for values storable in the implemented registers.
///
/// Blanket-implemented for every type with the required bounds; exists only
/// to keep signatures readable.
pub trait Value:
    Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static
{
}

impl<T: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static> Value for T {}
