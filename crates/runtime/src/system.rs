//! The system: `n` processes, at most `f` of them Byzantine, a step gate, a
//! global clock, background help engines, and adversary actors.
//!
//! A [`System`] hosts any number of implemented objects (register instances,
//! broadcast objects, …). Object constructors take the system's [`Env`] to
//! create base registers and to attach per-process [`HelpTask`]s; the system
//! multiplexes every correct process's help tasks onto one background thread
//! per process, which matches the paper's model where each process
//! continuously executes `Help()` "even when it is not currently performing
//! any operation on the implemented register" (§5.2).
//!
//! Byzantine processes do **not** run help tasks; instead an adversary
//! behavior can be installed with [`System::spawn_byzantine`], which may
//! write arbitrary values — but only through write ports that the faulty
//! process legitimately owns.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::gate::{self, FreeGate, LockstepGate, Participation, StepGate};
use crate::history::Clock;
use crate::pid::ProcessId;

/// One unit of background helping work.
///
/// `tick` performs a *bounded* amount of work — typically one iteration of
/// the algorithm's `Help()` while-loop — and returns. The engine calls it
/// repeatedly until shutdown.
pub trait HelpTask: Send + 'static {
    /// Performs one iteration of the help procedure.
    fn tick(&mut self);
}

impl<F: FnMut() + Send + 'static> HelpTask for F {
    fn tick(&mut self) {
        self()
    }
}

/// An adversary behavior for a Byzantine process.
///
/// `tick` is called repeatedly (each call should perform a bounded number of
/// steps); return `false` to stop the adversary thread.
pub trait ByzantineBehavior: Send + 'static {
    /// Performs one chunk of adversarial activity.
    fn tick(&mut self) -> bool;
}

impl<F: FnMut() -> bool + Send + 'static> ByzantineBehavior for F {
    fn tick(&mut self) -> bool {
        self()
    }
}

struct EnvInner {
    n: usize,
    f: usize,
    gate: Arc<dyn StepGate>,
    clock: Clock,
    faulty: HashSet<ProcessId>,
}

/// A cheap handle to the system's shared environment.
///
/// Object constructors and operation handles keep an `Env` to create base
/// registers, enter the step gate, stamp history events, and observe
/// shutdown.
#[derive(Clone)]
pub struct Env {
    inner: Arc<EnvInner>,
}

impl Env {
    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// Resilience parameter `f` (maximum number of tolerated Byzantine
    /// processes; thresholds such as `n - f` are computed from it).
    #[must_use]
    pub fn f(&self) -> usize {
        self.inner.f
    }

    /// The quorum size `n - f`.
    #[must_use]
    pub fn n_minus_f(&self) -> usize {
        self.inner.n - self.inner.f
    }

    /// The step gate shared by all registers of this system.
    #[must_use]
    pub fn gate(&self) -> Arc<dyn StepGate> {
        Arc::clone(&self.inner.gate)
    }

    /// The global history clock.
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.inner.clock.clone()
    }

    /// `true` if `pid` was declared Byzantine at build time.
    #[must_use]
    pub fn is_faulty(&self, pid: ProcessId) -> bool {
        self.inner.faulty.contains(&pid)
    }

    /// The declared-faulty set.
    #[must_use]
    pub fn faulty(&self) -> Vec<ProcessId> {
        let mut v: Vec<_> = self.inner.faulty.iter().copied().collect();
        v.sort();
        v
    }

    /// The correct processes (all processes minus the declared-faulty set).
    #[must_use]
    pub fn correct(&self) -> Vec<ProcessId> {
        ProcessId::all(self.inner.n).filter(|p| !self.is_faulty(*p)).collect()
    }

    /// `true` once system shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.inner.gate.is_shutdown()
    }

    /// Returns `Err(Error::Shutdown)` if the system is shutting down.
    ///
    /// Blocking loops inside operations call this once per iteration so that
    /// finite test executions can always be wound down.
    pub fn check_running(&self) -> Result<()> {
        if self.is_shutdown() {
            Err(Error::Shutdown)
        } else {
            Ok(())
        }
    }

    /// Runs `f` with the current thread participating in the step gate as
    /// process `pid`. Nested calls on the same thread reuse the outer
    /// participation.
    pub fn run_as<R>(&self, pid: ProcessId, f: impl FnOnce() -> R) -> R {
        let _participation = Participation::enter(self.gate(), pid);
        f()
    }

    /// Validates `n > 3f` (the paper's fault-tolerance requirement for
    /// Algorithms 1–3). Object constructors that require it call this.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn require_n_gt_3f(&self) {
        assert!(
            self.inner.n > 3 * self.inner.f,
            "this algorithm requires n > 3f (n = {}, f = {}); Theorem 31 proves \
             it cannot be implemented otherwise",
            self.inner.n,
            self.inner.f
        );
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Env")
            .field("n", &self.inner.n)
            .field("f", &self.inner.f)
            .field("faulty", &self.faulty())
            .finish()
    }
}

/// Which scheduler a [`System`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Full-speed concurrency (benchmarks, examples).
    Free,
    /// Full-speed concurrency with seeded scheduling noise (stress tests).
    Chaotic(u64),
    /// Deterministic seeded lockstep (model-checking style tests).
    Lockstep(u64),
}

/// Builder for [`System`].
///
/// # Examples
///
/// ```
/// use byzreg_runtime::{System, Scheduling, ProcessId};
///
/// let system = System::builder(4)
///     .scheduling(Scheduling::Lockstep(42))
///     .byzantine(ProcessId::new(3))
///     .build();
/// assert_eq!(system.env().n(), 4);
/// assert_eq!(system.env().f(), 1);
/// assert!(system.env().is_faulty(ProcessId::new(3)));
/// ```
#[derive(Debug)]
pub struct SystemBuilder {
    n: usize,
    f: Option<usize>,
    scheduling: Scheduling,
    faulty: HashSet<ProcessId>,
}

impl SystemBuilder {
    /// Starts building a system of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SystemBuilder { n, f: None, scheduling: Scheduling::Free, faulty: HashSet::new() }
    }

    /// Sets the resilience parameter `f`. Defaults to `⌊(n − 1) / 3⌋`.
    ///
    /// Note that the builder deliberately does *not* reject `n <= 3f`; the
    /// impossibility experiments (Theorem 29) run exactly in that regime.
    #[must_use]
    pub fn resilience(mut self, f: usize) -> Self {
        self.f = Some(f);
        self
    }

    /// Selects the scheduler.
    #[must_use]
    pub fn scheduling(mut self, s: Scheduling) -> Self {
        self.scheduling = s;
        self
    }

    /// Declares `pid` Byzantine: the system will not run help tasks for it,
    /// and the declared-faulty set is what history checkers treat as
    /// `correct`'s complement.
    #[must_use]
    pub fn byzantine(mut self, pid: ProcessId) -> Self {
        assert!(pid.index() <= self.n, "{pid} out of range for n = {}", self.n);
        self.faulty.insert(pid);
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn build(self) -> System {
        assert!(self.n >= 2, "a SWMR register needs a writer and at least one reader");
        let f = self.f.unwrap_or_else(|| self.n.saturating_sub(1) / 3);
        let gate: Arc<dyn StepGate> = match self.scheduling {
            Scheduling::Free => Arc::new(FreeGate::new()),
            Scheduling::Chaotic(seed) => Arc::new(FreeGate::chaotic(seed)),
            Scheduling::Lockstep(seed) => Arc::new(LockstepGate::new(seed)),
        };
        let env = Env {
            inner: Arc::new(EnvInner {
                n: self.n,
                f,
                gate,
                clock: Clock::new(),
                faulty: self.faulty,
            }),
        };
        System {
            env,
            engines: Mutex::new((0..self.n).map(|_| None).collect()),
            threads: Mutex::new(Vec::new()),
        }
    }
}

type TaskList = Arc<Mutex<Vec<Box<dyn HelpTask>>>>;

struct Engine {
    tasks: TaskList,
    handle: Option<JoinHandle<()>>,
}

/// A running system of `n` processes.
///
/// Dropping the system requests shutdown and joins all background threads.
pub struct System {
    env: Env,
    engines: Mutex<Vec<Option<Engine>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl System {
    /// Starts building a system of `n` processes.
    #[must_use]
    pub fn builder(n: usize) -> SystemBuilder {
        SystemBuilder::new(n)
    }

    /// The shared environment handle.
    #[must_use]
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Attaches a background help task to process `pid`.
    ///
    /// Tasks attached to a declared-Byzantine process are silently dropped:
    /// faulty processes do not execute the protocol (an adversary may be
    /// installed instead with [`System::spawn_byzantine`]).
    pub fn add_help_task(&self, pid: ProcessId, task: Box<dyn HelpTask>) {
        if self.env.is_faulty(pid) {
            return;
        }
        let mut engines = self.engines.lock();
        let slot = &mut engines[pid.zero_based()];
        match slot {
            Some(engine) => engine.tasks.lock().push(task),
            None => {
                let tasks: TaskList = Arc::new(Mutex::new(vec![task]));
                let env = self.env.clone();
                let loop_tasks = Arc::clone(&tasks);
                let handle = std::thread::Builder::new()
                    .name(format!("help-{pid}"))
                    .spawn(move || help_engine_loop(env, pid, loop_tasks))
                    .expect("spawn help engine");
                *slot = Some(Engine { tasks, handle: Some(handle) });
            }
        }
    }

    /// Spawns an adversary thread acting as the Byzantine process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not declared Byzantine at build time — correct
    /// processes may not behave adversarially.
    pub fn spawn_byzantine(&self, pid: ProcessId, mut behavior: impl ByzantineBehavior) {
        assert!(
            self.env.is_faulty(pid),
            "{pid} is declared correct; declare it with SystemBuilder::byzantine first"
        );
        let env = self.env.clone();
        let handle = std::thread::Builder::new()
            .name(format!("byz-{pid}"))
            .spawn(move || {
                let _p = Participation::enter(env.gate(), pid);
                while !env.is_shutdown() {
                    if !behavior.tick() {
                        break;
                    }
                    gate::idle_step(&env.gate());
                }
            })
            .expect("spawn byzantine actor");
        self.threads.lock().push(handle);
    }

    /// Spawns an auxiliary participant thread (used by tests and drivers to
    /// run concurrent operations of a *correct* process).
    pub fn spawn(&self, pid: ProcessId, f: impl FnOnce() + Send + 'static) {
        let env = self.env.clone();
        let handle = std::thread::Builder::new()
            .name(format!("proc-{pid}"))
            .spawn(move || {
                env.run_as(pid, f);
            })
            .expect("spawn process thread");
        self.threads.lock().push(handle);
    }

    /// Requests shutdown and joins every background thread.
    ///
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.env.gate().request_shutdown();
        let mut engines = self.engines.lock();
        for engine in engines.iter_mut().flatten() {
            if let Some(h) = engine.handle.take() {
                let _ = h.join();
            }
        }
        drop(engines);
        let mut threads = self.threads.lock();
        for h in threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System").field("env", &self.env).finish()
    }
}

fn help_engine_loop(env: Env, pid: ProcessId, tasks: TaskList) {
    let _participation = Participation::enter(env.gate(), pid);
    while !env.is_shutdown() {
        // Tick every attached task once per engine round. New tasks may be
        // attached concurrently; index-based access keeps the lock windows
        // short (a task must not be ticked while the list lock is held, since
        // ticks perform gated steps that can block).
        let count = tasks.lock().len();
        for i in 0..count {
            if env.is_shutdown() {
                return;
            }
            // Temporarily take the task out so other engine users (none
            // today, but attach is concurrent) are not blocked.
            let mut task = {
                let mut guard = tasks.lock();
                std::mem::replace(&mut guard[i], Box::new(|| {}))
            };
            task.tick();
            tasks.lock()[i] = task;
        }
        // Park at the gate once per round, so idle engines keep the lockstep
        // dispatch condition satisfiable and busy engines yield fairly.
        gate::idle_step(&env.gate());
        // Under free scheduling the engine would otherwise monopolize a core.
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_defaults_f_to_floor_n_minus_1_over_3() {
        assert_eq!(System::builder(4).build().env().f(), 1);
        assert_eq!(System::builder(7).build().env().f(), 2);
        assert_eq!(System::builder(3).build().env().f(), 0);
        assert_eq!(System::builder(10).build().env().f(), 3);
    }

    #[test]
    fn quorums_match_the_paper() {
        let s = System::builder(7).build();
        assert_eq!(s.env().n_minus_f(), 5);
        assert_eq!(s.env().f() + 1, 3);
    }

    #[test]
    fn help_tasks_run_until_shutdown() {
        let s = System::builder(4).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 10 {
            assert!(std::time::Instant::now() < deadline, "help task did not run");
            std::thread::yield_now();
        }
        s.shutdown();
        let after = count.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(count.load(Ordering::SeqCst), after, "tasks must stop after shutdown");
    }

    #[test]
    fn byzantine_processes_get_no_help_tasks() {
        let s = System::builder(4).byzantine(ProcessId::new(2)).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    #[should_panic(expected = "declared correct")]
    fn correct_processes_cannot_be_adversaries() {
        let s = System::builder(4).build();
        s.spawn_byzantine(ProcessId::new(2), || true);
    }

    #[test]
    fn byzantine_behavior_can_stop_itself() {
        let s = System::builder(4).byzantine(ProcessId::new(3)).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.spawn_byzantine(ProcessId::new(3), move || c.fetch_add(1, Ordering::SeqCst) < 4);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(count.load(Ordering::SeqCst), 5);
        s.shutdown();
    }

    #[test]
    fn lockstep_system_runs_help_and_ops_together() {
        let s = System::builder(4).scheduling(Scheduling::Lockstep(5)).build();
        let env = s.env().clone();
        let (w, r) = crate::register::swmr(env.gate(), ProcessId::new(1), "R", 0u32);
        // Help task of p2 copies R into a counter.
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let r2 = r.clone();
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                seen2.store(r2.read() as usize, Ordering::SeqCst);
            }),
        );
        env.run_as(ProcessId::new(1), || {
            w.write(9);
            // Spin (as a participant) until the helper observes the write.
            while seen.load(Ordering::SeqCst) != 9 {
                let _ = r.read();
                if env.is_shutdown() {
                    break;
                }
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 9);
        s.shutdown();
    }

    #[test]
    fn check_running_reports_shutdown() {
        let s = System::builder(4).build();
        assert!(s.env().check_running().is_ok());
        s.shutdown();
        assert_eq!(s.env().check_running(), Err(Error::Shutdown));
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn require_n_gt_3f_rejects_small_systems() {
        let s = System::builder(3).resilience(1).build();
        s.env().require_n_gt_3f();
    }
}
