//! The system: `n` processes, at most `f` of them Byzantine, a step gate, a
//! global clock, background help engines, and adversary actors.
//!
//! A [`System`] hosts any number of implemented objects (register instances,
//! broadcast objects, …). Object constructors take the system's [`Env`] to
//! create base registers and to attach per-process [`HelpTask`]s. Two help
//! substrates exist:
//!
//! * **Unsharded engines** ([`System::add_help_task`]): every correct
//!   process gets one background thread that ticks all of its attached
//!   tasks continuously — the direct reading of the paper's model where
//!   each process executes `Help()` "even when it is not currently
//!   performing any operation on the implemented register" (§5.2).
//!   Standalone register instances use this.
//! * **Sharded, demand-driven engines** ([`System::new_help_shard`] +
//!   [`System::add_sharded_help_task`]): tasks are partitioned into help
//!   shards, each served by one engine thread that ticks only the tasks
//!   whose [`HelpDemand`] has a pending quorum round and **parks** on a
//!   wake counter otherwise (edge-triggered, like the MP reactor's dedup
//!   flags). A keyed store registers each key's help tasks under the key's
//!   shard, so background helping cost scales with the *active* keys of
//!   the touched shards, not with every instantiated key. The paper's
//!   continuous-`Help()` requirement is preserved per shard: a `Help()`
//!   round with no pending asker is a no-op (Alg. 1 line 29, Alg. 2 line
//!   28, Alg. 3 line 33), and every operation whose termination depends on
//!   helpers holds a demand guard for its whole duration, so the shard's
//!   engine keeps running exactly while helping can matter.
//!
//! Byzantine processes do **not** run help tasks (in either substrate);
//! instead an adversary behavior can be installed with
//! [`System::spawn_byzantine`], which may write arbitrary values — but only
//! through write ports that the faulty process legitimately owns.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};
use crate::gate::{self, FreeGate, LockstepGate, Participation, StepGate};
use crate::history::Clock;
use crate::pid::ProcessId;

/// One unit of background helping work.
///
/// `tick` performs a *bounded* amount of work — typically one iteration of
/// the algorithm's `Help()` while-loop — and returns. The engine calls it
/// repeatedly until shutdown.
pub trait HelpTask: Send + 'static {
    /// Performs one iteration of the help procedure.
    fn tick(&mut self);
}

impl<F: FnMut() + Send + 'static> HelpTask for F {
    fn tick(&mut self) {
        self()
    }
}

/// Wake state shared by one help shard's engine and every demand handle
/// attached to the shard: a monotone epoch plus the condvar the engine
/// parks on while the shard is quiet.
struct ShardWake {
    epoch: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ShardWake {
    fn new() -> Self {
        ShardWake { epoch: AtomicU64::new(0), lock: Mutex::new(()), cv: Condvar::new() }
    }

    /// Advances the epoch and wakes the shard's engine. The lock is taken
    /// so a bump can never slip between the engine's epoch re-check and its
    /// condvar wait (no lost wake-ups).
    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        let _guard = self.lock.lock();
        self.cv.notify_all();
    }
}

struct DemandState {
    pending: AtomicUsize,
    wake: Arc<ShardWake>,
}

/// The demand handle of one object instance hosted on a help shard.
///
/// Operations whose termination depends on background helping (the §5.1
/// quorum rounds, the sticky write's witness wait) call
/// [`HelpDemand::begin`] for their duration; the shard's engine ticks a
/// task only while its instance's demand is pending, and the whole shard
/// parks once nothing is pending. This is sound because a `Help()` round
/// with no pending asker takes no protocol-visible action (the early
/// returns of Alg. 1 line 29 / Alg. 2 line 28 / Alg. 3 line 33): parking
/// is indistinguishable from the engine ticking no-ops.
#[derive(Clone)]
pub struct HelpDemand {
    state: Arc<DemandState>,
}

impl HelpDemand {
    /// Marks a helper-dependent operation as in flight until the returned
    /// guard drops, and wakes the shard's engine.
    #[must_use]
    pub fn begin(&self) -> HelpDemandGuard {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        self.state.wake.bump();
        HelpDemandGuard { state: Arc::clone(&self.state) }
    }

    /// `true` while at least one helper-dependent operation is in flight.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.state.pending.load(Ordering::Acquire) > 0
    }
}

impl std::fmt::Debug for HelpDemand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HelpDemand(pending = {})", self.state.pending.load(Ordering::Acquire))
    }
}

/// RAII span of one helper-dependent operation (see [`HelpDemand::begin`]).
pub struct HelpDemandGuard {
    state: Arc<DemandState>,
}

impl Drop for HelpDemandGuard {
    fn drop(&mut self) {
        self.state.pending.fetch_sub(1, Ordering::AcqRel);
        // Bump so an engine mid-sweep re-evaluates and can park promptly.
        self.state.wake.bump();
    }
}

/// A handle to one help shard of a [`System`].
///
/// Created with [`System::new_help_shard`]; cheap to clone. Object
/// installers derive per-instance [`HelpDemand`]s from the shard and attach
/// help tasks with [`System::add_sharded_help_task`]. All tasks of a shard
/// share one engine thread, so the engine-thread budget of a keyed store
/// is its shard count — independent of how many keys are instantiated.
#[derive(Clone)]
pub struct HelpShard {
    id: usize,
    wake: Arc<ShardWake>,
}

impl HelpShard {
    /// The shard's system-wide id (also usable as a backend co-scheduling
    /// label, cf. `RegisterFactory::open_group`).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Creates a demand handle for one object instance hosted on this
    /// shard.
    #[must_use]
    pub fn new_demand(&self) -> HelpDemand {
        HelpDemand {
            state: Arc::new(DemandState {
                pending: AtomicUsize::new(0),
                wake: Arc::clone(&self.wake),
            }),
        }
    }
}

impl std::fmt::Debug for HelpShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HelpShard({})", self.id)
    }
}

/// An adversary behavior for a Byzantine process.
///
/// `tick` is called repeatedly (each call should perform a bounded number of
/// steps); return `false` to stop the adversary thread.
pub trait ByzantineBehavior: Send + 'static {
    /// Performs one chunk of adversarial activity.
    fn tick(&mut self) -> bool;
}

impl<F: FnMut() -> bool + Send + 'static> ByzantineBehavior for F {
    fn tick(&mut self) -> bool {
        self()
    }
}

struct EnvInner {
    n: usize,
    f: usize,
    gate: Arc<dyn StepGate>,
    clock: Clock,
    faulty: HashSet<ProcessId>,
}

/// A cheap handle to the system's shared environment.
///
/// Object constructors and operation handles keep an `Env` to create base
/// registers, enter the step gate, stamp history events, and observe
/// shutdown.
#[derive(Clone)]
pub struct Env {
    inner: Arc<EnvInner>,
}

impl Env {
    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// Resilience parameter `f` (maximum number of tolerated Byzantine
    /// processes; thresholds such as `n - f` are computed from it).
    #[must_use]
    pub fn f(&self) -> usize {
        self.inner.f
    }

    /// The quorum size `n - f`.
    #[must_use]
    pub fn n_minus_f(&self) -> usize {
        self.inner.n - self.inner.f
    }

    /// The step gate shared by all registers of this system.
    #[must_use]
    pub fn gate(&self) -> Arc<dyn StepGate> {
        Arc::clone(&self.inner.gate)
    }

    /// The global history clock.
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.inner.clock.clone()
    }

    /// `true` if `pid` was declared Byzantine at build time.
    #[must_use]
    pub fn is_faulty(&self, pid: ProcessId) -> bool {
        self.inner.faulty.contains(&pid)
    }

    /// The declared-faulty set.
    #[must_use]
    pub fn faulty(&self) -> Vec<ProcessId> {
        let mut v: Vec<_> = self.inner.faulty.iter().copied().collect();
        v.sort();
        v
    }

    /// The correct processes (all processes minus the declared-faulty set).
    #[must_use]
    pub fn correct(&self) -> Vec<ProcessId> {
        ProcessId::all(self.inner.n).filter(|p| !self.is_faulty(*p)).collect()
    }

    /// `true` once system shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.inner.gate.is_shutdown()
    }

    /// Returns `Err(Error::Shutdown)` if the system is shutting down.
    ///
    /// Blocking loops inside operations call this once per iteration so that
    /// finite test executions can always be wound down.
    pub fn check_running(&self) -> Result<()> {
        if self.is_shutdown() {
            Err(Error::Shutdown)
        } else {
            Ok(())
        }
    }

    /// Runs `f` with the current thread participating in the step gate as
    /// process `pid`. Nested calls on the same thread reuse the outer
    /// participation.
    pub fn run_as<R>(&self, pid: ProcessId, f: impl FnOnce() -> R) -> R {
        let _participation = Participation::enter(self.gate(), pid);
        f()
    }

    /// Validates `n > 3f` (the paper's fault-tolerance requirement for
    /// Algorithms 1–3). Object constructors that require it call this.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn require_n_gt_3f(&self) {
        assert!(
            self.inner.n > 3 * self.inner.f,
            "this algorithm requires n > 3f (n = {}, f = {}); Theorem 31 proves \
             it cannot be implemented otherwise",
            self.inner.n,
            self.inner.f
        );
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Env")
            .field("n", &self.inner.n)
            .field("f", &self.inner.f)
            .field("faulty", &self.faulty())
            .finish()
    }
}

/// Which scheduler a [`System`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Full-speed concurrency (benchmarks, examples).
    Free,
    /// Full-speed concurrency with seeded scheduling noise (stress tests).
    Chaotic(u64),
    /// Deterministic seeded lockstep (model-checking style tests).
    Lockstep(u64),
}

/// Builder for [`System`].
///
/// # Examples
///
/// ```
/// use byzreg_runtime::{System, Scheduling, ProcessId};
///
/// let system = System::builder(4)
///     .scheduling(Scheduling::Lockstep(42))
///     .byzantine(ProcessId::new(3))
///     .build();
/// assert_eq!(system.env().n(), 4);
/// assert_eq!(system.env().f(), 1);
/// assert!(system.env().is_faulty(ProcessId::new(3)));
/// ```
#[derive(Debug)]
pub struct SystemBuilder {
    n: usize,
    f: Option<usize>,
    scheduling: Scheduling,
    faulty: HashSet<ProcessId>,
}

impl SystemBuilder {
    /// Starts building a system of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SystemBuilder { n, f: None, scheduling: Scheduling::Free, faulty: HashSet::new() }
    }

    /// Sets the resilience parameter `f`. Defaults to `⌊(n − 1) / 3⌋`.
    ///
    /// Note that the builder deliberately does *not* reject `n <= 3f`; the
    /// impossibility experiments (Theorem 29) run exactly in that regime.
    #[must_use]
    pub fn resilience(mut self, f: usize) -> Self {
        self.f = Some(f);
        self
    }

    /// Selects the scheduler.
    #[must_use]
    pub fn scheduling(mut self, s: Scheduling) -> Self {
        self.scheduling = s;
        self
    }

    /// Declares `pid` Byzantine: the system will not run help tasks for it,
    /// and the declared-faulty set is what history checkers treat as
    /// `correct`'s complement.
    #[must_use]
    pub fn byzantine(mut self, pid: ProcessId) -> Self {
        assert!(pid.index() <= self.n, "{pid} out of range for n = {}", self.n);
        self.faulty.insert(pid);
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn build(self) -> System {
        assert!(self.n >= 2, "a SWMR register needs a writer and at least one reader");
        let f = self.f.unwrap_or_else(|| self.n.saturating_sub(1) / 3);
        let gate: Arc<dyn StepGate> = match self.scheduling {
            Scheduling::Free => Arc::new(FreeGate::new()),
            Scheduling::Chaotic(seed) => Arc::new(FreeGate::chaotic(seed)),
            Scheduling::Lockstep(seed) => Arc::new(LockstepGate::new(seed)),
        };
        let env = Env {
            inner: Arc::new(EnvInner {
                n: self.n,
                f,
                gate,
                clock: Clock::new(),
                faulty: self.faulty,
            }),
        };
        System {
            env,
            engines: Mutex::new((0..self.n).map(|_| None).collect()),
            shard_engines: Mutex::new(HashMap::new()),
            next_shard: AtomicUsize::new(0),
            threads: Mutex::new(Vec::new()),
        }
    }
}

type TaskList = Arc<Mutex<Vec<Box<dyn HelpTask>>>>;

struct Engine {
    tasks: TaskList,
    handle: Option<JoinHandle<()>>,
}

/// One task hosted on a shard engine: ticked as `pid`, but only while its
/// instance's demand is pending.
struct ShardSlot {
    pid: ProcessId,
    demand: HelpDemand,
    task: Box<dyn HelpTask>,
}

type ShardTaskList = Arc<Mutex<Vec<ShardSlot>>>;

struct ShardEngine {
    wake: Arc<ShardWake>,
    tasks: ShardTaskList,
    handle: Option<JoinHandle<()>>,
}

/// A running system of `n` processes.
///
/// Dropping the system requests shutdown and joins all background threads.
pub struct System {
    env: Env,
    engines: Mutex<Vec<Option<Engine>>>,
    shard_engines: Mutex<HashMap<usize, ShardEngine>>,
    next_shard: AtomicUsize,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl System {
    /// Starts building a system of `n` processes.
    #[must_use]
    pub fn builder(n: usize) -> SystemBuilder {
        SystemBuilder::new(n)
    }

    /// The shared environment handle.
    #[must_use]
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Attaches a background help task to process `pid`.
    ///
    /// Tasks attached to a declared-Byzantine process are silently dropped:
    /// faulty processes do not execute the protocol (an adversary may be
    /// installed instead with [`System::spawn_byzantine`]).
    pub fn add_help_task(&self, pid: ProcessId, task: Box<dyn HelpTask>) {
        if self.env.is_faulty(pid) {
            return;
        }
        let mut engines = self.engines.lock();
        let slot = &mut engines[pid.zero_based()];
        match slot {
            Some(engine) => engine.tasks.lock().push(task),
            None => {
                let tasks: TaskList = Arc::new(Mutex::new(vec![task]));
                let env = self.env.clone();
                let loop_tasks = Arc::clone(&tasks);
                let handle = std::thread::Builder::new()
                    .name(format!("help-{pid}"))
                    .spawn(move || help_engine_loop(env, pid, loop_tasks))
                    .expect("spawn help engine");
                *slot = Some(Engine { tasks, handle: Some(handle) });
            }
        }
    }

    /// Allocates a fresh help shard (see [`HelpShard`]).
    ///
    /// The shard's engine thread is spawned lazily on the first
    /// [`System::add_sharded_help_task`]; a shard whose tasks were all
    /// dropped (Byzantine pids) costs nothing.
    #[must_use]
    pub fn new_help_shard(&self) -> HelpShard {
        HelpShard {
            id: self.next_shard.fetch_add(1, Ordering::Relaxed),
            wake: Arc::new(ShardWake::new()),
        }
    }

    /// Attaches a demand-gated background help task of process `pid` to
    /// `shard`.
    ///
    /// The shard's engine ticks the task only while `demand` is pending
    /// (see [`HelpDemand`]); with nothing pending anywhere in the shard,
    /// the engine parks. Tasks attached to a declared-Byzantine process are
    /// silently dropped, exactly as in [`System::add_help_task`].
    pub fn add_sharded_help_task(
        &self,
        shard: &HelpShard,
        pid: ProcessId,
        demand: &HelpDemand,
        task: Box<dyn HelpTask>,
    ) {
        if self.env.is_faulty(pid) {
            return;
        }
        let slot = ShardSlot { pid, demand: demand.clone(), task };
        let mut engines = self.shard_engines.lock();
        match engines.get_mut(&shard.id) {
            Some(engine) => {
                engine.tasks.lock().push(slot);
                // A parked engine must notice the new task (its demand may
                // already be pending).
                engine.wake.bump();
            }
            None => {
                let tasks: ShardTaskList = Arc::new(Mutex::new(vec![slot]));
                let env = self.env.clone();
                let wake = Arc::clone(&shard.wake);
                let loop_wake = Arc::clone(&wake);
                let loop_tasks = Arc::clone(&tasks);
                let handle = std::thread::Builder::new()
                    .name(format!("help-s{}", shard.id))
                    .spawn(move || shard_help_loop(&env, &loop_wake, &loop_tasks))
                    .expect("spawn shard help engine");
                engines.insert(shard.id, ShardEngine { wake, tasks, handle: Some(handle) });
            }
        }
    }

    /// Number of live help-engine threads (unsharded per-process engines
    /// plus shard engines). A keyed store's budget is its shard count,
    /// independent of how many keys it instantiated.
    #[must_use]
    pub fn help_engine_threads(&self) -> usize {
        let unsharded = self.engines.lock().iter().flatten().count();
        unsharded + self.shard_engines.lock().len()
    }

    /// Spawns an adversary thread acting as the Byzantine process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not declared Byzantine at build time — correct
    /// processes may not behave adversarially.
    pub fn spawn_byzantine(&self, pid: ProcessId, mut behavior: impl ByzantineBehavior) {
        assert!(
            self.env.is_faulty(pid),
            "{pid} is declared correct; declare it with SystemBuilder::byzantine first"
        );
        let env = self.env.clone();
        let handle = std::thread::Builder::new()
            .name(format!("byz-{pid}"))
            .spawn(move || {
                let _p = Participation::enter(env.gate(), pid);
                while !env.is_shutdown() {
                    if !behavior.tick() {
                        break;
                    }
                    gate::idle_step(&env.gate());
                }
            })
            .expect("spawn byzantine actor");
        self.threads.lock().push(handle);
    }

    /// Spawns an auxiliary participant thread (used by tests and drivers to
    /// run concurrent operations of a *correct* process).
    pub fn spawn(&self, pid: ProcessId, f: impl FnOnce() + Send + 'static) {
        let env = self.env.clone();
        let handle = std::thread::Builder::new()
            .name(format!("proc-{pid}"))
            .spawn(move || {
                env.run_as(pid, f);
            })
            .expect("spawn process thread");
        self.threads.lock().push(handle);
    }

    /// Requests shutdown and joins every background thread.
    ///
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.env.gate().request_shutdown();
        let mut engines = self.engines.lock();
        for engine in engines.iter_mut().flatten() {
            if let Some(h) = engine.handle.take() {
                let _ = h.join();
            }
        }
        drop(engines);
        let mut shard_engines = self.shard_engines.lock();
        for engine in shard_engines.values_mut() {
            // Parked engines wait on the shard condvar, not the gate: bump
            // so they re-check `is_shutdown` immediately.
            engine.wake.bump();
            if let Some(h) = engine.handle.take() {
                let _ = h.join();
            }
        }
        drop(shard_engines);
        let mut threads = self.threads.lock();
        for h in threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System").field("env", &self.env).finish()
    }
}

/// The demand-driven engine of one help shard.
///
/// Each sweep ticks every task whose demand is pending, entering the step
/// gate as the task's process for the tick (so lockstep scheduling and the
/// paper's process identities are preserved even though many processes'
/// tasks share the thread). A sweep that ticked nothing parks on the
/// shard's wake counter until the epoch moves — begun/finished demands and
/// newly attached tasks all bump it, so the engine never sleeps through
/// work and never spins while quiet.
fn shard_help_loop(env: &Env, wake: &Arc<ShardWake>, tasks: &ShardTaskList) {
    while !env.is_shutdown() {
        let seen = wake.epoch.load(Ordering::Acquire);
        let mut ticked = false;
        let count = tasks.lock().len();
        for i in 0..count {
            if env.is_shutdown() {
                return;
            }
            // Take the task out for the tick so concurrent attaches are not
            // blocked (ticks perform gated steps that can block).
            let taken = {
                let mut guard = tasks.lock();
                let slot = &mut guard[i];
                slot.demand
                    .is_pending()
                    .then(|| (slot.pid, std::mem::replace(&mut slot.task, Box::new(|| {}))))
            };
            let Some((pid, mut task)) = taken else { continue };
            env.run_as(pid, || {
                task.tick();
                // Park at the gate once per tick: idle shard engines are
                // deregistered entirely, busy ones yield fairly.
                gate::idle_step(&env.gate());
            });
            tasks.lock()[i].task = task;
            ticked = true;
        }
        if ticked {
            std::thread::yield_now();
            continue;
        }
        // Quiet: no participation is held here, so lockstep systems keep
        // dispatching among the remaining participants while we park.
        let mut guard = wake.lock.lock();
        while wake.epoch.load(Ordering::Acquire) == seen && !env.is_shutdown() {
            // The timeout is belt-and-braces against a missed shutdown
            // bump; every demand transition bumps the epoch, so real work
            // never waits on it.
            wake.cv.wait_for(&mut guard, Duration::from_millis(25));
        }
    }
}

fn help_engine_loop(env: Env, pid: ProcessId, tasks: TaskList) {
    let _participation = Participation::enter(env.gate(), pid);
    while !env.is_shutdown() {
        // Tick every attached task once per engine round. New tasks may be
        // attached concurrently; index-based access keeps the lock windows
        // short (a task must not be ticked while the list lock is held, since
        // ticks perform gated steps that can block).
        let count = tasks.lock().len();
        for i in 0..count {
            if env.is_shutdown() {
                return;
            }
            // Temporarily take the task out so other engine users (none
            // today, but attach is concurrent) are not blocked.
            let mut task = {
                let mut guard = tasks.lock();
                std::mem::replace(&mut guard[i], Box::new(|| {}))
            };
            task.tick();
            tasks.lock()[i] = task;
        }
        // Park at the gate once per round, so idle engines keep the lockstep
        // dispatch condition satisfiable and busy engines yield fairly.
        gate::idle_step(&env.gate());
        // Under free scheduling the engine would otherwise monopolize a core.
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_defaults_f_to_floor_n_minus_1_over_3() {
        assert_eq!(System::builder(4).build().env().f(), 1);
        assert_eq!(System::builder(7).build().env().f(), 2);
        assert_eq!(System::builder(3).build().env().f(), 0);
        assert_eq!(System::builder(10).build().env().f(), 3);
    }

    #[test]
    fn quorums_match_the_paper() {
        let s = System::builder(7).build();
        assert_eq!(s.env().n_minus_f(), 5);
        assert_eq!(s.env().f() + 1, 3);
    }

    #[test]
    fn help_tasks_run_until_shutdown() {
        let s = System::builder(4).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 10 {
            assert!(std::time::Instant::now() < deadline, "help task did not run");
            std::thread::yield_now();
        }
        s.shutdown();
        let after = count.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(count.load(Ordering::SeqCst), after, "tasks must stop after shutdown");
    }

    #[test]
    fn byzantine_processes_get_no_help_tasks() {
        let s = System::builder(4).byzantine(ProcessId::new(2)).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    #[should_panic(expected = "declared correct")]
    fn correct_processes_cannot_be_adversaries() {
        let s = System::builder(4).build();
        s.spawn_byzantine(ProcessId::new(2), || true);
    }

    #[test]
    fn byzantine_behavior_can_stop_itself() {
        let s = System::builder(4).byzantine(ProcessId::new(3)).build();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.spawn_byzantine(ProcessId::new(3), move || c.fetch_add(1, Ordering::SeqCst) < 4);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(count.load(Ordering::SeqCst), 5);
        s.shutdown();
    }

    #[test]
    fn lockstep_system_runs_help_and_ops_together() {
        let s = System::builder(4).scheduling(Scheduling::Lockstep(5)).build();
        let env = s.env().clone();
        let (w, r) = crate::register::swmr(env.gate(), ProcessId::new(1), "R", 0u32);
        // Help task of p2 copies R into a counter.
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let r2 = r.clone();
        s.add_help_task(
            ProcessId::new(2),
            Box::new(move || {
                seen2.store(r2.read() as usize, Ordering::SeqCst);
            }),
        );
        env.run_as(ProcessId::new(1), || {
            w.write(9);
            // Spin (as a participant) until the helper observes the write.
            while seen.load(Ordering::SeqCst) != 9 {
                let _ = r.read();
                if env.is_shutdown() {
                    break;
                }
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 9);
        s.shutdown();
    }

    #[test]
    fn quiet_shard_parks_while_busy_shard_progresses() {
        // The demand-driven guarantee: a shard with no pending quorum round
        // does not tick its tasks at all, while a shard with demand makes
        // continuous progress.
        let s = System::builder(4).build();
        let quiet = s.new_help_shard();
        let busy = s.new_help_shard();
        let quiet_demand = quiet.new_demand();
        let busy_demand = busy.new_demand();
        let quiet_ticks = Arc::new(AtomicUsize::new(0));
        let busy_ticks = Arc::new(AtomicUsize::new(0));
        let (qc, bc) = (Arc::clone(&quiet_ticks), Arc::clone(&busy_ticks));
        s.add_sharded_help_task(
            &quiet,
            ProcessId::new(2),
            &quiet_demand,
            Box::new(move || {
                qc.fetch_add(1, Ordering::SeqCst);
            }),
        );
        s.add_sharded_help_task(
            &busy,
            ProcessId::new(3),
            &busy_demand,
            Box::new(move || {
                bc.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let _op = busy_demand.begin();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while busy_ticks.load(Ordering::SeqCst) < 20 {
            assert!(std::time::Instant::now() < deadline, "busy shard made no progress");
            std::thread::yield_now();
        }
        assert_eq!(quiet_ticks.load(Ordering::SeqCst), 0, "a quiet shard must not tick");
        assert_eq!(s.help_engine_threads(), 2);
        s.shutdown();
    }

    #[test]
    fn sharded_tasks_stop_ticking_once_demand_ends() {
        let s = System::builder(4).build();
        let shard = s.new_help_shard();
        let demand = shard.new_demand();
        let ticks = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&ticks);
        s.add_sharded_help_task(
            &shard,
            ProcessId::new(2),
            &demand,
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let guard = demand.begin();
        assert!(demand.is_pending());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ticks.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline, "pending demand must be served");
            std::thread::yield_now();
        }
        drop(guard);
        assert!(!demand.is_pending());
        // Let the engine observe the drop and park; ticks must then stop.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let after = ticks.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(ticks.load(Ordering::SeqCst), after, "engine must park once demand ends");
        s.shutdown();
    }

    #[test]
    fn byzantine_processes_get_no_sharded_help_tasks() {
        let s = System::builder(4).byzantine(ProcessId::new(2)).build();
        let shard = s.new_help_shard();
        let demand = shard.new_demand();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.add_sharded_help_task(
            &shard,
            ProcessId::new(2),
            &demand,
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let _op = demand.begin();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(s.help_engine_threads(), 0, "a shard of dropped tasks spawns no engine");
        s.shutdown();
    }

    #[test]
    fn one_shard_engine_serves_many_tasks_of_many_processes() {
        let s = System::builder(4).build();
        let shard = s.new_help_shard();
        let demand = shard.new_demand();
        let count = Arc::new(AtomicUsize::new(0));
        for i in 1..=4 {
            let c = Arc::clone(&count);
            s.add_sharded_help_task(
                &shard,
                ProcessId::new(i),
                &demand,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert_eq!(s.help_engine_threads(), 1, "one engine thread per shard, not per process");
        let _op = demand.begin();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "all four tasks must tick");
            std::thread::yield_now();
        }
        s.shutdown();
    }

    #[test]
    fn lockstep_system_supports_sharded_helping() {
        // A demand-gated helper under the deterministic scheduler: the
        // engine registers with the gate only while ticking, so a parked
        // shard never blocks lockstep dispatch.
        let s = System::builder(4).scheduling(Scheduling::Lockstep(9)).build();
        let env = s.env().clone();
        let shard = s.new_help_shard();
        let demand = shard.new_demand();
        let (w, r) = crate::register::swmr(env.gate(), ProcessId::new(1), "R", 0u32);
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let r2 = r.clone();
        s.add_sharded_help_task(
            &shard,
            ProcessId::new(2),
            &demand,
            Box::new(move || {
                seen2.store(r2.read() as usize, Ordering::SeqCst);
            }),
        );
        env.run_as(ProcessId::new(1), || {
            w.write(9);
            let _op = demand.begin();
            while seen.load(Ordering::SeqCst) != 9 {
                let _ = r.read();
                if env.is_shutdown() {
                    break;
                }
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 9);
        s.shutdown();
    }

    #[test]
    fn check_running_reports_shutdown() {
        let s = System::builder(4).build();
        assert!(s.env().check_running().is_ok());
        s.shutdown();
        assert_eq!(s.env().check_running(), Err(Error::Shutdown));
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn require_n_gt_3f_rejects_small_systems() {
        let s = System::builder(3).resilience(1).build();
        s.env().require_n_gt_3f();
    }
}
