//! Process identifiers.
//!
//! The paper indexes processes `p1 .. pn`, with `p1` conventionally playing
//! the *writer* role of a SWMR register and `p2 .. pn` the *readers*. We keep
//! the same 1-based convention so code can be compared to the pseudocode
//! line by line.

use std::fmt;

/// Identifier of a process in a system of `n` processes.
///
/// Process ids are 1-based (`p1 ..= pn`), matching the paper's notation.
///
/// # Examples
///
/// ```
/// use byzreg_runtime::ProcessId;
///
/// let p1 = ProcessId::new(1);
/// assert_eq!(p1.index(), 1);
/// assert_eq!(p1.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero; the paper's processes are `p1 ..= pn`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index >= 1, "process ids are 1-based (p1 ..= pn)");
        ProcessId(index)
    }

    /// The 1-based index of this process (`p3` has index `3`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Zero-based index, convenient for `Vec` storage.
    #[must_use]
    pub fn zero_based(self) -> usize {
        self.0 - 1
    }

    /// Returns `true` if this process is `p1`, the conventional writer.
    #[must_use]
    pub fn is_writer(self) -> bool {
        self.0 == 1
    }

    /// Iterator over all process ids `p1 ..= pn`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (1..=n).map(ProcessId)
    }

    /// Iterator over the reader ids `p2 ..= pn`.
    pub fn readers(n: usize) -> impl Iterator<Item = ProcessId> {
        (2..=n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A mapping between the *role indices* of an algorithm (where the writer is
/// conventionally role 1 and readers are roles `2..=n`) and the *actual*
/// process ids of the hosting system.
///
/// The pseudocode of Algorithms 1–3 names the writer `p1`; applications such
/// as broadcast install one register per sender, so any process must be able
/// to play the writer role. A `Roles` permutation keeps the algorithm code
/// written in role indices while the system sees actual ids.
///
/// # Examples
///
/// ```
/// use byzreg_runtime::{ProcessId, Roles};
///
/// let roles = Roles::with_writer(4, ProcessId::new(3));
/// assert_eq!(roles.actual(1), ProcessId::new(3)); // p3 plays the writer
/// assert_eq!(roles.role_of(ProcessId::new(3)), 1);
/// assert_eq!(roles.role_of(ProcessId::new(1)), 2); // p1 is a reader role
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Roles {
    /// `actual[i]` is the process playing role `i + 1`.
    actual: Vec<ProcessId>,
}

impl Roles {
    /// The identity mapping: role `i` is process `p_i`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Roles { actual: ProcessId::all(n).collect() }
    }

    /// `writer` plays role 1; the remaining processes fill roles `2..=n` in
    /// ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is out of range.
    #[must_use]
    pub fn with_writer(n: usize, writer: ProcessId) -> Self {
        assert!(writer.index() <= n, "{writer} out of range for n = {n}");
        let mut actual = vec![writer];
        actual.extend(ProcessId::all(n).filter(|p| *p != writer));
        Roles { actual }
    }

    /// The process playing 1-based `role`.
    #[must_use]
    pub fn actual(&self, role: usize) -> ProcessId {
        self.actual[role - 1]
    }

    /// The 1-based role played by `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not part of the mapping.
    #[must_use]
    pub fn role_of(&self, pid: ProcessId) -> usize {
        self.actual
            .iter()
            .position(|p| *p == pid)
            .map(|i| i + 1)
            .unwrap_or_else(|| panic!("{pid} not in role mapping"))
    }

    /// The process playing the writer role.
    #[must_use]
    pub fn writer(&self) -> ProcessId {
        self.actual[0]
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.actual.len()
    }
}

impl From<ProcessId> for usize {
    fn from(pid: ProcessId) -> usize {
        pid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_based_indexing() {
        let p = ProcessId::new(5);
        assert_eq!(p.index(), 5);
        assert_eq!(p.zero_based(), 4);
        assert!(!p.is_writer());
        assert!(ProcessId::new(1).is_writer());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_is_rejected() {
        let _ = ProcessId::new(0);
    }

    #[test]
    fn all_and_readers_enumerate_expected_ranges() {
        let all: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], ProcessId::new(1));
        assert_eq!(all[3], ProcessId::new(4));

        let readers: Vec<_> = ProcessId::readers(4).collect();
        assert_eq!(readers.len(), 3);
        assert!(readers.iter().all(|p| !p.is_writer()));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProcessId::new(7).to_string(), "p7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(2) < ProcessId::new(10));
    }
}
