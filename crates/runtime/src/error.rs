//! Error type shared by all operations on implemented objects.

use std::error::Error as StdError;
use std::fmt;

/// Errors returned by operations on implemented objects.
///
/// The algorithms in the paper guarantee that every operation by a correct
/// process terminates *in an infinite fair run*. Real test executions are
/// finite, so operations can also end because the hosting [`System`] was shut
/// down, or because a watchdog concluded that no progress is possible (which,
/// for a correct implementation, indicates a harness bug rather than an
/// algorithm bug).
///
/// [`System`]: crate::System
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Error {
    /// The system was shut down while the operation was in progress.
    Shutdown,
    /// A deterministic-scheduler watchdog fired: no participant made a step
    /// for the configured wall-clock budget.
    Stalled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Shutdown => write!(f, "system shut down during operation"),
            Error::Stalled => write!(f, "scheduler watchdog: no step for the wall-clock budget"),
        }
    }
}

impl StdError for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let msgs = [Error::Shutdown.to_string(), Error::Stalled.to_string()];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
