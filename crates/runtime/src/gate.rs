//! Step gates: pluggable schedulers for shared-memory steps.
//!
//! Every access to a shared register (see [`crate::register`]) is one *step*
//! in the sense of the paper's model (§3.3). A [`StepGate`] decides when the
//! calling thread may perform its next step:
//!
//! * [`FreeGate`] lets threads run at full speed (wall-clock concurrency) —
//!   used by benchmarks and examples. An optional *chaos* mode injects seeded
//!   yields/sleeps to shake out interleavings under real parallelism.
//! * [`LockstepGate`] serializes all steps: at any instant exactly one
//!   registered participant runs, chosen uniformly at random with a seeded
//!   RNG once every participant is parked at the gate. Executions are
//!   deterministic for a given seed, and the uniform choice is fair with
//!   probability 1, matching the paper's assumption that correct processes
//!   take infinitely many steps.
//!
//! Threads that perform steps must *participate* in the gate for the duration
//! of their activity (see [`Participation`]); non-participating threads pass
//! through without gating, so registers remain usable from plain test code.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pid::ProcessId;

/// Global source of unique gate ids, used to match thread-local
/// participations to gate instances.
static GATE_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The participation of the current thread, if any.
    static CURRENT: RefCell<Option<(u64 /* gate id */, ProcessId, u64 /* token */)>> =
        const { RefCell::new(None) };
}

/// A scheduler for shared-memory steps.
///
/// Implementations must be fair: every participant that keeps requesting
/// turns is granted infinitely many of them in an infinite execution.
pub trait StepGate: Send + Sync + 'static {
    /// Unique id of this gate instance.
    fn id(&self) -> u64;

    /// Registers the calling thread as a participant acting for `pid`, and
    /// returns an opaque token identifying the thread within the gate.
    fn register(&self, pid: ProcessId) -> u64;

    /// Removes a participant. Must be called exactly once per `register`.
    fn deregister(&self, token: u64);

    /// Blocks until the participant identified by `token` may take a step.
    ///
    /// After the step's shared-memory access completes the caller must invoke
    /// [`StepGate::release_turn`]. Returns immediately once shutdown has been
    /// requested.
    fn wait_turn(&self, token: u64);

    /// Signals that the step started by [`StepGate::wait_turn`] finished.
    fn release_turn(&self, token: u64);

    /// Requests shutdown: all parked participants are released and further
    /// steps pass through ungated.
    fn request_shutdown(&self);

    /// Returns `true` once shutdown has been requested.
    fn is_shutdown(&self) -> bool;

    /// Total number of steps granted so far (ungated steps included).
    fn steps(&self) -> u64;
}

/// RAII participation of the current thread in a gate.
///
/// Created by [`Participation::enter`]; restores the previous participation
/// (if any) when dropped, so nested operations of the same process can share
/// a thread.
pub struct Participation {
    gate: Arc<dyn StepGate>,
    token: Option<u64>,
    prev: Option<(u64, ProcessId, u64)>,
}

impl Participation {
    /// Registers the current thread with `gate` as process `pid`.
    ///
    /// If the thread already participates in the *same* gate (nested
    /// operation), the existing registration is reused and no second
    /// participant is added.
    pub fn enter(gate: Arc<dyn StepGate>, pid: ProcessId) -> Participation {
        let prev = CURRENT.with(|c| *c.borrow());
        if let Some((gid, _, _)) = prev {
            if gid == gate.id() {
                // Nested: keep the outer registration.
                return Participation { gate, token: None, prev: None };
            }
        }
        let token = gate.register(pid);
        CURRENT.with(|c| *c.borrow_mut() = Some((gate.id(), pid, token)));
        Participation { gate, token: Some(token), prev }
    }

    /// The process this thread is acting for, if it participates anywhere.
    pub fn current_pid() -> Option<ProcessId> {
        CURRENT.with(|c| c.borrow().map(|(_, pid, _)| pid))
    }
}

impl Drop for Participation {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            self.gate.deregister(token);
            CURRENT.with(|c| *c.borrow_mut() = self.prev);
        }
    }
}

/// Runs `f` as one gated step against `gate`.
///
/// If the current thread participates in `gate`, the call blocks until the
/// scheduler grants a turn and releases it afterwards (also on panic).
/// Non-participating threads run `f` immediately.
pub fn step<R>(gate: &Arc<dyn StepGate>, f: impl FnOnce() -> R) -> R {
    let token = CURRENT
        .with(|c| c.borrow().and_then(|(gid, _, token)| (gid == gate.id()).then_some(token)));
    match token {
        Some(token) => {
            struct Release<'a>(&'a dyn StepGate, u64);
            impl Drop for Release<'_> {
                fn drop(&mut self) {
                    self.0.release_turn(self.1);
                }
            }
            gate.wait_turn(token);
            let _release = Release(&**gate, token);
            f()
        }
        None => f(),
    }
}

/// Performs an idle step: parks at the gate without touching shared memory.
///
/// Background loops (help engines, adversaries) call this once per iteration
/// so that, under a [`LockstepGate`], they count as parked while they have
/// nothing to do, keeping the lockstep dispatch condition satisfiable.
pub fn idle_step(gate: &Arc<dyn StepGate>) {
    step(gate, || {});
}

// ---------------------------------------------------------------------------
// FreeGate
// ---------------------------------------------------------------------------

/// A pass-through gate: steps run immediately with no scheduling.
///
/// With [`FreeGate::chaotic`], seeded pseudo-random yields and micro-sleeps
/// are injected to diversify thread interleavings under real concurrency.
pub struct FreeGate {
    id: u64,
    steps: AtomicU64,
    shutdown: std::sync::atomic::AtomicBool,
    chaos_seed: Option<u64>,
    participants: AtomicU64,
}

impl FreeGate {
    /// Creates a gate that never blocks or yields.
    #[must_use]
    pub fn new() -> Self {
        FreeGate {
            id: GATE_IDS.fetch_add(1, Ordering::Relaxed),
            steps: AtomicU64::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            chaos_seed: None,
            participants: AtomicU64::new(0),
        }
    }

    /// Creates a gate that injects seeded scheduling noise.
    #[must_use]
    pub fn chaotic(seed: u64) -> Self {
        FreeGate { chaos_seed: Some(seed), ..FreeGate::new() }
    }
}

impl Default for FreeGate {
    fn default() -> Self {
        Self::new()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl StepGate for FreeGate {
    fn id(&self) -> u64 {
        self.id
    }

    fn register(&self, _pid: ProcessId) -> u64 {
        self.participants.fetch_add(1, Ordering::Relaxed)
    }

    fn deregister(&self, _token: u64) {}

    fn wait_turn(&self, token: u64) {
        let n = self.steps.fetch_add(1, Ordering::Relaxed);
        if let Some(seed) = self.chaos_seed {
            let h = splitmix64(seed ^ n ^ token.rotate_left(32));
            if h % 7 == 0 {
                std::thread::yield_now();
            }
            if h % 611 == 0 {
                std::thread::sleep(Duration::from_micros(h % 97));
            }
        }
    }

    fn release_turn(&self, _token: u64) {}

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// LockstepGate
// ---------------------------------------------------------------------------

struct LockstepState {
    participants: HashMap<u64, ProcessId>,
    /// Tokens parked at the gate. A sorted set makes the seeded pick depend
    /// only on *which* participants are parked, not on their racy arrival
    /// order, so executions are reproducible whenever participant identities
    /// are (tokens are derived from `(pid, per-pid sequence)`).
    waiting: std::collections::BTreeSet<u64>,
    granted: Option<u64>,
    rng: StdRng,
    shutdown: bool,
    steps: u64,
    per_pid_seq: HashMap<ProcessId, u64>,
}

impl LockstepState {
    /// Grants the next step if every live participant is parked.
    fn maybe_dispatch(&mut self) -> bool {
        if self.shutdown || self.granted.is_some() || self.waiting.is_empty() {
            return false;
        }
        if self.waiting.len() < self.participants.len() {
            return false;
        }
        let idx = self.rng.random_range(0..self.waiting.len());
        let token = *self.waiting.iter().nth(idx).expect("non-empty");
        self.waiting.remove(&token);
        self.granted = Some(token);
        self.steps += 1;
        true
    }
}

/// A deterministic serial scheduler.
///
/// At most one participant performs a shared-memory step at any time. The
/// next participant is drawn uniformly (seeded) from the parked set once
/// *all* participants are parked, so for a fixed seed and deterministic
/// participant code the whole execution is reproducible.
///
/// A wall-clock watchdog (default 20 s) detects harness deadlocks: if no step
/// is granted for the budget while a thread waits, the gate shuts down and
/// the waiting threads panic with a state dump.
pub struct LockstepGate {
    id: u64,
    state: Mutex<LockstepState>,
    cv: Condvar,
    watchdog: Duration,
}

impl LockstepGate {
    /// Creates a lockstep gate with the given scheduling seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        LockstepGate::with_watchdog(seed, Duration::from_secs(20))
    }

    /// Creates a lockstep gate with a custom watchdog budget.
    #[must_use]
    pub fn with_watchdog(seed: u64, watchdog: Duration) -> Self {
        LockstepGate {
            id: GATE_IDS.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(LockstepState {
                participants: HashMap::new(),
                waiting: std::collections::BTreeSet::new(),
                granted: None,
                rng: StdRng::seed_from_u64(seed),
                shutdown: false,
                steps: 0,
                per_pid_seq: HashMap::new(),
            }),
            cv: Condvar::new(),
            watchdog,
        }
    }
}

impl StepGate for LockstepGate {
    fn id(&self) -> u64 {
        self.id
    }

    fn register(&self, pid: ProcessId) -> u64 {
        let mut s = self.state.lock();
        let seq = s.per_pid_seq.entry(pid).or_insert(0);
        *seq += 1;
        // Stable token: depends only on the pid and how many threads of that
        // pid have registered so far, not on cross-pid timing.
        let token = (pid.index() as u64) << 32 | *seq;
        s.participants.insert(token, pid);
        token
    }

    fn deregister(&self, token: u64) {
        let mut s = self.state.lock();
        s.participants.remove(&token);
        s.waiting.remove(&token);
        if s.granted == Some(token) {
            s.granted = None;
        }
        if s.maybe_dispatch() {
            self.cv.notify_all();
        }
    }

    fn wait_turn(&self, token: u64) {
        let mut s = self.state.lock();
        if s.shutdown {
            return;
        }
        s.waiting.insert(token);
        loop {
            if s.maybe_dispatch() {
                self.cv.notify_all();
            }
            if s.granted == Some(token) {
                return;
            }
            if s.shutdown {
                s.waiting.remove(&token);
                return;
            }
            let before = s.steps;
            let timed_out = self.cv.wait_for(&mut s, self.watchdog).timed_out();
            if timed_out && s.steps == before && !s.shutdown {
                let dump = format!(
                    "lockstep watchdog: no step for {:?}; participants={:?} waiting={:?} granted={:?}",
                    self.watchdog,
                    s.participants,
                    s.waiting,
                    s.granted
                );
                s.shutdown = true;
                self.cv.notify_all();
                drop(s);
                panic!("{dump}");
            }
        }
    }

    fn release_turn(&self, token: u64) {
        let mut s = self.state.lock();
        if s.granted == Some(token) {
            s.granted = None;
        }
        if s.maybe_dispatch() {
            self.cv.notify_all();
        }
    }

    fn request_shutdown(&self) {
        let mut s = self.state.lock();
        s.shutdown = true;
        self.cv.notify_all();
    }

    fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }

    fn steps(&self) -> u64 {
        self.state.lock().steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn free_gate_counts_steps() {
        let gate: Arc<dyn StepGate> = Arc::new(FreeGate::new());
        let p = Participation::enter(Arc::clone(&gate), ProcessId::new(1));
        for _ in 0..10 {
            step(&gate, || {});
        }
        drop(p);
        assert_eq!(gate.steps(), 10);
    }

    #[test]
    fn non_participant_passes_through() {
        let gate: Arc<dyn StepGate> = Arc::new(LockstepGate::new(7));
        // No participation: must not block even though nobody schedules us.
        let out = step(&gate, || 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn lockstep_serializes_steps() {
        let gate: Arc<dyn StepGate> = Arc::new(LockstepGate::new(42));
        let in_step = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 1..=4 {
            let gate = Arc::clone(&gate);
            let in_step = Arc::clone(&in_step);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                let _p = Participation::enter(Arc::clone(&gate), ProcessId::new(i));
                for _ in 0..200 {
                    step(&gate, || {
                        let now = in_step.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        in_step.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "steps must never overlap");
        assert_eq!(gate.steps(), 800);
    }

    #[test]
    fn lockstep_is_deterministic_for_a_seed() {
        // Record the order in which four threads' steps are granted, twice,
        // and require identical sequences. All threads register before the
        // first step (barrier): determinism is guaranteed for synchronized
        // participant sets.
        fn run(seed: u64) -> Vec<usize> {
            let gate: Arc<dyn StepGate> = Arc::new(LockstepGate::new(seed));
            let order = Arc::new(Mutex::new(Vec::new()));
            let barrier = Arc::new(std::sync::Barrier::new(4));
            let mut handles = Vec::new();
            for i in 1..=4 {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                let barrier = Arc::clone(&barrier);
                handles.push(std::thread::spawn(move || {
                    let _p = Participation::enter(Arc::clone(&gate), ProcessId::new(i));
                    barrier.wait();
                    for _ in 0..50 {
                        step(&gate, || order.lock().push(i));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let v = order.lock().clone();
            v
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn shutdown_releases_parked_threads() {
        let gate: Arc<dyn StepGate> = Arc::new(LockstepGate::new(1));
        let g2 = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let _p = Participation::enter(Arc::clone(&g2), ProcessId::new(1));
            // Two participants are needed for dispatch, but only one exists
            // in a waiting state forever -> would block without shutdown.
            let g3 = Arc::clone(&g2);
            let _blocker = Participation::enter(g3, ProcessId::new(1));
            // Spawn a second registered-but-never-stepping participant to
            // prevent dispatch.
            let token = g2.register(ProcessId::new(2));
            let waiter = std::thread::spawn({
                let g = Arc::clone(&g2);
                move || {
                    g.wait_turn(token); // granted first (both parked)
                    g.release_turn(token);
                    // Never steps again; still registered => blocks others.
                    std::thread::sleep(Duration::from_millis(100));
                    g.deregister(token);
                }
            });
            std::thread::sleep(Duration::from_millis(20));
            // This would deadlock if shutdown did not release us, because the
            // other participant never parks again.
            g2.request_shutdown();
            step(&g2, || {});
            waiter.join().unwrap();
        });
        h.join().unwrap();
        assert!(gate.is_shutdown());
    }

    #[test]
    fn participation_nests_within_one_gate() {
        let gate: Arc<dyn StepGate> = Arc::new(FreeGate::new());
        let outer = Participation::enter(Arc::clone(&gate), ProcessId::new(3));
        assert_eq!(Participation::current_pid(), Some(ProcessId::new(3)));
        {
            let _inner = Participation::enter(Arc::clone(&gate), ProcessId::new(3));
            assert_eq!(Participation::current_pid(), Some(ProcessId::new(3)));
        }
        // Outer participation survives the inner drop.
        assert_eq!(Participation::current_pid(), Some(ProcessId::new(3)));
        drop(outer);
        assert_eq!(Participation::current_pid(), None);
    }
}
