//! History recording: a global total order of invocation/response events.
//!
//! The correctness notion of the paper — Byzantine linearizability
//! (Definitions 6–9) — is a property of *histories*. Every operation handle
//! in this workspace records its invocation and response into a
//! [`HistoryLog`], stamped by a [`Clock`] shared across all objects of a
//! system, so that the real-time precedence relation between operations
//! (Definition 1) is captured exactly.
//!
//! Only the steps of *correct* processes are recorded through operation
//! handles, so a recorded history is `H|correct` in the paper's notation
//! (Definition 6) — precisely the projection that the Byzantine
//! linearizability checker in `byzreg-spec` consumes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::pid::ProcessId;

/// A monotone global event clock.
///
/// `tick()` returns strictly increasing values whose order is consistent
/// with real time (it is a single atomic `fetch_add`).
#[derive(Clone, Debug, Default)]
pub struct Clock(Arc<AtomicU64>);

impl Clock {
    /// Creates a clock starting at time `1`.
    #[must_use]
    pub fn new() -> Self {
        Clock(Arc::new(AtomicU64::new(1)))
    }

    /// Returns the next timestamp.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }

    /// The current time (next timestamp to be issued).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Identifier of one recorded operation within a log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct OpToken(u64);

impl OpToken {
    /// Creates a token with an explicit id (useful for synthesizing
    /// operations, e.g. the writer-op augmentation of the Byzantine
    /// linearizability checker).
    #[must_use]
    pub fn synthetic(id: u64) -> Self {
        OpToken(id)
    }
}

/// A single invocation or response event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<I, R> {
    /// Global timestamp from the shared [`Clock`].
    pub time: u64,
    /// The process performing the event.
    pub pid: ProcessId,
    /// Operation id linking invocations to responses.
    pub op: OpToken,
    /// Payload.
    pub kind: EventKind<I, R>,
}

/// Payload of an [`Event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<I, R> {
    /// An operation was invoked.
    Invoke(I),
    /// An operation returned.
    Respond(R),
}

/// A matched invocation/response pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompleteOp<I, R> {
    /// Operation id.
    pub op: OpToken,
    /// The invoking process.
    pub pid: ProcessId,
    /// Invocation time (global clock).
    pub invoked_at: u64,
    /// Response time (global clock).
    pub responded_at: u64,
    /// What was invoked.
    pub invocation: I,
    /// What it returned.
    pub response: R,
}

impl<I, R> CompleteOp<I, R> {
    /// `true` if this operation's response precedes `other`'s invocation
    /// (Definition 1: `o` precedes `o'`).
    #[must_use]
    pub fn precedes(&self, other: &CompleteOp<I, R>) -> bool {
        self.responded_at < other.invoked_at
    }
}

struct LogInner<I, R> {
    events: Vec<Event<I, R>>,
    next_op: u64,
}

/// An append-only log of operation events for one implemented object.
///
/// # Examples
///
/// ```
/// use byzreg_runtime::{Clock, HistoryLog, ProcessId};
///
/// let clock = Clock::new();
/// let log: HistoryLog<&str, bool> = HistoryLog::new(clock);
/// let op = log.invoke(ProcessId::new(2), "verify(v)");
/// log.respond(op, ProcessId::new(2), true);
/// let ops = log.complete_ops();
/// assert_eq!(ops.len(), 1);
/// assert_eq!(ops[0].response, true);
/// ```
pub struct HistoryLog<I, R> {
    clock: Clock,
    inner: Arc<Mutex<LogInner<I, R>>>,
}

impl<I, R> Clone for HistoryLog<I, R> {
    fn clone(&self) -> Self {
        HistoryLog { clock: self.clock.clone(), inner: Arc::clone(&self.inner) }
    }
}

impl<I: Clone, R: Clone> HistoryLog<I, R> {
    /// Creates a log stamped by `clock`.
    #[must_use]
    pub fn new(clock: Clock) -> Self {
        HistoryLog {
            clock,
            inner: Arc::new(Mutex::new(LogInner { events: Vec::new(), next_op: 1 })),
        }
    }

    /// Records an invocation and returns its token.
    pub fn invoke(&self, pid: ProcessId, invocation: I) -> OpToken {
        let mut inner = self.inner.lock();
        let op = OpToken(inner.next_op);
        inner.next_op += 1;
        let time = self.clock.tick();
        inner.events.push(Event { time, pid, op, kind: EventKind::Invoke(invocation) });
        op
    }

    /// Records the response of a previously invoked operation.
    pub fn respond(&self, op: OpToken, pid: ProcessId, response: R) {
        let time = self.clock.tick();
        self.inner.lock().events.push(Event { time, pid, op, kind: EventKind::Respond(response) });
    }

    /// All recorded events in timestamp order.
    #[must_use]
    pub fn events(&self) -> Vec<Event<I, R>> {
        let mut ev = self.inner.lock().events.clone();
        ev.sort_by_key(|e| e.time);
        ev
    }

    /// All *complete* operations (invocation matched with response), sorted
    /// by invocation time. Incomplete operations — e.g. aborted by shutdown —
    /// are dropped, which Definition 2 permits for a completion of a history.
    #[must_use]
    pub fn complete_ops(&self) -> Vec<CompleteOp<I, R>> {
        let inner = self.inner.lock();
        let mut pending: std::collections::HashMap<OpToken, (&Event<I, R>, &I)> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for e in &inner.events {
            match &e.kind {
                EventKind::Invoke(i) => {
                    pending.insert(e.op, (e, i));
                }
                EventKind::Respond(r) => {
                    if let Some((inv_event, inv)) = pending.remove(&e.op) {
                        out.push(CompleteOp {
                            op: e.op,
                            pid: inv_event.pid,
                            invoked_at: inv_event.time,
                            responded_at: e.time,
                            invocation: inv.clone(),
                            response: r.clone(),
                        });
                    }
                }
            }
        }
        out.sort_by_key(|o| o.invoked_at);
        out
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_strictly_increasing() {
        let c = Clock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert!(c.now() > b);
    }

    #[test]
    fn complete_ops_pairs_invocations_with_responses() {
        let log: HistoryLog<u32, u32> = HistoryLog::new(Clock::new());
        let p = ProcessId::new(2);
        let a = log.invoke(p, 1);
        let b = log.invoke(ProcessId::new(3), 2);
        log.respond(b, ProcessId::new(3), 20);
        log.respond(a, p, 10);
        let ops = log.complete_ops();
        assert_eq!(ops.len(), 2);
        // Sorted by invocation time: a was invoked first.
        assert_eq!(ops[0].invocation, 1);
        assert_eq!(ops[0].response, 10);
        assert_eq!(ops[1].response, 20);
        // b responded before a responded, and after a invoked => concurrent.
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn incomplete_ops_are_dropped() {
        let log: HistoryLog<&str, ()> = HistoryLog::new(Clock::new());
        let _dangling = log.invoke(ProcessId::new(2), "never returns");
        let done = log.invoke(ProcessId::new(3), "returns");
        log.respond(done, ProcessId::new(3), ());
        assert_eq!(log.complete_ops().len(), 1);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn precedence_matches_definition_1() {
        let log: HistoryLog<&str, ()> = HistoryLog::new(Clock::new());
        let a = log.invoke(ProcessId::new(2), "a");
        log.respond(a, ProcessId::new(2), ());
        let b = log.invoke(ProcessId::new(2), "b");
        log.respond(b, ProcessId::new(2), ());
        let ops = log.complete_ops();
        assert!(ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn logs_share_a_clock_for_cross_object_order() {
        let clock = Clock::new();
        let log1: HistoryLog<&str, ()> = HistoryLog::new(clock.clone());
        let log2: HistoryLog<&str, ()> = HistoryLog::new(clock);
        let a = log1.invoke(ProcessId::new(2), "on object 1");
        log1.respond(a, ProcessId::new(2), ());
        let b = log2.invoke(ProcessId::new(2), "on object 2");
        log2.respond(b, ProcessId::new(2), ());
        let o1 = &log1.complete_ops()[0];
        let o2 = &log2.complete_ops()[0];
        assert!(o1.responded_at < o2.invoked_at, "cross-object real-time order is preserved");
    }
}
