//! Atomic SWMR/SWSR base registers with structural single-writer enforcement.
//!
//! The paper's base objects (§3) are atomic single-writer multi-reader
//! registers. A register is materialized as a lock-backed cell; the *write
//! port* is only handed to the owning process, which captures the Remark of
//! §1: *"no process, even a Byzantine one, can access the 'write port' of any
//! SWMR register that it does not own."*
//!
//! Every access is one shared-memory *step* and passes through the system's
//! [`StepGate`](crate::gate::StepGate), so the deterministic scheduler can
//! serialize and reorder accesses.
//!
//! # Owner read-modify-write
//!
//! The pseudocode contains owner updates such as `R1 ← R1 ∪ {v}` (Alg. 1
//! line 5). In the paper each process is *sequential* — its operation steps
//! and its `Help()` steps interleave in a single stream — so such an update
//! can never race with another update by the same process. This runtime runs
//! a process's operations and its `Help()` procedure on different threads
//! (the proofs require `Help` to keep running *during* the process's own
//! operations, cf. Claim 40). [`WritePort::update`] performs the owner's
//! read-modify-write as a single step, which exactly recovers the paper's
//! sequential-process semantics without giving readers or other processes
//! any additional power.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::gate::{self, StepGate};
use crate::pid::ProcessId;

/// A pluggable register backend.
///
/// The default backend is an in-process lock-backed cell; `byzreg-mp`
/// provides a backend that runs each access through a message-passing
/// emulation of a SWMR register (Mostéfaoui–Petrolia–Raynal–Jard style),
/// which is how the paper's §1 claim — the register algorithms also work in
/// message-passing systems with `n > 3f` — is executed rather than merely
/// cited.
pub trait CellBackend<T>: Send + Sync {
    /// Atomically reads the register.
    fn load(&self) -> T;
    /// Atomically writes the register (owner only, by construction).
    fn store(&self, v: T);
    /// Owner read-modify-write (see the module docs on why the owner's RMW
    /// is one step). Returns the value after modification.
    fn rmw(&self, f: Box<dyn FnOnce(&mut T) + '_>) -> T;
}

struct LocalCell<T>(RwLock<T>);

impl<T: Clone + Send + Sync> CellBackend<T> for LocalCell<T> {
    fn load(&self) -> T {
        self.0.read().clone()
    }

    fn store(&self, v: T) {
        *self.0.write() = v;
    }

    fn rmw(&self, f: Box<dyn FnOnce(&mut T) + '_>) -> T {
        let mut guard = self.0.write();
        f(&mut guard);
        guard.clone()
    }
}

struct Cell<T> {
    name: String,
    owner: ProcessId,
    value: Box<dyn CellBackend<T>>,
    gate: Arc<dyn StepGate>,
}

/// The owner's handle to a SWMR register.
///
/// Cloning is allowed so the owner can use the register both from its
/// operation thread and from its `Help()` thread; constructors must hand all
/// clones to the owning process only.
pub struct WritePort<T> {
    cell: Arc<Cell<T>>,
}

/// A reader's handle to a SWMR register. Freely clonable.
pub struct ReadPort<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Clone for WritePort<T> {
    fn clone(&self) -> Self {
        WritePort { cell: Arc::clone(&self.cell) }
    }
}

impl<T> Clone for ReadPort<T> {
    fn clone(&self) -> Self {
        ReadPort { cell: Arc::clone(&self.cell) }
    }
}

impl<T: Clone + Send + Sync + 'static> WritePort<T> {
    /// Atomically writes `v` into the register (one step).
    pub fn write(&self, v: T) {
        gate::step(&self.cell.gate, || self.cell.value.store(v));
    }

    /// Reads the register (one step). Owners may read their own registers.
    #[must_use]
    pub fn read(&self) -> T {
        gate::step(&self.cell.gate, || self.cell.value.load())
    }

    /// Owner read-modify-write as a single step.
    ///
    /// See the module docs for why this is sound: it recovers the sequential
    /// interleaving of the owner's own accesses that the paper's model
    /// guarantees.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        gate::step(&self.cell.gate, || {
            let mut out = None;
            self.cell.value.rmw(Box::new(|v| out = Some(f(v))));
            out.expect("rmw closure ran")
        })
    }

    /// A read-only view of the same register.
    #[must_use]
    pub fn read_port(&self) -> ReadPort<T> {
        ReadPort { cell: Arc::clone(&self.cell) }
    }

    /// The owning process.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.cell.owner
    }

    /// The diagnostic name of the register (e.g. `"R[3]"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.cell.name
    }
}

impl<T: Clone + Send + Sync + 'static> ReadPort<T> {
    /// Atomically reads the register (one step).
    #[must_use]
    pub fn read(&self) -> T {
        gate::step(&self.cell.gate, || self.cell.value.load())
    }

    /// The owning (writing) process.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.cell.owner
    }

    /// The diagnostic name of the register.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.cell.name
    }
}

impl<T> fmt::Debug for WritePort<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WritePort({} owned by {})", self.cell.name, self.cell.owner)
    }
}

impl<T> fmt::Debug for ReadPort<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReadPort({} owned by {})", self.cell.name, self.cell.owner)
    }
}

/// Creates an atomic SWMR register owned by `owner` with initial value
/// `init`, gated by `gate`.
///
/// Returns the unique write port and a clonable read port. SWSR registers
/// (such as the paper's `R_{j,k}`) use the same cell type: simply hand the
/// read port to a single reader.
pub fn swmr<T: Clone + Send + Sync + 'static>(
    gate: Arc<dyn StepGate>,
    owner: ProcessId,
    name: impl Into<String>,
    init: T,
) -> (WritePort<T>, ReadPort<T>) {
    let cell = Arc::new(Cell {
        name: name.into(),
        owner,
        value: Box::new(LocalCell(RwLock::new(init))),
        gate,
    });
    (WritePort { cell: Arc::clone(&cell) }, ReadPort { cell })
}

/// Creates a register backed by a custom [`CellBackend`] — e.g. the
/// message-passing emulation of `byzreg-mp`. Semantics (single writer,
/// gated steps) are identical to [`swmr`].
pub fn custom_swmr<T: Clone + Send + Sync + 'static>(
    gate: Arc<dyn StepGate>,
    owner: ProcessId,
    name: impl Into<String>,
    backend: Box<dyn CellBackend<T>>,
) -> (WritePort<T>, ReadPort<T>) {
    let cell = Arc::new(Cell { name: name.into(), owner, value: backend, gate });
    (WritePort { cell: Arc::clone(&cell) }, ReadPort { cell })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::FreeGate;

    fn gate() -> Arc<dyn StepGate> {
        Arc::new(FreeGate::new())
    }

    #[test]
    fn read_your_write() {
        let (w, r) = swmr(gate(), ProcessId::new(1), "R*", 0u64);
        assert_eq!(r.read(), 0);
        w.write(17);
        assert_eq!(r.read(), 17);
        assert_eq!(w.read(), 17);
    }

    #[test]
    fn update_is_read_modify_write() {
        let (w, r) = swmr(gate(), ProcessId::new(1), "R1", Vec::<u32>::new());
        w.update(|set| set.push(1));
        w.update(|set| set.push(2));
        assert_eq!(r.read(), vec![1, 2]);
    }

    #[test]
    fn concurrent_owner_updates_do_not_lose_writes() {
        // Two threads of the *same* owner (op thread + help thread) racing on
        // R1 <- R1 ∪ {v}: update() must not lose elements.
        let (w, r) = swmr(gate(), ProcessId::new(1), "R1", std::collections::BTreeSet::new());
        let w2 = w.clone();
        let t = std::thread::spawn(move || {
            for i in 0..500u32 {
                w2.update(|s| {
                    s.insert(i * 2);
                });
            }
        });
        for i in 0..500u32 {
            w.update(|s| {
                s.insert(i * 2 + 1);
            });
        }
        t.join().unwrap();
        assert_eq!(r.read().len(), 1000);
    }

    #[test]
    fn ports_report_owner_and_name() {
        let (w, r) = swmr(gate(), ProcessId::new(4), "E[4]", 0u8);
        assert_eq!(w.owner(), ProcessId::new(4));
        assert_eq!(r.owner(), ProcessId::new(4));
        assert_eq!(w.name(), "E[4]");
        assert_eq!(format!("{r:?}"), "ReadPort(E[4] owned by p4)");
    }

    #[test]
    fn every_access_is_a_gated_step() {
        let g: Arc<dyn StepGate> = Arc::new(FreeGate::new());
        let (w, r) = swmr(Arc::clone(&g), ProcessId::new(1), "R", 0u8);
        let _p = crate::gate::Participation::enter(Arc::clone(&g), ProcessId::new(1));
        w.write(1);
        let _ = r.read();
        w.update(|x| *x += 1);
        assert_eq!(g.steps(), 3);
    }
}
