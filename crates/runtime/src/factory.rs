//! Register factories: where implemented objects get their base registers.
//!
//! The register algorithms of `byzreg-core` are written against
//! [`WritePort`]/[`ReadPort`] and obtain their base registers through a
//! [`RegisterFactory`]. The default [`LocalFactory`] produces in-process
//! shared-memory cells; `byzreg-mp` provides a factory whose cells are
//! message-passing emulations of SWMR registers — which makes the paper's
//! claim that the algorithms "can also be implemented in message-passing
//! systems with `n > 3f`" directly executable (experiment E6).

use crate::pid::ProcessId;
use crate::register::{swmr, ReadPort, WritePort};
use crate::system::Env;
use crate::Value;

/// A source of base SWMR registers.
pub trait RegisterFactory: Send + Sync {
    /// Creates a register owned by `owner`, named `name`, initialized to
    /// `init`, within the system described by `env`.
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>);

    /// Hints that registers created on this thread until
    /// [`RegisterFactory::close_group`] belong to one co-scheduling group
    /// `label` — e.g. all base registers of the keys in one store help
    /// shard. Backends may use it to drain the group's events in a single
    /// scheduler task run (as `byzreg-mp` does); the default ignores it.
    fn open_group(&self, _label: u64) {}

    /// Ends the group opened by [`RegisterFactory::open_group`] on this
    /// thread. The default ignores it.
    fn close_group(&self) {}
}

/// A shared reference to a factory is itself a factory, so long-lived
/// objects (e.g. a keyed register store instantiating one register per key)
/// can reuse one backend without owning it.
impl<F: RegisterFactory> RegisterFactory for &F {
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>) {
        (**self).create(env, owner, name, init)
    }

    fn open_group(&self, label: u64) {
        (**self).open_group(label);
    }

    fn close_group(&self) {
        (**self).close_group();
    }
}

/// `Arc`-shared factories, for components that must own their backend
/// handle (worker pools, stores that outlive the installing scope).
impl<F: RegisterFactory> RegisterFactory for std::sync::Arc<F> {
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>) {
        (**self).create(env, owner, name, init)
    }

    fn open_group(&self, label: u64) {
        (**self).open_group(label);
    }

    fn close_group(&self) {
        (**self).close_group();
    }
}

/// The default factory: in-process lock-backed atomic cells.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalFactory;

impl RegisterFactory for LocalFactory {
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>) {
        swmr(env.gate(), owner, name, init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    #[test]
    fn local_factory_produces_working_registers() {
        let sys = System::builder(4).build();
        let (w, r) = LocalFactory.create(sys.env(), ProcessId::new(2), "X".into(), 5u8);
        assert_eq!(r.read(), 5);
        w.write(6);
        assert_eq!(r.read(), 6);
        assert_eq!(w.owner(), ProcessId::new(2));
    }

    fn create_through<F: RegisterFactory>(factory: F, sys: &System) -> u8 {
        let (_w, r) = factory.create(sys.env(), ProcessId::new(1), "Y".into(), 9u8);
        r.read()
    }

    #[test]
    fn references_and_arcs_are_factories_too() {
        let sys = System::builder(4).build();
        // Explicitly typed so the blanket `&F` / `Arc<F>` impls (not
        // `LocalFactory` itself) are what `create_through` instantiates.
        let by_ref: &LocalFactory = &LocalFactory;
        let by_ref_ref: &&LocalFactory = &by_ref;
        assert_eq!(create_through(by_ref, &sys), 9);
        assert_eq!(create_through(by_ref_ref, &sys), 9);
        assert_eq!(create_through(std::sync::Arc::new(LocalFactory), &sys), 9);
    }
}
