//! Register factories: where implemented objects get their base registers.
//!
//! The register algorithms of `byzreg-core` are written against
//! [`WritePort`]/[`ReadPort`] and obtain their base registers through a
//! [`RegisterFactory`]. The default [`LocalFactory`] produces in-process
//! shared-memory cells; `byzreg-mp` provides a factory whose cells are
//! message-passing emulations of SWMR registers — which makes the paper's
//! claim that the algorithms "can also be implemented in message-passing
//! systems with `n > 3f`" directly executable (experiment E6).

use crate::pid::ProcessId;
use crate::register::{swmr, ReadPort, WritePort};
use crate::system::Env;
use crate::Value;

/// A source of base SWMR registers.
pub trait RegisterFactory: Send + Sync {
    /// Creates a register owned by `owner`, named `name`, initialized to
    /// `init`, within the system described by `env`.
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>);
}

/// The default factory: in-process lock-backed atomic cells.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalFactory;

impl RegisterFactory for LocalFactory {
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>) {
        swmr(env.gate(), owner, name, init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    #[test]
    fn local_factory_produces_working_registers() {
        let sys = System::builder(4).build();
        let (w, r) = LocalFactory.create(sys.env(), ProcessId::new(2), "X".into(), 5u8);
        assert_eq!(r.read(), 5);
        w.write(6);
        assert_eq!(r.read(), 6);
        assert_eq!(w.owner(), ProcessId::new(2));
    }
}
