//! Seeded **adversarial delivery schedules** for the virtual-time network.
//!
//! Uniform jitter (the [`crate::net::NetConfig`] baseline) explores message
//! interleavings blindly; the scheduling corner cases the register proofs
//! actually fight — stale-quorum reads, writer/reader races, a reader cut
//! off until a quorum has already moved on — almost never arise from it. An
//! [`AdversaryPolicy`] is a deterministic, seeded policy layer over the
//! network's delivery heap that *targets* those corners: individual links
//! get programmable delay distributions, destinations get bounded
//! reordering windows, groups get temporary partitions that heal, and the
//! writer's message to a chosen victim can be held back until the rest of a
//! quorum has already replied.
//!
//! # What a policy may and may not do
//!
//! The network's assumptions (reliable authenticated FIFO links, see
//! [`crate::net`]) are *model* assumptions — the adversary lives inside
//! them. Every tactic therefore preserves two invariants:
//!
//! 1. **Per-link FIFO** — a tactic may shift a message's delivery instant,
//!    but the per-link FIFO floor in [`crate::net`] clamps every instant to
//!    be non-decreasing along its link, and the reorder window only ever
//!    releases the *oldest* held message of any given link. Arbitrary
//!    policies cannot violate link order (property-tested in
//!    `tests/adversary_schedules.rs`).
//! 2. **Reliability** — every message is eventually delivered. Partitions
//!    carry an explicit heal instant, and hold-back pens are flushed by the
//!    network the moment no other traffic could release them: the reactor
//!    path flushes all pens when no managed queue has a message left
//!    (`Net::next_event`), and a raw endpoint's `recv_timeout` flushes the
//!    pens addressed to *that endpoint* on wall-clock timeout (never other
//!    destinations' pens — an unrelated reader's timeout must not neuter a
//!    hold elsewhere).
//!
//! # Determinism
//!
//! A policy owns its own seed. Every choice it makes is a pure function of
//! `(policy seed, link, per-sender send index)` — for the send-time tactics
//! — or of `(policy seed, draw counter)` for the pop-time reorder draws,
//! where the draw counter advances only on deliveries. Two runs with the
//! same [`crate::net::NetConfig`] seed, the same policy, and the same
//! command sequence therefore produce byte-identical delivery schedules —
//! the contract the `determinism` CI bin pins across process runs.

use std::time::Duration;

use byzreg_runtime::ProcessId;

use crate::net::splitmix64;

/// The directed links a [`Tactic`] applies to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkSet {
    /// Every link of the network.
    All,
    /// Every link *into* the given destination.
    To(ProcessId),
    /// Every link *out of* the given sender.
    From(ProcessId),
    /// Exactly the listed `(from, to)` links.
    Links(Vec<(ProcessId, ProcessId)>),
}

impl LinkSet {
    /// Whether the directed link `from → to` belongs to this set.
    #[must_use]
    pub fn contains(&self, from: ProcessId, to: ProcessId) -> bool {
        match self {
            LinkSet::All => true,
            LinkSet::To(p) => *p == to,
            LinkSet::From(p) => *p == from,
            LinkSet::Links(links) => links.contains(&(from, to)),
        }
    }

    /// Whether any link of this set ends at `to` (the destination-level
    /// query behind the reorder window).
    #[must_use]
    pub fn touches_dest(&self, to: ProcessId) -> bool {
        match self {
            LinkSet::All | LinkSet::From(_) => true,
            LinkSet::To(p) => *p == to,
            LinkSet::Links(links) => links.iter().any(|(_, t)| *t == to),
        }
    }

    /// Every pid this set names (empty for [`LinkSet::All`]) — the
    /// validation surface.
    fn pids(&self) -> Vec<ProcessId> {
        match self {
            LinkSet::All => Vec::new(),
            LinkSet::To(p) | LinkSet::From(p) => vec![*p],
            LinkSet::Links(links) => links.iter().flat_map(|(f, t)| [*f, *t]).collect(),
        }
    }
}

/// One adversarial scheduling tactic. A policy composes any number of them;
/// each preserves per-link FIFO and reliability (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tactic {
    /// Adds a seeded extra delay in `[min, max)` (virtual time) to every
    /// message on the targeted links — a programmable per-link delay
    /// distribution, e.g. "this reader's links are slow".
    Delay {
        /// The targeted links.
        links: LinkSet,
        /// Smallest extra delay (inclusive, virtual time).
        min: Duration,
        /// Largest extra delay (exclusive, virtual time; `max <= min`
        /// degenerates to the constant delay `min`).
        max: Duration,
    },
    /// Bounded reordering at the targeted destinations: each delivery picks
    /// a seeded choice among the first `depth` scheduled messages of the
    /// destination's queue, restricted to the *oldest* message of each link
    /// within that window (so per-link FIFO is preserved by construction).
    /// `depth <= 1` is a no-op.
    Reorder {
        /// Links whose destinations get a reorder window.
        links: LinkSet,
        /// Window size (number of queue-head entries eligible per pick).
        depth: usize,
    },
    /// A temporary network partition: every message *crossing* the cut
    /// between `group` and its complement whose tentative delivery instant
    /// falls in `[at, heal)` is delayed to `heal`. Messages inside either
    /// side flow normally, and the cut heals by construction (reliability).
    Partition {
        /// One side of the cut (the other side is the complement).
        group: Vec<ProcessId>,
        /// Virtual instant the cut appears.
        at: Duration,
        /// Virtual instant the cut heals (messages are released here).
        heal: Duration,
    },
    /// The stale-quorum tactic: messages on `writer → victim` are held in a
    /// pen until `replies` messages from *third parties* — processes other
    /// than the victim and other than the writer itself (broadcast
    /// self-copies are not replies) — have been delivered **to the writer**
    /// while the pen was non-empty — i.e. the victim only learns of a write
    /// after the rest of a quorum has already responded. Pens are flushed
    /// (and the count reset) when the threshold is met, or by the network's
    /// no-other-traffic fallback (reliability).
    HoldUntilReplies {
        /// The process whose outbound messages are held.
        writer: ProcessId,
        /// The process the held messages are addressed to.
        victim: ProcessId,
        /// Third-party deliveries to `writer` that release the pen.
        replies: usize,
    },
}

/// A seeded, deterministic adversarial delivery schedule: a list of
/// [`Tactic`]s plus the seed all their choices derive from. Compose it into
/// [`crate::MpConfig`] (or [`crate::MpFactory::adversarial`]) to run any
/// register emulation under it. The default policy is inert.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryPolicy {
    /// Seed for every seeded choice the tactics make (independent of the
    /// base network jitter seed).
    pub seed: u64,
    /// The composed tactics, applied in order.
    pub tactics: Vec<Tactic>,
}

/// Domain-separation tags so the adversary's draws never correlate with
/// the base jitter stream (which hashes `seed ^ send_index ^ sender`).
const TAG_DELAY: u64 = 0xAD5E_0001_0000_0000;
const TAG_REORDER: u64 = 0xAD5E_0002_0000_0000;

impl AdversaryPolicy {
    /// The inert policy: no tactics, plain seeded-jitter scheduling.
    #[must_use]
    pub fn none() -> Self {
        AdversaryPolicy::default()
    }

    /// Canned **slow-reader** policy: every link into `victim` gets a
    /// seeded extra delay in `[max/2, max)` — the victim observes every
    /// quorum late, stressing stale-quorum reads.
    #[must_use]
    pub fn slow_reader(victim: ProcessId, max: Duration, seed: u64) -> Self {
        AdversaryPolicy {
            seed,
            tactics: vec![Tactic::Delay { links: LinkSet::To(victim), min: max / 2, max }],
        }
    }

    /// Canned **bounded-reorder** policy: every destination delivers under
    /// a seeded reorder window of `depth` (per-link FIFO preserved).
    #[must_use]
    pub fn bounded_reorder(depth: usize, seed: u64) -> Self {
        AdversaryPolicy { seed, tactics: vec![Tactic::Reorder { links: LinkSet::All, depth }] }
    }

    /// Canned **split-and-heal** policy: `group` is cut off from the rest
    /// of the network from virtual instant zero until `heal`.
    #[must_use]
    pub fn split(group: Vec<ProcessId>, heal: Duration, seed: u64) -> Self {
        AdversaryPolicy {
            seed,
            tactics: vec![Tactic::Partition { group, at: Duration::ZERO, heal }],
        }
    }

    /// Canned **hold-back** policy: `writer → victim` messages are penned
    /// until `replies` non-victim messages have reached the writer — the
    /// "delay the writer's message to one reader until the other `n−f−1`
    /// have replied" schedule.
    #[must_use]
    pub fn hold_back(writer: ProcessId, victim: ProcessId, replies: usize) -> Self {
        AdversaryPolicy {
            seed: 0,
            tactics: vec![Tactic::HoldUntilReplies { writer, victim, replies }],
        }
    }

    /// Canned **stress** policy — the `mp-adversary` workload scenario:
    /// slow-reader delays and a hold-back pen on the victim, plus a global
    /// bounded-reorder window.
    #[must_use]
    pub fn stress(writer: ProcessId, victim: ProcessId, replies: usize, seed: u64) -> Self {
        AdversaryPolicy::slow_reader(victim, Duration::from_micros(500), seed)
            .also(Tactic::Reorder { links: LinkSet::All, depth: 3 })
            .also(Tactic::HoldUntilReplies { writer, victim, replies })
    }

    /// Appends one more tactic (builder-style composition).
    #[must_use]
    pub fn also(mut self, tactic: Tactic) -> Self {
        self.tactics.push(tactic);
        self
    }

    /// The canned policy suite for an `n`-node register with writer `p1`
    /// and resilience `f`, named for reports and parameterized tests. Every
    /// canned policy must keep all three register families linearizable —
    /// `tests/adversary_schedules.rs` asserts exactly that, per entry.
    #[must_use]
    pub fn canned(n: usize, f: usize) -> Vec<(&'static str, AdversaryPolicy)> {
        let writer = ProcessId::new(1);
        let victim = ProcessId::new(2);
        assert!(
            n > f + 1,
            "the canned hold-back policy needs n − f − 1 ≥ 1 replies (got n = {n}, f = {f})"
        );
        vec![
            ("slow-reader", AdversaryPolicy::slow_reader(victim, Duration::from_millis(2), 13)),
            ("bounded-reorder", AdversaryPolicy::bounded_reorder(3, 17)),
            ("split-heal", AdversaryPolicy::split(vec![victim], Duration::from_millis(3), 19)),
            ("hold-back", AdversaryPolicy::hold_back(writer, victim, n - f - 1)),
            ("stress", AdversaryPolicy::stress(writer, victim, n - f - 1, 23)),
        ]
    }

    /// `true` when the policy has no tactics (the fast path: the network
    /// skips all adversary bookkeeping).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.tactics.is_empty()
    }

    /// Validates the policy for an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent tactic: a partition that never heals, a
    /// hold with a zero reply threshold (it would never hold), or pids out
    /// of `1..=n`.
    pub fn validate(&self, n: usize) {
        let in_range = |p: ProcessId| {
            assert!(p.index() >= 1 && p.index() <= n, "{p} is outside the {n}-node network");
        };
        for tactic in &self.tactics {
            match tactic {
                Tactic::Delay { links, .. } => links.pids().into_iter().for_each(in_range),
                Tactic::Reorder { links, depth } => {
                    assert!(*depth <= 64, "reorder depth {depth} is unreasonably large");
                    links.pids().into_iter().for_each(in_range);
                }
                Tactic::Partition { group, at, heal } => {
                    assert!(heal > at, "a partition must heal after it appears");
                    group.iter().copied().for_each(in_range);
                }
                Tactic::HoldUntilReplies { writer, victim, replies } => {
                    assert!(*replies >= 1, "a hold with no reply threshold never releases");
                    in_range(*writer);
                    in_range(*victim);
                    assert!(writer != victim, "holding a self-loop link starves the writer");
                }
            }
        }
    }

    /// The adversary's shift of one send: the tentative delivery instant
    /// `base_ns` of `from`'s `send_index`-th send on `from → to`, plus
    /// every matching delay tactic's seeded draw, then floored through the
    /// partition cuts. Pure — equal inputs give equal instants across runs.
    /// (The network re-applies [`AdversaryPolicy::partition_floor`] after
    /// its per-link FIFO clamp: the clamp can push an instant into a cut
    /// window, and the post-pass keeps the cut airtight.)
    #[must_use]
    pub(crate) fn shift_send(
        &self,
        from: ProcessId,
        to: ProcessId,
        send_index: u64,
        base_ns: u64,
    ) -> u64 {
        let mut at = base_ns;
        for (ti, tactic) in self.tactics.iter().enumerate() {
            if let Tactic::Delay { links, min, max } = tactic {
                if !links.contains(from, to) {
                    continue;
                }
                let (min, max) = (min.as_nanos() as u64, max.as_nanos() as u64);
                let extra = if max > min {
                    let h = splitmix64(
                        self.seed
                            ^ TAG_DELAY
                            ^ splitmix64(
                                send_index
                                    ^ ((from.index() as u64) << 48)
                                    ^ ((to.index() as u64) << 40)
                                    ^ ((ti as u64) << 32),
                            ),
                    );
                    min + h % (max - min)
                } else {
                    min
                };
                at = at.saturating_add(extra);
            }
        }
        self.partition_floor(from, to, at)
    }

    /// Floors a delivery instant through the partition tactics until it is
    /// outside every active cut crossed by `from → to` (one cut's heal
    /// instant may land inside another cut's window, so the pass iterates
    /// to a fixpoint — it terminates because the instant strictly rises
    /// toward the finite set of heal instants). Idempotent and monotone,
    /// so the network may apply it both before and after the per-link FIFO
    /// clamp, and again when a hold-back pen releases.
    #[must_use]
    pub(crate) fn partition_floor(&self, from: ProcessId, to: ProcessId, mut at: u64) -> u64 {
        loop {
            let before = at;
            for tactic in &self.tactics {
                if let Tactic::Partition { group, at: cut, heal } = tactic {
                    let crosses = group.contains(&from) != group.contains(&to);
                    let (cut, heal) = (cut.as_nanos() as u64, heal.as_nanos() as u64);
                    if crosses && at >= cut && at < heal {
                        at = heal;
                    }
                }
            }
            if at == before {
                return at;
            }
        }
    }

    /// The reorder window for deliveries to `to`: the largest `depth` of
    /// any [`Tactic::Reorder`] touching that destination (`1` = no window).
    #[must_use]
    pub(crate) fn reorder_depth(&self, to: ProcessId) -> usize {
        self.tactics
            .iter()
            .filter_map(|t| match t {
                Tactic::Reorder { links, depth } if links.touches_dest(to) => Some(*depth),
                _ => None,
            })
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// The seeded reorder draw: which of `k` FIFO-safe candidates the
    /// `draw_index`-th reordering releases.
    #[must_use]
    pub(crate) fn reorder_pick(&self, draw_index: u64, k: usize) -> usize {
        (splitmix64(self.seed ^ TAG_REORDER ^ draw_index) % k as u64) as usize
    }

    /// The `(writer, victim, replies)` triples of every hold tactic, in
    /// tactic order — the network builds one pen per entry.
    #[must_use]
    pub(crate) fn holds(&self) -> Vec<(ProcessId, ProcessId, usize)> {
        self.tactics
            .iter()
            .filter_map(|t| match t {
                Tactic::HoldUntilReplies { writer, victim, replies } => {
                    Some((*writer, *victim, *replies))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_sets_classify_links() {
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        assert!(LinkSet::All.contains(p1, p2));
        assert!(LinkSet::To(p2).contains(p1, p2) && !LinkSet::To(p2).contains(p2, p1));
        assert!(LinkSet::From(p1).contains(p1, p3) && !LinkSet::From(p1).contains(p3, p1));
        let links = LinkSet::Links(vec![(p1, p2)]);
        assert!(links.contains(p1, p2) && !links.contains(p1, p3));
        assert!(links.touches_dest(p2) && !links.touches_dest(p3));
        assert!(LinkSet::From(p1).touches_dest(p3), "any destination is reachable from p1");
    }

    #[test]
    fn shift_is_deterministic_and_respects_bounds() {
        let policy = AdversaryPolicy::slow_reader(ProcessId::new(2), Duration::from_micros(100), 7);
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        for i in 0..256 {
            let a = policy.shift_send(p1, p2, i, 1_000);
            let b = policy.shift_send(p1, p2, i, 1_000);
            assert_eq!(a, b, "equal inputs must shift identically");
            let extra = a - 1_000;
            assert!((50_000..100_000).contains(&extra), "extra {extra} outside [max/2, max)");
            assert_eq!(policy.shift_send(p1, p3, i, 1_000), 1_000, "untargeted link untouched");
        }
    }

    #[test]
    fn different_seeds_shift_differently() {
        let a = AdversaryPolicy::slow_reader(ProcessId::new(2), Duration::from_micros(100), 7);
        let b = AdversaryPolicy::slow_reader(ProcessId::new(2), Duration::from_micros(100), 8);
        let shifts = |p: &AdversaryPolicy| {
            (0..64)
                .map(|i| p.shift_send(ProcessId::new(1), ProcessId::new(2), i, 0))
                .collect::<Vec<_>>()
        };
        assert_ne!(shifts(&a), shifts(&b));
    }

    #[test]
    fn partition_floors_only_crossing_messages_in_window() {
        let policy = AdversaryPolicy::split(vec![ProcessId::new(2)], Duration::from_micros(10), 0);
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        assert_eq!(policy.shift_send(p1, p2, 0, 500), 10_000, "crossing, in window: floored");
        assert_eq!(policy.shift_send(p2, p1, 0, 500), 10_000, "cut is symmetric");
        assert_eq!(policy.shift_send(p1, p3, 0, 500), 500, "same side: untouched");
        assert_eq!(policy.shift_send(p1, p2, 0, 10_000), 10_000, "at heal: flows");
        assert_eq!(policy.shift_send(p1, p2, 0, 12_000), 12_000, "after heal: flows");
    }

    #[test]
    fn overlapping_partitions_floor_to_a_fixpoint() {
        // The second cut's heal (13 µs) lands inside the first cut's
        // window [12 µs, 20 µs): a single in-order pass would leak a
        // message into the open first cut; the fixpoint pass may not.
        let p2 = ProcessId::new(2);
        let policy = AdversaryPolicy {
            seed: 0,
            tactics: vec![
                Tactic::Partition {
                    group: vec![p2],
                    at: Duration::from_micros(12),
                    heal: Duration::from_micros(20),
                },
                Tactic::Partition {
                    group: vec![p2],
                    at: Duration::from_micros(5),
                    heal: Duration::from_micros(13),
                },
            ],
        };
        let p1 = ProcessId::new(1);
        assert_eq!(policy.partition_floor(p1, p2, 6_000), 20_000, "6 → 13 → 20");
        assert_eq!(policy.partition_floor(p1, p2, 20_000), 20_000, "idempotent at heal");
        assert_eq!(policy.partition_floor(p1, p2, 3_000), 3_000, "before both cuts");
        assert_eq!(policy.shift_send(p1, p2, 0, 6_000), 20_000, "shift ends outside all cuts");
    }

    #[test]
    #[should_panic(expected = "outside the 4-node network")]
    fn delay_link_sets_with_out_of_range_pids_are_rejected() {
        AdversaryPolicy::slow_reader(ProcessId::new(9), Duration::from_micros(10), 0).validate(4);
    }

    #[test]
    #[should_panic(expected = "n − f − 1 ≥ 1")]
    fn canned_suite_rejects_systems_too_small_for_a_hold() {
        let _ = AdversaryPolicy::canned(2, 1);
    }

    #[test]
    fn reorder_depth_is_per_destination_max() {
        let policy = AdversaryPolicy::bounded_reorder(3, 0)
            .also(Tactic::Reorder { links: LinkSet::To(ProcessId::new(2)), depth: 5 });
        assert_eq!(policy.reorder_depth(ProcessId::new(2)), 5);
        assert_eq!(policy.reorder_depth(ProcessId::new(3)), 3);
        assert_eq!(AdversaryPolicy::none().reorder_depth(ProcessId::new(2)), 1);
    }

    #[test]
    fn reorder_picks_cover_all_candidates_deterministically() {
        let policy = AdversaryPolicy::bounded_reorder(4, 99);
        let picks: Vec<usize> = (0..64).map(|d| policy.reorder_pick(d, 3)).collect();
        assert_eq!(picks, (0..64).map(|d| policy.reorder_pick(d, 3)).collect::<Vec<_>>());
        for c in 0..3 {
            assert!(picks.contains(&c), "candidate {c} never picked in 64 draws");
        }
    }

    #[test]
    fn holds_extract_in_tactic_order() {
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        let policy = AdversaryPolicy::hold_back(p1, p2, 2).also(Tactic::HoldUntilReplies {
            writer: p1,
            victim: p3,
            replies: 1,
        });
        assert_eq!(policy.holds(), vec![(p1, p2, 2), (p1, p3, 1)]);
        assert!(AdversaryPolicy::none().holds().is_empty());
    }

    #[test]
    fn canned_suite_validates() {
        for (name, policy) in AdversaryPolicy::canned(4, 1) {
            policy.validate(4);
            assert!(!policy.is_inert(), "{name} must actually do something");
        }
    }

    #[test]
    #[should_panic(expected = "must heal")]
    fn partitions_that_never_heal_are_rejected() {
        AdversaryPolicy {
            seed: 0,
            tactics: vec![Tactic::Partition {
                group: vec![ProcessId::new(1)],
                at: Duration::from_micros(5),
                heal: Duration::from_micros(5),
            }],
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "never releases")]
    fn zero_reply_holds_are_rejected() {
        AdversaryPolicy::hold_back(ProcessId::new(1), ProcessId::new(2), 0).validate(4);
    }
}
