//! A signature-free emulation of an **atomic SWMR register** in a Byzantine
//! asynchronous message-passing system with `n > 3f`.
//!
//! This is the substrate behind the paper's closing claim of §1: *"since
//! SWMR registers can be implemented in message-passing systems with
//! `n > 3f` [11], verifiable/authenticated/sticky registers can also be
//! implemented in these systems without using signatures."* The protocol is
//! in the style of Mostéfaoui–Petrolia–Raynal–Jard [11], built from the
//! Srikanth–Toueg echo pattern [13]:
//!
//! * **Write(sn, v)** — the writer broadcasts; a node *echoes* the first
//!   value it sees for `sn` (or any value with `f + 1` echoes — Bracha
//!   amplification); it *validates* `(sn, v)` at `n − f` matching echoes,
//!   acks the writer, and broadcasts `VALID(sn, v)`; `f + 1` `VALID`s also
//!   validate. Echo-quorum intersection (`2(n−f) − n ≥ f + 1`) makes the
//!   validated value per `sn` unique, and `VALID` amplification gives
//!   *totality*: if one correct node validates, all correct nodes do.
//!   The write returns after `n − f` acks, so at least `f + 1` correct
//!   nodes hold `ts ≥ sn` from then on.
//! * **Read(rid)** — the reader registers at all nodes and receives `STATE`
//!   reports (re-sent on every local change). It maintains `best` = the
//!   largest `sn` such that `f + 1` nodes report `ts ≥ sn` (one of them is
//!   correct, so `best` is genuine), and returns once `n − f` nodes report
//!   *exactly* `(best, v)` — which leaves `f + 1` correct nodes pinned at
//!   `≥ best`, making reads monotone (no new/old inversion).
//!
//! # Execution model
//!
//! Nodes are **message-driven state machines**, not threads: every node
//! implements [`NodeStateMachine`], whose transitions fire on a delivered
//! protocol message (`on_message`) or on a housekeeping tick (`on_tick` —
//! where an idle node picks up its next queued client command). All `n`
//! nodes of one register live in a single [`ReactorTask`] that drains the
//! register's virtual-time network in seeded delivery order, so a register
//! costs **zero** dedicated threads: any number of registers multiplex onto
//! one [`Reactor`]'s fixed worker pool (see [`crate::reactor`]).
//!
//! Liveness caveat (documented in DESIGN.md): reads are guaranteed to
//! terminate when the writer eventually pauses — the classic cost of
//! atomic reads without writer-side helping; all tests and benches satisfy
//! this.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use byzreg_runtime::{ProcessId, Value};

use crate::adversary::AdversaryPolicy;
use crate::net::{DeliverySchedule, Endpoint, Net, NetConfig};
use crate::reactor::{Reactor, ReactorTask, TaskId};

/// Protocol messages. Public so Byzantine nodes can craft arbitrary ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<V> {
    /// Writer announces write `sn` of `v`.
    Write {
        /// Sequence number.
        sn: u64,
        /// Value.
        v: V,
    },
    /// Echo of a write.
    Echo {
        /// Sequence number.
        sn: u64,
        /// Value.
        v: V,
    },
    /// Acknowledgment that the sender validated write `sn`.
    Ack {
        /// Sequence number.
        sn: u64,
    },
    /// The sender validated `(sn, v)` (totality amplification).
    Valid {
        /// Sequence number.
        sn: u64,
        /// Value.
        v: V,
    },
    /// Reader registration.
    Read {
        /// Read id (unique per reader).
        rid: u64,
    },
    /// A node's current validated state, addressed to a pending read.
    State {
        /// The read id this answers.
        rid: u64,
        /// The node's validated timestamp.
        ts: u64,
        /// The node's validated value.
        v: V,
    },
    /// Reader deregistration.
    ReadDone {
        /// Read id.
        rid: u64,
    },
}

/// Commands from a client to its co-located node.
enum Cmd<V> {
    Write(V, Sender<()>),
    Read(Sender<(u64, V)>),
}

/// A poll-driven protocol node: all state transitions fire either on a
/// delivered message or on a tick issued by the hosting reactor task after
/// each delivery drain. Implementations must never block — replacing the
/// old blocking `recv_timeout` node loop (and its idle poll backoff, dead
/// now that quiet nodes simply receive no calls).
pub trait NodeStateMachine<V: Value> {
    /// Handles one delivered protocol message from `from`.
    fn on_message(&mut self, from: ProcessId, msg: Msg<V>);

    /// Housekeeping transition: returns `true` if the node changed state
    /// (for the SWMR node: an idle node started its next queued client
    /// command). The hosting task ticks until quiescence.
    fn on_tick(&mut self) -> bool;
}

struct Node<V: Value> {
    ep: Endpoint<Msg<V>>,
    n: usize,
    f: usize,
    writer: ProcessId,
    // Validated state.
    ts: u64,
    val: V,
    validated: HashSet<u64>,
    echoed: HashMap<u64, V>,
    echo_from: HashMap<(u64, V), HashSet<ProcessId>>,
    valid_from: HashMap<(u64, V), HashSet<ProcessId>>,
    pending_readers: HashSet<(ProcessId, u64)>,
    // Client-side state (this node doubles as its process's client agent).
    next_sn: u64,
    next_rid: u64,
    queued: VecDeque<Cmd<V>>,
    write_op: Option<(u64, HashSet<ProcessId>, Sender<()>)>,
    read_op: Option<ReadOp<V>>,
}

struct ReadOp<V> {
    rid: u64,
    reports: BTreeMap<ProcessId, (u64, V)>,
    reply: Sender<(u64, V)>,
}

impl<V: Value> Node<V> {
    fn validate(&mut self, sn: u64, v: V) {
        if !self.validated.insert(sn) {
            return;
        }
        self.ep.send(self.writer, Msg::Ack { sn });
        self.ep.broadcast(Msg::Valid { sn, v: v.clone() });
        if sn > self.ts {
            self.ts = sn;
            self.val = v;
            // Refresh every pending reader.
            for (r, rid) in self.pending_readers.clone() {
                self.ep.send(r, Msg::State { rid, ts: self.ts, v: self.val.clone() });
            }
        }
    }

    fn start(&mut self, cmd: Cmd<V>) {
        match cmd {
            Cmd::Write(v, reply) => {
                self.next_sn += 1;
                let sn = self.next_sn;
                self.write_op = Some((sn, HashSet::new(), reply));
                self.ep.broadcast(Msg::Write { sn, v });
            }
            Cmd::Read(reply) => {
                self.next_rid += 1;
                let rid = self.next_rid;
                self.read_op = Some(ReadOp { rid, reports: BTreeMap::new(), reply });
                self.ep.broadcast(Msg::Read { rid });
            }
        }
    }
}

impl<V: Value> NodeStateMachine<V> for Node<V> {
    fn on_message(&mut self, from: ProcessId, msg: Msg<V>) {
        match msg {
            Msg::Write { sn, v } => {
                if from == self.writer && !self.echoed.contains_key(&sn) {
                    self.echoed.insert(sn, v.clone());
                    self.ep.broadcast(Msg::Echo { sn, v });
                }
            }
            Msg::Echo { sn, v } => {
                let set = self.echo_from.entry((sn, v.clone())).or_default();
                if !set.insert(from) {
                    return;
                }
                let count = set.len();
                // Bracha amplification / validation thresholds, as in the
                // paper: `f + 1` matching echoes amplify, `n − f` validate.
                let amplify = self.f + 1;
                if count >= amplify && !self.echoed.contains_key(&sn) {
                    self.echoed.insert(sn, v.clone());
                    self.ep.broadcast(Msg::Echo { sn, v: v.clone() });
                }
                if count >= self.n - self.f && !self.validated.contains(&sn) {
                    self.validate(sn, v);
                }
            }
            Msg::Valid { sn, v } => {
                let set = self.valid_from.entry((sn, v.clone())).or_default();
                if !set.insert(from) {
                    return;
                }
                // `f + 1` VALIDs contain one correct validator (totality).
                let amplify = self.f + 1;
                if set.len() >= amplify && !self.validated.contains(&sn) {
                    self.validate(sn, v);
                }
            }
            Msg::Ack { sn } => {
                if let Some((want, acks, reply)) = &mut self.write_op {
                    if *want == sn {
                        acks.insert(from);
                        if acks.len() >= self.n - self.f {
                            let _ = reply.send(());
                            self.write_op = None;
                        }
                    }
                }
            }
            Msg::Read { rid } => {
                self.pending_readers.insert((from, rid));
                self.ep.send(from, Msg::State { rid, ts: self.ts, v: self.val.clone() });
            }
            Msg::ReadDone { rid } => {
                self.pending_readers.remove(&(from, rid));
            }
            Msg::State { rid, ts, v } => {
                if let Some(op) = &mut self.read_op {
                    if op.rid == rid {
                        op.reports.insert(from, (ts, v));
                        if let Some(result) = decide_read(&op.reports, self.n, self.f) {
                            let _ = op.reply.send(result);
                            let done = op.rid;
                            self.read_op = None;
                            self.ep.broadcast(Msg::ReadDone { rid: done });
                        }
                    }
                }
            }
        }
    }

    fn on_tick(&mut self) -> bool {
        // A node applies its process's operations sequentially: the next
        // queued client command starts only once no operation is in flight.
        if self.write_op.is_some() || self.read_op.is_some() {
            return false;
        }
        match self.queued.pop_front() {
            Some(cmd) => {
                self.start(cmd);
                true
            }
            None => false,
        }
    }
}

/// The read decision rule (see module docs). Returns `Some((ts, v))` once a
/// safe value is determined.
fn decide_read<V: Value>(
    reports: &BTreeMap<ProcessId, (u64, V)>,
    n: usize,
    f: usize,
) -> Option<(u64, V)> {
    // best = max sn with >= f+1 reporters at ts >= sn (0 is always genuine).
    let mut best = 0u64;
    let genuine = f + 1;
    for (ts, _) in reports.values() {
        if *ts > best {
            let support = reports.values().filter(|(t, _)| t >= ts).count();
            if support >= genuine {
                best = *ts;
            }
        }
    }
    // Decide once n−f nodes report exactly (best, v) for a single v.
    let mut exact: HashMap<&V, usize> = HashMap::new();
    for (ts, v) in reports.values() {
        if *ts == best {
            *exact.entry(v).or_insert(0) += 1;
        }
    }
    exact.into_iter().find(|(_, c)| *c >= n - f).map(|(v, _)| (best, v.clone()))
}

/// The reactor task hosting one register: all correct nodes plus the
/// register's network, drained in virtual-delivery order. One run processes
/// every queued client command and every scheduled message to quiescence.
struct RegisterTask<V: Value> {
    net: Arc<Net<Msg<V>>>,
    /// `None` for declared-Byzantine pids (their queue is read externally
    /// through the Byzantine endpoint, never by this task).
    nodes: Vec<Option<Node<V>>>,
    cmds: Vec<Option<Receiver<Cmd<V>>>>,
    managed: Vec<bool>,
}

impl<V: Value> ReactorTask for RegisterTask<V> {
    fn run(&mut self) {
        loop {
            let mut progress = false;
            for (i, rx) in self.cmds.iter().enumerate() {
                if let Some(rx) = rx {
                    while let Ok(cmd) = rx.try_recv() {
                        self.nodes[i]
                            .as_mut()
                            .expect("correct node has cmds")
                            .queued
                            .push_back(cmd);
                        progress = true;
                    }
                }
            }
            for node in self.nodes.iter_mut().flatten() {
                progress |= node.on_tick();
            }
            while let Some((to, from, msg)) = self.net.next_event(&self.managed) {
                self.nodes[to.zero_based()].as_mut().expect("managed node").on_message(from, msg);
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }
}

/// One grouped register's shared slot: the hosting [`RegisterGroup`] drains
/// the task while present; the register's shutdown takes it out.
type GroupSlot = Arc<parking_lot::Mutex<Option<Box<dyn ReactorTask>>>>;

#[derive(Clone)]
struct GroupMember {
    slot: GroupSlot,
    /// Edge-triggered dedup flag: set by the member's wake hook when it
    /// enqueues the member on the group's ready list, cleared by the host
    /// just before draining the member — input arriving mid-drain re-sets
    /// it and re-enqueues, so nothing is lost (mirrors the reactor's
    /// per-task `queued` flag, one level down).
    pending: Arc<AtomicBool>,
}

struct GroupShared {
    members: parking_lot::Mutex<Vec<GroupMember>>,
    /// Indices of members with pending input, in wake order. The host
    /// drains exactly these — a dispatch costs the *pending* members, not
    /// a sweep of the whole (possibly thousands-large) group.
    ready: parking_lot::Mutex<VecDeque<usize>>,
}

/// The host task of a [`RegisterGroup`]: one run drains every member on
/// the ready list. Members' networks are disjoint, so draining each to
/// quiescence once is enough — no cross-member cascade exists.
struct GroupHostTask {
    shared: Arc<GroupShared>,
}

impl ReactorTask for GroupHostTask {
    fn run(&mut self) {
        loop {
            let Some(i) = self.shared.ready.lock().pop_front() else { return };
            let member = self.shared.members.lock()[i].clone();
            // Clear the flag *before* draining: input arriving mid-drain
            // re-enqueues the member instead of being lost.
            member.pending.store(false, Ordering::Release);
            let mut slot = member.slot.lock();
            if let Some(task) = slot.as_mut() {
                task.run();
            }
        }
    }
}

/// A co-scheduling group of emulated registers: every member is hosted on
/// **one** reactor task, so one dispatch drains all members with pending
/// input. A keyed store puts all base registers of one help shard's keys in
/// one group — a fused cross-key verify batch then wakes one task per
/// touched shard instead of one per base register, amortizing scheduler
/// wake-ups across the batch.
///
/// Members enqueue themselves on a deduped ready list, so a group of
/// thousands of quiet registers adds nothing to a dispatch's cost.
#[derive(Clone)]
pub struct RegisterGroup {
    reactor: Arc<Reactor>,
    task: TaskId,
    shared: Arc<GroupShared>,
}

impl RegisterGroup {
    /// Creates an empty group hosted on `reactor`.
    #[must_use]
    pub fn new(reactor: &Arc<Reactor>) -> Self {
        let shared = Arc::new(GroupShared {
            members: parking_lot::Mutex::new(Vec::new()),
            ready: parking_lot::Mutex::new(VecDeque::new()),
        });
        let task = reactor.register(Box::new(GroupHostTask { shared: Arc::clone(&shared) }));
        RegisterGroup { reactor: Arc::clone(reactor), task, shared }
    }

    /// Number of registers spawned into this group (including shut-down
    /// ones, whose slots stay until the group drops).
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.shared.members.lock().len()
    }
}

impl std::fmt::Debug for RegisterGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegisterGroup({} members)", self.member_count())
    }
}

/// The pieces of one emulated register before it is handed to a scheduler
/// (standalone task or group member).
struct BuiltRegister<V: Value> {
    task: RegisterTask<V>,
    cmd_tx: Vec<Option<Sender<Cmd<V>>>>,
    byz_eps: Vec<Option<Endpoint<Msg<V>>>>,
    net: Arc<Net<Msg<V>>>,
}

/// Configuration of one emulated register.
#[derive(Clone, Debug)]
pub struct MpConfig {
    /// Number of nodes.
    pub n: usize,
    /// Resilience (`n > 3f` required for correctness).
    pub f: usize,
    /// The writing process (defaults to `p1`).
    pub writer: ProcessId,
    /// Network behavior.
    pub net: NetConfig,
    /// Adversarial delivery schedule layered over the network's seeded
    /// jitter (inert by default). Same seed + same policy + same command
    /// sequence ⇒ byte-identical [`MpRegister::delivery_schedule`].
    pub adversary: AdversaryPolicy,
    /// Declared-Byzantine nodes: they run no protocol; grab their endpoint
    /// with [`MpRegister::byzantine_endpoint`] to attack.
    pub byzantine: Vec<ProcessId>,
    /// Record the delivery schedule (see
    /// [`MpRegister::delivery_schedule`]); off by default — the trace grows
    /// with every message.
    pub trace: bool,
}

impl MpConfig {
    /// `n` nodes, `f = ⌊(n−1)/3⌋`, writer `p1`, instant network, no faults.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MpConfig {
            n,
            f: n.saturating_sub(1) / 3,
            writer: ProcessId::new(1),
            net: NetConfig::instant(),
            adversary: AdversaryPolicy::none(),
            byzantine: Vec::new(),
            trace: false,
        }
    }
}

/// One emulated SWMR register over its own `n`-node virtual network,
/// hosted as a single task on a [`Reactor`].
///
/// The writer is `p1`. Every process has a client handle to its co-located
/// node; handles are thread-safe and serialize their process's operations.
pub struct MpRegister<V: Value> {
    writer: ProcessId,
    cmd_tx: Vec<Option<Sender<Cmd<V>>>>,
    byz_eps: parking_lot::Mutex<Vec<Option<Endpoint<Msg<V>>>>>,
    net: Arc<Net<Msg<V>>>,
    reactor: Arc<Reactor>,
    /// `true` when `spawn` created a private reactor that `shutdown` owns.
    owns_reactor: bool,
    task: TaskId,
    /// `Some` for grouped registers: `task` is the group's host task, and
    /// shutdown empties this slot instead of removing the shared task.
    group_slot: Option<GroupSlot>,
    wake: Arc<dyn Fn() + Send + Sync>,
    n: usize,
}

impl<V: Value> MpRegister<V> {
    /// Spawns the register on a private single-worker reactor. Use
    /// [`MpRegister::spawn_on`] to multiplex many registers onto one
    /// shared reactor (as [`crate::MpFactory`] does).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` — unlike the shared-memory registers there is no
    /// meaningful "run it anyway" mode here, the emulation would be unsound.
    #[must_use]
    pub fn spawn(config: &MpConfig, v0: V) -> Self {
        let mut reg = Self::spawn_on(&Arc::new(Reactor::new(1)), config, v0);
        reg.owns_reactor = true;
        reg
    }

    /// Spawns the register as one task on `reactor`.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (see [`MpRegister::spawn`]).
    #[must_use]
    pub fn spawn_on(reactor: &Arc<Reactor>, config: &MpConfig, v0: V) -> Self {
        let BuiltRegister { task, cmd_tx, byz_eps, net } = Self::build(config, v0);
        let id = reactor.register(Box::new(task));
        let wake = reactor.waker(id);
        net.set_wake(Arc::clone(&wake));
        MpRegister {
            writer: config.writer,
            cmd_tx,
            byz_eps: parking_lot::Mutex::new(byz_eps),
            net,
            reactor: Arc::clone(reactor),
            owns_reactor: false,
            task: id,
            group_slot: None,
            wake,
            n: config.n,
        }
    }

    /// Spawns the register as one **member** of `group`: its events are
    /// drained by the group's shared host task instead of a dedicated one,
    /// so wake-ups of same-group registers coalesce into single dispatches
    /// (see [`RegisterGroup`]).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (see [`MpRegister::spawn`]).
    #[must_use]
    pub fn spawn_in_group(group: &RegisterGroup, config: &MpConfig, v0: V) -> Self {
        let BuiltRegister { task, cmd_tx, byz_eps, net } = Self::build(config, v0);
        let slot: GroupSlot =
            Arc::new(parking_lot::Mutex::new(Some(Box::new(task) as Box<dyn ReactorTask>)));
        let pending = Arc::new(AtomicBool::new(false));
        let index = {
            let mut members = group.shared.members.lock();
            members.push(GroupMember { slot: Arc::clone(&slot), pending: Arc::clone(&pending) });
            members.len() - 1
        };
        let shared = Arc::clone(&group.shared);
        let host_wake = group.reactor.waker(group.task);
        let wake: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            if !pending.swap(true, Ordering::AcqRel) {
                shared.ready.lock().push_back(index);
            }
            host_wake();
        });
        net.set_wake(Arc::clone(&wake));
        MpRegister {
            writer: config.writer,
            cmd_tx,
            byz_eps: parking_lot::Mutex::new(byz_eps),
            net,
            reactor: Arc::clone(&group.reactor),
            owns_reactor: false,
            task: group.task,
            group_slot: Some(slot),
            wake,
            n: config.n,
        }
    }

    /// Builds the register's nodes, network, and reactor task (shared by
    /// the standalone and grouped spawn paths).
    fn build(config: &MpConfig, v0: V) -> BuiltRegister<V> {
        assert!(config.n > 3 * config.f, "the MP emulation requires n > 3f");
        let net = Net::<Msg<V>>::new(config.n, config.net, config.adversary.clone(), config.trace);
        let mut cmd_tx = Vec::with_capacity(config.n);
        let mut byz_eps: Vec<Option<Endpoint<Msg<V>>>> = (0..config.n).map(|_| None).collect();
        let mut nodes = Vec::with_capacity(config.n);
        let mut cmds = Vec::with_capacity(config.n);
        let mut managed = Vec::with_capacity(config.n);
        for i in 1..=config.n {
            let pid = ProcessId::new(i);
            let ep = net.endpoint(pid);
            if config.byzantine.contains(&pid) {
                byz_eps[pid.zero_based()] = Some(ep);
                cmd_tx.push(None);
                nodes.push(None);
                cmds.push(None);
                managed.push(false);
                continue;
            }
            let (tx, rx) = unbounded();
            cmd_tx.push(Some(tx));
            cmds.push(Some(rx));
            managed.push(true);
            nodes.push(Some(Node {
                ep,
                n: config.n,
                f: config.f,
                writer: config.writer,
                ts: 0,
                val: v0.clone(),
                validated: HashSet::new(),
                echoed: HashMap::new(),
                echo_from: HashMap::new(),
                valid_from: HashMap::new(),
                pending_readers: HashSet::new(),
                next_sn: 0,
                next_rid: 0,
                queued: VecDeque::new(),
                write_op: None,
                read_op: None,
            }));
        }
        let task = RegisterTask { net: Arc::clone(&net), nodes, cmds, managed };
        BuiltRegister { task, cmd_tx, byz_eps, net }
    }

    /// A client handle for process `pid` (any correct process; `p1` may
    /// write, everyone may read — single-writer is enforced by
    /// [`MpClient::write`] panicking for non-writers).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is declared Byzantine.
    #[must_use]
    pub fn client(&self, pid: ProcessId) -> MpClient<V> {
        let tx = self.cmd_tx[pid.zero_based()]
            .clone()
            .unwrap_or_else(|| panic!("{pid} is Byzantine; use byzantine_endpoint"));
        MpClient { pid, writer: self.writer, tx, wake: Arc::clone(&self.wake) }
    }

    /// The raw network endpoint of a declared-Byzantine node.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is correct or the endpoint was taken.
    #[must_use]
    pub fn byzantine_endpoint(&self, pid: ProcessId) -> Endpoint<Msg<V>> {
        self.byz_eps.lock()[pid.zero_based()].take().expect("endpoint available")
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The delivery order recorded so far as `(from, to)` pairs; `None`
    /// unless the register was spawned with [`MpConfig::trace`] on. Same
    /// seed + same command sequence ⇒ same schedule.
    #[must_use]
    pub fn delivery_schedule(&self) -> Option<DeliverySchedule> {
        self.net.trace()
    }

    /// Removes the register's task from its scheduler — its own reactor
    /// task, or just its slot within the hosting [`RegisterGroup`]
    /// (clients panic on further use, as when the node threads of the old
    /// design were stopped). Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        match &self.group_slot {
            Some(slot) => {
                slot.lock().take();
            }
            None => self.reactor.remove(self.task),
        }
        if self.owns_reactor {
            self.reactor.shutdown();
        }
    }
}

impl<V: Value> Drop for MpRegister<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<V: Value> std::fmt::Debug for MpRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpRegister(n = {})", self.n)
    }
}

/// A process's client handle to an [`MpRegister`].
#[derive(Clone)]
pub struct MpClient<V> {
    pid: ProcessId,
    writer: ProcessId,
    tx: Sender<Cmd<V>>,
    wake: Arc<dyn Fn() + Send + Sync>,
}

impl<V: Value> MpClient<V> {
    /// The owning process of this handle.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Writes `v` (blocks until `n − f` nodes validated the write).
    ///
    /// # Panics
    ///
    /// Panics if this handle does not belong to the writer `p1`.
    pub fn write(&self, v: V) {
        assert!(self.pid == self.writer, "{} does not own the write port", self.pid);
        let (reply_tx, reply_rx) = bounded(1);
        self.tx.send(Cmd::Write(v, reply_tx)).expect("node alive");
        (self.wake)();
        let _ = reply_rx.recv();
    }

    /// Reads the register (blocks until the read decision rule fires).
    /// Returns `(timestamp, value)`.
    #[must_use]
    pub fn read(&self) -> (u64, V) {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx.send(Cmd::Read(reply_tx)).expect("node alive");
        (self.wake)();
        reply_rx.recv().expect("node alive")
    }
}

impl<V> std::fmt::Debug for MpClient<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpClient({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn decide_read_initial_state() {
        let mut reports = BTreeMap::new();
        for i in 2..=4 {
            reports.insert(ProcessId::new(i), (0u64, 0u8));
        }
        assert_eq!(decide_read(&reports, 4, 1), Some((0, 0)));
    }

    #[test]
    fn decide_read_waits_for_exact_quorum() {
        let mut reports = BTreeMap::new();
        reports.insert(ProcessId::new(1), (5u64, 7u8));
        reports.insert(ProcessId::new(2), (5u64, 7u8));
        // best = 5 (2 >= f+1 supporters), but only 2 < n−f = 3 exact.
        assert_eq!(decide_read(&reports, 4, 1), None);
        reports.insert(ProcessId::new(3), (5u64, 7u8));
        assert_eq!(decide_read(&reports, 4, 1), Some((5, 7)));
    }

    #[test]
    fn decide_read_ignores_lone_fabricated_timestamps() {
        let mut reports = BTreeMap::new();
        reports.insert(ProcessId::new(1), (999u64, 66u8)); // byzantine
        reports.insert(ProcessId::new(2), (0u64, 0u8));
        reports.insert(ProcessId::new(3), (0u64, 0u8));
        reports.insert(ProcessId::new(4), (0u64, 0u8));
        // 999 has only 1 supporter < f+1 = 2 -> best stays 0.
        assert_eq!(decide_read(&reports, 4, 1), Some((0, 0)));
    }

    #[test]
    fn write_then_read() {
        let reg = MpRegister::spawn(&MpConfig::new(4), 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(3));
        assert_eq!(r.read(), (0, 0));
        w.write(7);
        assert_eq!(r.read(), (1, 7));
        w.write(9);
        assert_eq!(r.read(), (2, 9));
        reg.shutdown();
    }

    #[test]
    fn reads_are_monotone_across_readers() {
        let reg = MpRegister::spawn(&MpConfig::new(4), 0u32);
        let w = reg.client(ProcessId::new(1));
        let r3 = reg.client(ProcessId::new(3));
        let r4 = reg.client(ProcessId::new(4));
        w.write(5);
        let (ts1, v1) = r3.read();
        let (ts2, v2) = r4.read();
        assert_eq!((ts1, v1), (1, 5));
        assert!(ts2 >= ts1, "no new/old inversion");
        assert_eq!(v2, 5);
        reg.shutdown();
    }

    #[test]
    fn tolerates_a_silent_byzantine_node() {
        let mut config = MpConfig::new(4);
        config.byzantine = vec![ProcessId::new(4)];
        let reg = MpRegister::spawn(&config, 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        w.write(3);
        assert_eq!(r.read(), (1, 3));
        reg.shutdown();
    }

    #[test]
    fn tolerates_a_lying_byzantine_node() {
        let mut config = MpConfig::new(4);
        config.byzantine = vec![ProcessId::new(4)];
        let reg = MpRegister::spawn(&config, 0u32);
        let byz = reg.byzantine_endpoint(ProcessId::new(4));
        // Fabricate a huge write nobody performed.
        byz.broadcast(Msg::Echo { sn: 10_000, v: 66u32 });
        byz.broadcast(Msg::Valid { sn: 10_000, v: 66u32 });
        byz.broadcast(Msg::State { rid: 1, ts: 10_000, v: 66u32 });
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        w.write(3);
        let (ts, v) = r.read();
        assert_eq!(v, 3, "fabricated value must not surface");
        assert_eq!(ts, 1);
        reg.shutdown();
    }

    #[test]
    fn works_with_jitter() {
        let mut config = MpConfig::new(4);
        config.net = NetConfig::jittery(Duration::from_micros(500), 3);
        let reg = MpRegister::spawn(&config, 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        for i in 1..=5u32 {
            w.write(i);
            let (ts, v) = r.read();
            assert_eq!(ts, u64::from(i));
            assert_eq!(v, i);
        }
        reg.shutdown();
    }

    #[test]
    fn many_registers_share_one_reactor() {
        let reactor = Arc::new(Reactor::new(2));
        let regs: Vec<MpRegister<u32>> =
            (0..32).map(|_| MpRegister::spawn_on(&reactor, &MpConfig::new(4), 0)).collect();
        for (i, reg) in regs.iter().enumerate() {
            reg.client(ProcessId::new(1)).write(i as u32);
        }
        for (i, reg) in regs.iter().enumerate() {
            assert_eq!(reg.client(ProcessId::new(2)).read(), (1, i as u32));
        }
        assert_eq!(reactor.worker_count(), 2, "32 registers, 2 threads");
        for reg in &regs {
            reg.shutdown();
        }
        reactor.shutdown();
    }

    #[test]
    fn grouped_registers_share_one_host_task() {
        // 32 registers in one group: every event drain goes through the
        // group's single reactor task, and all registers stay correct.
        let reactor = Arc::new(Reactor::new(2));
        let group = RegisterGroup::new(&reactor);
        let regs: Vec<MpRegister<u32>> =
            (0..32).map(|_| MpRegister::spawn_in_group(&group, &MpConfig::new(4), 0)).collect();
        assert_eq!(group.member_count(), 32);
        for (i, reg) in regs.iter().enumerate() {
            reg.client(ProcessId::new(1)).write(i as u32);
        }
        for (i, reg) in regs.iter().enumerate() {
            assert_eq!(reg.client(ProcessId::new(2)).read(), (1, i as u32));
        }
        for reg in &regs {
            reg.shutdown();
        }
        reactor.shutdown();
    }

    #[test]
    fn group_dispatches_amortize_across_members() {
        // Burst-wake many members of one group: the dedup flags collapse
        // the wake storm into far fewer host-task dispatches than the
        // one-task-per-register design would need (one per member write).
        let reactor = Arc::new(Reactor::new(1));
        let group = RegisterGroup::new(&reactor);
        let regs: Vec<MpRegister<u32>> =
            (0..16).map(|_| MpRegister::spawn_in_group(&group, &MpConfig::new(4), 0)).collect();
        // Let setup traffic settle, then measure a burst.
        while reactor.idle_workers() == 0 {
            std::thread::yield_now();
        }
        let before = reactor.dispatches();
        let writers: Vec<_> = regs.iter().map(|r| r.client(ProcessId::new(1))).collect();
        std::thread::scope(|s| {
            for (i, w) in writers.iter().enumerate() {
                s.spawn(move || w.write(i as u32 + 1));
            }
        });
        let spent = reactor.dispatches() - before;
        assert!(
            spent < 16 * 4,
            "16 concurrent grouped writes took {spent} dispatches; wake coalescing \
             should keep this well under a per-register task design"
        );
        for (i, reg) in regs.iter().enumerate() {
            assert_eq!(reg.client(ProcessId::new(3)).read(), (1, i as u32 + 1));
        }
        for reg in &regs {
            reg.shutdown();
        }
        reactor.shutdown();
    }

    #[test]
    fn shutting_down_one_group_member_leaves_the_rest_live() {
        let reactor = Arc::new(Reactor::new(1));
        let group = RegisterGroup::new(&reactor);
        let a = MpRegister::spawn_in_group(&group, &MpConfig::new(4), 0u32);
        let b = MpRegister::spawn_in_group(&group, &MpConfig::new(4), 0u32);
        a.client(ProcessId::new(1)).write(7);
        a.shutdown();
        b.client(ProcessId::new(1)).write(9);
        assert_eq!(b.client(ProcessId::new(2)).read(), (1, 9), "b survives a's shutdown");
        b.shutdown();
        reactor.shutdown();
    }

    /// One seeded run of a fixed command sequence: returns the read results
    /// and the full delivery schedule.
    fn seeded_run(seed: u64) -> (Vec<(u64, u32)>, DeliverySchedule) {
        let mut config = MpConfig::new(4);
        config.net = NetConfig::jittery(Duration::from_millis(2), seed);
        config.trace = true;
        let reg = MpRegister::spawn(&config, 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        let mut results = Vec::new();
        for i in 1..=6u32 {
            w.write(i * 10);
            results.push(r.read());
        }
        let schedule = reg.delivery_schedule().expect("tracing on");
        reg.shutdown();
        (results, schedule)
    }

    #[test]
    fn same_seed_same_schedule_and_same_decisions() {
        // The reactor determinism guarantee: the virtual-time network makes
        // the complete delivery order — and therefore every register
        // decision — a pure function of the seed and the command sequence.
        let (results_a, schedule_a) = seeded_run(42);
        let (results_b, schedule_b) = seeded_run(42);
        assert_eq!(schedule_a, schedule_b, "same seed must replay the delivery order");
        assert_eq!(results_a, results_b);
        assert_eq!(results_a, (1..=6).map(|i| (u64::from(i), i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_schedule_differently() {
        let (results_a, schedule_a) = seeded_run(42);
        let (results_c, schedule_c) = seeded_run(43);
        assert_ne!(schedule_a, schedule_c, "different seeds explore different schedules");
        assert_eq!(results_a, results_c, "but sequential decisions agree");
    }

    /// One traced run of a fixed command sequence under `policy`.
    fn adversarial_run(seed: u64, policy: AdversaryPolicy) -> (Vec<(u64, u32)>, DeliverySchedule) {
        let mut config = MpConfig::new(4);
        config.net = NetConfig::jittery(Duration::from_millis(2), seed);
        config.adversary = policy;
        config.trace = true;
        let reg = MpRegister::spawn(&config, 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        let mut results = Vec::new();
        for i in 1..=6u32 {
            w.write(i * 10);
            results.push(r.read());
        }
        let schedule = reg.delivery_schedule().expect("tracing on");
        reg.shutdown();
        (results, schedule)
    }

    #[test]
    fn every_canned_adversary_keeps_the_register_correct() {
        // Sequential writes/reads must decide identically under every
        // canned policy — the adversary shapes the schedule, never the
        // register's sequential semantics.
        let expected: Vec<(u64, u32)> = (1..=6).map(|i| (u64::from(i), i * 10)).collect();
        for (name, policy) in AdversaryPolicy::canned(4, 1) {
            let (results, schedule) = adversarial_run(42, policy);
            assert_eq!(results, expected, "{name}: wrong read decisions");
            assert!(!schedule.is_empty(), "{name}: tracing must record the schedule");
        }
    }

    #[test]
    fn same_seed_same_policy_same_schedule() {
        // The adversarial determinism contract: seed + policy + command
        // sequence fully determine the delivery schedule.
        for (name, policy) in AdversaryPolicy::canned(4, 1) {
            let (results_a, schedule_a) = adversarial_run(42, policy.clone());
            let (results_b, schedule_b) = adversarial_run(42, policy);
            assert_eq!(schedule_a, schedule_b, "{name}: schedule must replay");
            assert_eq!(results_a, results_b, "{name}: decisions must replay");
        }
    }

    #[test]
    fn adversarial_schedules_differ_from_the_plain_one() {
        let (_, plain) = seeded_run(42);
        let mut shaped = 0;
        for (_, policy) in AdversaryPolicy::canned(4, 1) {
            let (_, schedule) = adversarial_run(42, policy);
            if schedule != plain {
                shaped += 1;
            }
        }
        assert!(shaped >= 4, "canned adversaries must actually reshape delivery ({shaped}/5)");
    }

    #[test]
    fn hold_back_register_with_byzantine_node_stays_correct() {
        // The pen on p1→p2 composed with a declared-Byzantine p4: quorums
        // must still form among {p1, p2, p3} even though p2 observes every
        // write late.
        let mut config = MpConfig::new(4);
        config.byzantine = vec![ProcessId::new(4)];
        config.adversary = AdversaryPolicy::hold_back(ProcessId::new(1), ProcessId::new(2), 2);
        let reg = MpRegister::spawn(&config, 0u32);
        let w = reg.client(ProcessId::new(1));
        let r = reg.client(ProcessId::new(2));
        for i in 1..=4u32 {
            w.write(i);
            assert_eq!(r.read(), (u64::from(i), i), "held reader must still read fresh");
        }
        reg.shutdown();
    }
}
