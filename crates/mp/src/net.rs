//! A simulated asynchronous message-passing network with authenticated
//! point-to-point channels.
//!
//! Assumptions match those of Mostéfaoui–Petrolia–Raynal–Jard [11] and
//! Srikanth–Toueg [13]: channels are reliable and FIFO per link, delivery is
//! asynchronous (optionally with seeded jitter), and a receiver always knows
//! the true sender (no spoofing) — Byzantine nodes may send arbitrary
//! *message contents* but only under their own identity.

use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use byzreg_runtime::ProcessId;

/// An addressed, timestamped message in flight.
struct Envelope<M> {
    from: ProcessId,
    deliver_at: Instant,
    payload: M,
}

/// Seeded delivery-jitter configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetConfig {
    /// Maximum artificial delivery delay; `None`/zero = deliver immediately.
    pub max_jitter: Duration,
    /// Seed for the per-send jitter.
    pub seed: u64,
}

impl NetConfig {
    /// No artificial delays.
    #[must_use]
    pub fn instant() -> Self {
        NetConfig::default()
    }

    /// Seeded jitter up to `max`.
    #[must_use]
    pub fn jittery(max: Duration, seed: u64) -> Self {
        NetConfig { max_jitter: max, seed }
    }

    /// The artificial delivery delay of `sender`'s `send_index`-th send.
    ///
    /// A pure function of `(seed, sender, send_index)`: the entire
    /// delivery schedule of a run is reproducible from the seed alone —
    /// two runs with the same seed delay every message identically.
    /// [`Endpoint::send`] draws its delays from here, in send order.
    #[must_use]
    pub fn jitter_for(&self, sender: ProcessId, send_index: u64) -> Duration {
        if self.max_jitter.is_zero() {
            return Duration::ZERO;
        }
        let h = splitmix64(self.seed ^ send_index ^ ((sender.index() as u64) << 48));
        Duration::from_nanos(h % self.max_jitter.as_nanos().max(1) as u64)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One node's attachment to the network.
pub struct Endpoint<M> {
    me: ProcessId,
    peers: Vec<Sender<Envelope<M>>>,
    inbox: Receiver<Envelope<M>>,
    /// A message already received but not yet due for delivery.
    held: parking_lot::Mutex<Option<Envelope<M>>>,
    config: NetConfig,
    sends: std::sync::atomic::AtomicU64,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Sends `payload` to `to` (authenticated: stamped with the true sender).
    pub fn send(&self, to: ProcessId, payload: M) {
        let n = self.sends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let jitter = self.config.jitter_for(self.me, n);
        let env = Envelope { from: self.me, deliver_at: Instant::now() + jitter, payload };
        // Reliable channels: a send to a live node never fails; sends to a
        // shut-down node are dropped, which only ever happens at teardown.
        let _ = self.peers[to.zero_based()].send(env);
    }

    /// Broadcasts clones of `payload` to every node (including the sender).
    pub fn broadcast(&self, payload: M)
    where
        M: Clone,
    {
        for i in 1..=self.peers.len() {
            self.send(ProcessId::new(i), payload.clone());
        }
    }

    /// Receives the next due message, waiting up to `timeout`.
    /// Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, M)> {
        let deadline = Instant::now() + timeout;
        loop {
            // Deliver a held message once due.
            {
                let mut held = self.held.lock();
                if let Some(env) = held.take() {
                    let now = Instant::now();
                    if env.deliver_at <= now {
                        return Some((env.from, env.payload));
                    }
                    let wait = env.deliver_at.min(deadline) - now;
                    *held = Some(env);
                    drop(held);
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(wait.min(Duration::from_micros(200)));
                    continue;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(env) => {
                    *self.held.lock() = Some(env);
                }
                Err(_) => return None,
            }
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint({})", self.me)
    }
}

/// Builds a fully connected network of `n` nodes; returns one [`Endpoint`]
/// per node (index `i` ⇔ `p_{i+1}`).
#[must_use]
pub fn network<M: Send + 'static>(n: usize, config: NetConfig) -> Vec<Endpoint<M>> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| Endpoint {
            me: ProcessId::new(i + 1),
            peers: senders.clone(),
            inbox,
            held: parking_lot::Mutex::new(None),
            config,
            sends: std::sync::atomic::AtomicU64::new(0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_with_true_sender() {
        let eps = network::<u32>(3, NetConfig::instant());
        eps[0].send(ProcessId::new(3), 42);
        let (from, msg) = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, ProcessId::new(1));
        assert_eq!(msg, 42);
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let eps = network::<&str>(3, NetConfig::instant());
        eps[1].broadcast("hello");
        for ep in &eps {
            let (from, msg) = ep.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(from, ProcessId::new(2));
            assert_eq!(msg, "hello");
        }
    }

    #[test]
    fn recv_times_out_when_quiet() {
        let eps = network::<u32>(2, NetConfig::instant());
        assert!(eps[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn links_are_fifo() {
        let eps = network::<u32>(2, NetConfig::instant());
        for i in 0..100 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..100 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(msg, i);
        }
    }

    /// The delivery schedule of `n` senders each performing `sends` sends.
    fn schedule(config: &NetConfig, n: usize, sends: u64) -> Vec<Duration> {
        (1..=n)
            .flat_map(|s| (0..sends).map(move |i| (ProcessId::new(s), i)))
            .map(|(sender, i)| config.jitter_for(sender, i))
            .collect()
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        // The satellite guarantee of the seeded splitmix64 jitter path:
        // two runs with the same seed delay every message identically.
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let b = NetConfig::jittery(Duration::from_millis(3), 42);
        assert_eq!(schedule(&a, 4, 64), schedule(&b, 4, 64));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let c = NetConfig::jittery(Duration::from_millis(3), 43);
        assert_ne!(schedule(&a, 4, 64), schedule(&c, 4, 64));
    }

    #[test]
    fn jitter_is_bounded_and_nontrivial() {
        let config = NetConfig::jittery(Duration::from_millis(2), 7);
        let sched = schedule(&config, 3, 100);
        assert!(sched.iter().all(|d| *d < Duration::from_millis(2)));
        assert!(sched.iter().any(|d| !d.is_zero()), "all-zero jitter would be a broken hash");
        assert!(
            NetConfig::instant().jitter_for(ProcessId::new(1), 0).is_zero(),
            "no jitter configured means immediate delivery"
        );
    }

    #[test]
    fn jittered_messages_still_arrive() {
        let eps = network::<u32>(2, NetConfig::jittery(Duration::from_millis(2), 7));
        for i in 0..20 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..20 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg, i, "per-link FIFO holds despite jitter");
        }
    }
}
