//! A simulated asynchronous message-passing network with authenticated
//! point-to-point channels and a **virtual-time delivery schedule**.
//!
//! Assumptions match those of Mostéfaoui–Petrolia–Raynal–Jard [11] and
//! Srikanth–Toueg [13]: channels are reliable and FIFO per link, delivery is
//! asynchronous, and a receiver always knows the true sender (no spoofing) —
//! Byzantine nodes may send arbitrary *message contents* but only under
//! their own identity.
//!
//! # Virtual time
//!
//! The network is a discrete-event queue. Every send is stamped with a
//! *virtual* delivery instant — the network's current virtual clock plus a
//! seeded jitter drawn from [`NetConfig::jitter_for`] — and messages are
//! handed to receivers in `(deliver_at, send seq)` order. Nothing ever
//! sleeps: jitter shapes the *interleaving* of deliveries (which is what an
//! asynchronous adversary controls), not wall-clock latency. Two runs with
//! the same seed and the same send sequence therefore produce the identical
//! delivery schedule — the property the reactor determinism tests pin down.
//!
//! Per-link FIFO is preserved under jitter: a link's delivery instants are
//! forced non-decreasing, and the global send sequence number breaks ties
//! in send order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use byzreg_runtime::ProcessId;

/// Seeded delivery-jitter configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetConfig {
    /// Maximum artificial delivery delay (virtual); `None`/zero = deliver
    /// in send order.
    pub max_jitter: Duration,
    /// Seed for the per-send jitter.
    pub seed: u64,
}

impl NetConfig {
    /// No artificial delays.
    #[must_use]
    pub fn instant() -> Self {
        NetConfig::default()
    }

    /// Seeded jitter up to `max`.
    #[must_use]
    pub fn jittery(max: Duration, seed: u64) -> Self {
        NetConfig { max_jitter: max, seed }
    }

    /// The artificial delivery delay of `sender`'s `send_index`-th send.
    ///
    /// A pure function of `(seed, sender, send_index)`: the entire
    /// delivery schedule of a run is reproducible from the seed alone —
    /// two runs with the same seed delay every message identically.
    /// [`Endpoint::send`] draws its delays from here, in send order.
    #[must_use]
    pub fn jitter_for(&self, sender: ProcessId, send_index: u64) -> Duration {
        if self.max_jitter.is_zero() {
            return Duration::ZERO;
        }
        let h = splitmix64(self.seed ^ send_index ^ ((sender.index() as u64) << 48));
        Duration::from_nanos(h % self.max_jitter.as_nanos().max(1) as u64)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An addressed message scheduled for virtual delivery.
struct Envelope<M> {
    from: ProcessId,
    /// Virtual delivery instant (nanoseconds on the virtual clock).
    deliver_at: u64,
    /// Global send sequence number: total tie-break, FIFO per link.
    seq: u64,
    payload: M,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The delivery order of a network so far, as `(from, to)` pairs — the
/// observable the same-seed determinism tests compare across runs.
pub type DeliverySchedule = Vec<(ProcessId, ProcessId)>;

struct NetState<M> {
    /// The virtual clock: the largest delivery instant handed out so far.
    now: u64,
    /// Next global send sequence number.
    seq: u64,
    /// Scheduled-but-undelivered messages, one min-heap per destination.
    queues: Vec<BinaryHeap<Reverse<Envelope<M>>>>,
    /// Last scheduled delivery instant per `(from, to)` link (FIFO floor).
    link_clock: Vec<u64>,
    /// Per-sender send index (input to [`NetConfig::jitter_for`]).
    sends: Vec<u64>,
    /// Recorded delivery order, when tracing is on.
    trace: Option<DeliverySchedule>,
}

/// The shared fabric of one simulated network: destination queues, the
/// virtual clock, and an optional wake hook for a hosting reactor task.
pub(crate) struct Net<M> {
    n: usize,
    config: NetConfig,
    state: Mutex<NetState<M>>,
    /// Signals blocked [`Endpoint::recv_timeout`] callers on every send.
    cv: Condvar,
    /// Invoked (outside the state lock) after every send, so a reactor can
    /// schedule the task that drains this network.
    wake: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl<M: Send + 'static> Net<M> {
    pub(crate) fn new(n: usize, config: NetConfig, traced: bool) -> Arc<Self> {
        Arc::new(Net {
            n,
            config,
            state: Mutex::new(NetState {
                now: 0,
                seq: 0,
                queues: (0..n).map(|_| BinaryHeap::new()).collect(),
                link_clock: vec![0; n * n],
                sends: vec![0; n],
                trace: traced.then(Vec::new),
            }),
            cv: Condvar::new(),
            wake: Mutex::new(None),
        })
    }

    /// The endpoint of node `pid` on this network.
    pub(crate) fn endpoint(self: &Arc<Self>, pid: ProcessId) -> Endpoint<M> {
        Endpoint { me: pid, net: Arc::clone(self) }
    }

    /// Installs the wake hook a hosting reactor task is scheduled through.
    pub(crate) fn set_wake(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.wake.lock() = Some(hook);
    }

    /// Pops the globally next due message among the destinations marked in
    /// `managed` (virtual-time order). Used by the register task that hosts
    /// this network's protocol nodes; unmanaged destinations (declared-
    /// Byzantine nodes read externally) keep their own queues.
    pub(crate) fn next_event(&self, managed: &[bool]) -> Option<(ProcessId, ProcessId, M)> {
        let mut s = self.state.lock();
        let dest = (0..self.n)
            .filter(|d| managed[*d])
            .filter_map(|d| s.queues[d].peek().map(|Reverse(e)| ((e.deliver_at, e.seq), d)))
            .min()
            .map(|(_, d)| d)?;
        let Reverse(env) = s.queues[dest].pop().expect("peeked head");
        s.now = s.now.max(env.deliver_at);
        let to = ProcessId::new(dest + 1);
        if let Some(t) = s.trace.as_mut() {
            t.push((env.from, to));
        }
        Some((to, env.from, env.payload))
    }

    /// A snapshot of the delivery order recorded so far (`None` when the
    /// network was built without tracing).
    pub(crate) fn trace(&self) -> Option<DeliverySchedule> {
        self.state.lock().trace.clone()
    }
}

/// One node's attachment to the network.
pub struct Endpoint<M> {
    me: ProcessId,
    net: Arc<Net<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Sends `payload` to `to` (authenticated: stamped with the true
    /// sender), scheduling it on the virtual delivery queue. Reliable
    /// channels: a send never fails.
    pub fn send(&self, to: ProcessId, payload: M) {
        {
            let mut s = self.net.state.lock();
            let me0 = self.me.zero_based();
            let idx = s.sends[me0];
            s.sends[me0] += 1;
            let jitter = self.net.config.jitter_for(self.me, idx).as_nanos() as u64;
            let link = me0 * self.net.n + to.zero_based();
            // FIFO per link: a link's delivery instants never decrease.
            let deliver_at = (s.now + jitter).max(s.link_clock[link]);
            s.link_clock[link] = deliver_at;
            let seq = s.seq;
            s.seq += 1;
            s.queues[to.zero_based()].push(Reverse(Envelope {
                from: self.me,
                deliver_at,
                seq,
                payload,
            }));
        }
        self.net.cv.notify_all();
        let wake = self.net.wake.lock().clone();
        if let Some(wake) = wake {
            wake();
        }
    }

    /// Broadcasts clones of `payload` to every node (including the sender).
    pub fn broadcast(&self, payload: M)
    where
        M: Clone,
    {
        for i in 1..=self.net.n {
            self.send(ProcessId::new(i), payload.clone());
        }
    }

    /// Receives this endpoint's next due message, waiting up to `timeout`
    /// (wall clock) for one to be sent. Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, M)> {
        let deadline = Instant::now() + timeout;
        let mut s = self.net.state.lock();
        loop {
            if let Some(Reverse(env)) = s.queues[self.me.zero_based()].pop() {
                s.now = s.now.max(env.deliver_at);
                if let Some(t) = s.trace.as_mut() {
                    t.push((env.from, self.me));
                }
                return Some((env.from, env.payload));
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let _ = self.net.cv.wait_for(&mut s, remaining);
        }
    }
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint { me: self.me, net: Arc::clone(&self.net) }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint({})", self.me)
    }
}

/// Builds a fully connected network of `n` nodes; returns one [`Endpoint`]
/// per node (index `i` ⇔ `p_{i+1}`).
#[must_use]
pub fn network<M: Send + 'static>(n: usize, config: NetConfig) -> Vec<Endpoint<M>> {
    let net = Net::new(n, config, false);
    (1..=n).map(|i| net.endpoint(ProcessId::new(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_with_true_sender() {
        let eps = network::<u32>(3, NetConfig::instant());
        eps[0].send(ProcessId::new(3), 42);
        let (from, msg) = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, ProcessId::new(1));
        assert_eq!(msg, 42);
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let eps = network::<&str>(3, NetConfig::instant());
        eps[1].broadcast("hello");
        for ep in &eps {
            let (from, msg) = ep.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(from, ProcessId::new(2));
            assert_eq!(msg, "hello");
        }
    }

    #[test]
    fn recv_times_out_when_quiet() {
        let eps = network::<u32>(2, NetConfig::instant());
        assert!(eps[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn links_are_fifo() {
        let eps = network::<u32>(2, NetConfig::instant());
        for i in 0..100 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..100 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(msg, i);
        }
    }

    /// The delivery schedule of `n` senders each performing `sends` sends.
    fn schedule(config: &NetConfig, n: usize, sends: u64) -> Vec<Duration> {
        (1..=n)
            .flat_map(|s| (0..sends).map(move |i| (ProcessId::new(s), i)))
            .map(|(sender, i)| config.jitter_for(sender, i))
            .collect()
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        // The guarantee of the seeded splitmix64 jitter path: two runs with
        // the same seed delay every message identically.
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let b = NetConfig::jittery(Duration::from_millis(3), 42);
        assert_eq!(schedule(&a, 4, 64), schedule(&b, 4, 64));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let c = NetConfig::jittery(Duration::from_millis(3), 43);
        assert_ne!(schedule(&a, 4, 64), schedule(&c, 4, 64));
    }

    #[test]
    fn jitter_is_bounded_and_nontrivial() {
        let config = NetConfig::jittery(Duration::from_millis(2), 7);
        let sched = schedule(&config, 3, 100);
        assert!(sched.iter().all(|d| *d < Duration::from_millis(2)));
        assert!(sched.iter().any(|d| !d.is_zero()), "all-zero jitter would be a broken hash");
        assert!(
            NetConfig::instant().jitter_for(ProcessId::new(1), 0).is_zero(),
            "no jitter configured means immediate delivery"
        );
    }

    #[test]
    fn jittered_messages_still_arrive_in_link_order() {
        let eps = network::<u32>(2, NetConfig::jittery(Duration::from_millis(2), 7));
        for i in 0..20 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..20 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg, i, "per-link FIFO holds despite jitter");
        }
    }

    /// Drives the identical send pattern on a fresh traced network and
    /// returns the receive-side delivery order at node 3.
    fn traced_run(seed: u64) -> Vec<(ProcessId, u32)> {
        let net = Net::<u32>::new(3, NetConfig::jittery(Duration::from_millis(4), seed), true);
        let eps: Vec<_> = (1..=3).map(|i| net.endpoint(ProcessId::new(i))).collect();
        for round in 0..32u32 {
            eps[0].send(ProcessId::new(3), round);
            eps[1].send(ProcessId::new(3), 100 + round);
        }
        let mut got = Vec::new();
        while let Some(pair) = eps[2].recv_timeout(Duration::from_millis(5)) {
            got.push(pair);
        }
        assert_eq!(got.len(), 64, "reliable channels deliver everything");
        assert_eq!(net.trace().unwrap().len(), 64);
        got
    }

    #[test]
    fn same_seed_same_virtual_delivery_order() {
        // Two senders race toward one receiver: the interleaving is decided
        // entirely by the seeded virtual schedule, so equal seeds replay it.
        assert_eq!(traced_run(11), traced_run(11));
    }

    #[test]
    fn different_seeds_interleave_senders_differently() {
        assert_ne!(traced_run(11), traced_run(12));
    }

    #[test]
    fn jitter_reorders_across_links_but_not_within() {
        let order = traced_run(11);
        let from_p1: Vec<u32> =
            order.iter().filter(|(f, _)| *f == ProcessId::new(1)).map(|(_, v)| *v).collect();
        assert_eq!(from_p1, (0..32).collect::<Vec<_>>(), "per-link FIFO");
        let first_batch: Vec<ProcessId> = order.iter().take(8).map(|(f, _)| *f).collect();
        assert!(
            first_batch.iter().any(|f| *f == ProcessId::new(2)),
            "jitter should interleave the two senders, got {first_batch:?}"
        );
    }
}
