//! A simulated asynchronous message-passing network with authenticated
//! point-to-point channels and a **virtual-time delivery schedule**.
//!
//! Assumptions match those of Mostéfaoui–Petrolia–Raynal–Jard [11] and
//! Srikanth–Toueg [13]: channels are reliable and FIFO per link, delivery is
//! asynchronous, and a receiver always knows the true sender (no spoofing) —
//! Byzantine nodes may send arbitrary *message contents* but only under
//! their own identity.
//!
//! # Virtual time
//!
//! The network is a discrete-event queue. Every send is stamped with a
//! *virtual* delivery instant — the network's current virtual clock plus a
//! seeded jitter drawn from [`NetConfig::jitter_for`] — and messages are
//! handed to receivers in `(deliver_at, send seq)` order. Nothing ever
//! sleeps: jitter shapes the *interleaving* of deliveries (which is what an
//! asynchronous adversary controls), not wall-clock latency. Two runs with
//! the same seed and the same send sequence therefore produce the identical
//! delivery schedule — the property the reactor determinism tests pin down.
//!
//! # Heap invariants
//!
//! The delivery schedule is a set of per-destination min-heaps of
//! [`Envelope`]s ordered by `(deliver_at, seq)`. Every layer above this
//! module — the reactor's event pops, and any [`AdversaryPolicy`] tactic —
//! relies on three invariants the heap maintains:
//!
//! 1. **Per-link FIFO floor** — `link_clock[(from, to)]` records the last
//!    delivery instant scheduled on each directed link, and every send's
//!    instant is clamped to at least that floor before insertion. No matter
//!    how a policy shifts instants, two messages on one link can never
//!    swap: their instants are non-decreasing in send order.
//! 2. **`(deliver_at, seq)` tiebreak** — `seq` is a single global send
//!    counter, so messages scheduled for the same instant (common under the
//!    FIFO clamp, and after a partition heals a burst onto one instant)
//!    deliver in send order. Total order ⇒ no unordered heap races.
//! 3. **Monotone virtual clock** — `now` only ratchets up to the largest
//!    instant handed out, so later sends are never scheduled before
//!    already-delivered traffic on the same link.
//!
//! An [`AdversaryPolicy`] manipulates *tentative* instants before the FIFO
//! clamp (delays, partition floors), picks among FIFO-safe heap heads after
//! it (bounded reorder), or diverts a link's envelopes into a pen that
//! re-enters the heap through the same clamp (hold-back) — so every tactic
//! inherits the invariants instead of having to re-establish them.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use byzreg_runtime::ProcessId;

use crate::adversary::AdversaryPolicy;

/// Seeded delivery-jitter configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetConfig {
    /// Maximum artificial delivery delay (virtual); `None`/zero = deliver
    /// in send order.
    pub max_jitter: Duration,
    /// Seed for the per-send jitter.
    pub seed: u64,
}

impl NetConfig {
    /// No artificial delays.
    #[must_use]
    pub fn instant() -> Self {
        NetConfig::default()
    }

    /// Seeded jitter up to `max`.
    #[must_use]
    pub fn jittery(max: Duration, seed: u64) -> Self {
        NetConfig { max_jitter: max, seed }
    }

    /// The artificial delivery delay of `sender`'s `send_index`-th send.
    ///
    /// A pure function of `(seed, sender, send_index)`: the entire
    /// delivery schedule of a run is reproducible from the seed alone —
    /// two runs with the same seed delay every message identically.
    /// [`Endpoint::send`] draws its delays from here, in send order.
    #[must_use]
    pub fn jitter_for(&self, sender: ProcessId, send_index: u64) -> Duration {
        if self.max_jitter.is_zero() {
            return Duration::ZERO;
        }
        let h = splitmix64(self.seed ^ send_index ^ ((sender.index() as u64) << 48));
        Duration::from_nanos(h % self.max_jitter.as_nanos().max(1) as u64)
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An addressed message scheduled for virtual delivery.
struct Envelope<M> {
    from: ProcessId,
    /// Virtual delivery instant (nanoseconds on the virtual clock).
    deliver_at: u64,
    /// Global send sequence number: total tie-break, FIFO per link.
    seq: u64,
    payload: M,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The delivery order of a network so far, as `(from, to)` pairs — the
/// observable the same-seed determinism tests compare across runs.
pub type DeliverySchedule = Vec<(ProcessId, ProcessId)>;

/// One hold-back pen (one per [`AdversaryPolicy`] hold tactic): envelopes
/// on `writer → victim` wait here until `replies` deliveries from third
/// parties (neither the victim nor the writer itself) reach the writer
/// while the pen is non-empty.
struct Pen<M> {
    writer: ProcessId,
    victim: ProcessId,
    replies: usize,
    seen: usize,
    held: VecDeque<Envelope<M>>,
}

struct NetState<M> {
    /// The virtual clock: the largest delivery instant handed out so far.
    now: u64,
    /// Next global send sequence number.
    seq: u64,
    /// Scheduled-but-undelivered messages, one min-heap per destination.
    queues: Vec<BinaryHeap<Reverse<Envelope<M>>>>,
    /// Last scheduled delivery instant per `(from, to)` link (FIFO floor).
    link_clock: Vec<u64>,
    /// Per-sender send index (input to [`NetConfig::jitter_for`]).
    sends: Vec<u64>,
    /// Recorded delivery order, when tracing is on.
    trace: Option<DeliverySchedule>,
    /// Next adversarial reorder-draw index (advances per reorder pick).
    adv_draws: u64,
    /// Hold-back pens, one per adversary hold tactic.
    pens: Vec<Pen<M>>,
}

/// The shared fabric of one simulated network: destination queues, the
/// virtual clock, and an optional wake hook for a hosting reactor task.
pub(crate) struct Net<M> {
    n: usize,
    config: NetConfig,
    /// The adversarial delivery policy (inert by default).
    adversary: AdversaryPolicy,
    state: Mutex<NetState<M>>,
    /// Signals blocked [`Endpoint::recv_timeout`] callers on every send.
    cv: Condvar,
    /// Invoked (outside the state lock) after every send, so a reactor can
    /// schedule the task that drains this network.
    wake: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl<M: Send + 'static> Net<M> {
    pub(crate) fn new(
        n: usize,
        config: NetConfig,
        adversary: AdversaryPolicy,
        traced: bool,
    ) -> Arc<Self> {
        adversary.validate(n);
        let pens = adversary
            .holds()
            .into_iter()
            .map(|(writer, victim, replies)| Pen {
                writer,
                victim,
                replies,
                seen: 0,
                held: VecDeque::new(),
            })
            .collect();
        Arc::new(Net {
            n,
            config,
            adversary,
            state: Mutex::new(NetState {
                now: 0,
                seq: 0,
                queues: (0..n).map(|_| BinaryHeap::new()).collect(),
                link_clock: vec![0; n * n],
                sends: vec![0; n],
                trace: traced.then(Vec::new),
                adv_draws: 0,
                pens,
            }),
            cv: Condvar::new(),
            wake: Mutex::new(None),
        })
    }

    /// The endpoint of node `pid` on this network.
    pub(crate) fn endpoint(self: &Arc<Self>, pid: ProcessId) -> Endpoint<M> {
        Endpoint { me: pid, net: Arc::clone(self) }
    }

    /// Installs the wake hook a hosting reactor task is scheduled through.
    pub(crate) fn set_wake(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.wake.lock() = Some(hook);
    }

    /// Pops the globally next due message among the destinations marked in
    /// `managed` (virtual-time order; the adversary's reorder window may
    /// substitute another FIFO-safe head of the chosen destination). Used
    /// by the register task that hosts this network's protocol nodes;
    /// unmanaged destinations (declared-Byzantine nodes read externally)
    /// keep their own queues.
    ///
    /// When no managed queue holds a message but a hold-back pen does, the
    /// pens are flushed and selection retries: reliable channels mean a
    /// held message can never be the reason the network goes silent.
    pub(crate) fn next_event(&self, managed: &[bool]) -> Option<(ProcessId, ProcessId, M)> {
        let mut s = self.state.lock();
        loop {
            let dest = (0..self.n)
                .filter(|d| managed[*d])
                .filter_map(|d| s.queues[d].peek().map(|Reverse(e)| ((e.deliver_at, e.seq), d)))
                .min()
                .map(|(_, d)| d);
            match dest {
                Some(dest) => {
                    let (env, flushed) = self.pop_for(&mut s, dest).expect("peeked head");
                    if flushed {
                        // A pen flush may have fed an unmanaged (Byzantine)
                        // destination blocked in recv_timeout.
                        self.cv.notify_all();
                    }
                    let to = ProcessId::new(dest + 1);
                    return Some((to, env.from, env.payload));
                }
                None => {
                    if !self.flush_pens(&mut s) {
                        return None;
                    }
                    self.cv.notify_all();
                }
            }
        }
    }

    /// Pops the next message for `dest`, applying the adversary's reorder
    /// window, ratcheting the virtual clock, recording the trace, and
    /// running hold-pen bookkeeping. Returns the envelope and whether a pen
    /// flushed (its messages are now deliverable at other destinations).
    fn pop_for(&self, s: &mut NetState<M>, dest: usize) -> Option<(Envelope<M>, bool)> {
        let to = ProcessId::new(dest + 1);
        let depth = self.adversary.reorder_depth(to);
        let env = if depth <= 1 {
            s.queues[dest].pop()?.0
        } else {
            // Bounded reorder: among the first `depth` scheduled messages,
            // only the oldest of each link may be released early — the
            // per-link FIFO invariant survives any pick by construction.
            let mut window = Vec::new();
            while window.len() < depth {
                match s.queues[dest].pop() {
                    Some(Reverse(e)) => window.push(e),
                    None => break,
                }
            }
            if window.is_empty() {
                return None;
            }
            let candidates: Vec<usize> = (0..window.len())
                .filter(|i| !window[..*i].iter().any(|p| p.from == window[*i].from))
                .collect();
            let pick = if candidates.len() > 1 {
                let draw = s.adv_draws;
                s.adv_draws += 1;
                candidates[self.adversary.reorder_pick(draw, candidates.len())]
            } else {
                candidates[0]
            };
            let env = window.remove(pick);
            for e in window {
                s.queues[dest].push(Reverse(e));
            }
            env
        };
        s.now = s.now.max(env.deliver_at);
        if let Some(t) = s.trace.as_mut() {
            t.push((env.from, to));
        }
        let flushed = self.note_delivery(s, to, env.from);
        Some((env, flushed))
    }

    /// Hold-pen bookkeeping after delivering a message from `from` to
    /// `to`: a delivery to a pen's writer from a third party — not the
    /// victim, and not the writer's own broadcast self-copy (the SWMR
    /// writer broadcasts to itself too; self-traffic is not a reply) —
    /// counts toward its reply threshold; pens at threshold flush into
    /// the victim's queue. Returns `true` if any pen flushed.
    fn note_delivery(&self, s: &mut NetState<M>, to: ProcessId, from: ProcessId) -> bool {
        let mut releases: Vec<(ProcessId, Envelope<M>)> = Vec::new();
        for pen in &mut s.pens {
            if pen.writer != to || pen.held.is_empty() || from == pen.victim || from == pen.writer {
                continue;
            }
            pen.seen += 1;
            if pen.seen >= pen.replies {
                Self::drain_pen(pen, &mut releases);
            }
        }
        self.release(s, releases)
    }

    /// Empties `pen` into `releases` and resets its reply count — the one
    /// place pen-drain semantics live, shared by the threshold release and
    /// both reliability fallbacks.
    fn drain_pen(pen: &mut Pen<M>, releases: &mut Vec<(ProcessId, Envelope<M>)>) {
        pen.seen = 0;
        let victim = pen.victim;
        releases.extend(pen.held.drain(..).map(|e| (victim, e)));
    }

    /// Flushes every pen matching `filter`. Returns `true` if anything was
    /// released.
    fn flush_where(&self, s: &mut NetState<M>, filter: impl Fn(&Pen<M>) -> bool) -> bool {
        let mut releases: Vec<(ProcessId, Envelope<M>)> = Vec::new();
        for pen in &mut s.pens {
            if filter(pen) {
                Self::drain_pen(pen, &mut releases);
            }
        }
        self.release(s, releases)
    }

    /// Flushes every pen unconditionally (the reliability fallback of
    /// [`Net::next_event`]). Returns `true` if anything was released.
    fn flush_pens(&self, s: &mut NetState<M>) -> bool {
        self.flush_where(s, |_| true)
    }

    /// Flushes only the pens addressed **to** `victim` (the reliability
    /// fallback of [`Endpoint::recv_timeout`]: a timed-out reader is owed
    /// its own held messages, but an unrelated endpoint's wall-clock
    /// timeout must not neuter holds elsewhere in the network). Returns
    /// `true` if anything was released.
    fn flush_pens_for(&self, s: &mut NetState<M>, victim: ProcessId) -> bool {
        self.flush_where(s, |pen| pen.victim == victim)
    }

    /// Re-enters released envelopes into their destination queues at the
    /// current virtual instant (never earlier than originally scheduled —
    /// the `(deliver_at, seq)` order keeps the pen's FIFO intact), still
    /// respecting any active partition cut (the floor is monotone, so pen
    /// FIFO survives it).
    fn release(&self, s: &mut NetState<M>, releases: Vec<(ProcessId, Envelope<M>)>) -> bool {
        let any = !releases.is_empty();
        let now = s.now;
        for (victim, mut env) in releases {
            env.deliver_at =
                self.adversary.partition_floor(env.from, victim, env.deliver_at.max(now));
            s.queues[victim.zero_based()].push(Reverse(env));
        }
        any
    }

    /// A snapshot of the delivery order recorded so far (`None` when the
    /// network was built without tracing).
    pub(crate) fn trace(&self) -> Option<DeliverySchedule> {
        self.state.lock().trace.clone()
    }
}

/// One node's attachment to the network.
pub struct Endpoint<M> {
    me: ProcessId,
    net: Arc<Net<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Sends `payload` to `to` (authenticated: stamped with the true
    /// sender), scheduling it on the virtual delivery queue — or into a
    /// hold-back pen when an adversary tactic captures the link. Reliable
    /// channels: a send never fails, and penned messages are still
    /// eventually delivered.
    pub fn send(&self, to: ProcessId, payload: M) {
        {
            let mut s = self.net.state.lock();
            let me0 = self.me.zero_based();
            let idx = s.sends[me0];
            s.sends[me0] += 1;
            let jitter = self.net.config.jitter_for(self.me, idx).as_nanos() as u64;
            let mut tentative = s.now + jitter;
            if !self.net.adversary.is_inert() {
                tentative = self.net.adversary.shift_send(self.me, to, idx, tentative);
            }
            let link = me0 * self.net.n + to.zero_based();
            // FIFO per link: a link's delivery instants never decrease,
            // whatever the adversary did to the tentative instant.
            let mut deliver_at = tentative.max(s.link_clock[link]);
            if !self.net.adversary.is_inert() {
                // The clamp can push an instant *into* an active partition
                // window; re-applying the floor on the clamped value keeps
                // the cut airtight (monotone, so the clamp still holds).
                deliver_at = self.net.adversary.partition_floor(self.me, to, deliver_at);
            }
            s.link_clock[link] = deliver_at;
            let seq = s.seq;
            s.seq += 1;
            let env = Envelope { from: self.me, deliver_at, seq, payload };
            let pen = s.pens.iter().position(|p| p.writer == self.me && p.victim == to);
            match pen {
                Some(p) => s.pens[p].held.push_back(env),
                None => s.queues[to.zero_based()].push(Reverse(env)),
            }
        }
        self.net.cv.notify_all();
        let wake = self.net.wake.lock().clone();
        if let Some(wake) = wake {
            wake();
        }
    }

    /// Broadcasts clones of `payload` to every node (including the sender).
    pub fn broadcast(&self, payload: M)
    where
        M: Clone,
    {
        for i in 1..=self.net.n {
            self.send(ProcessId::new(i), payload.clone());
        }
    }

    /// Receives this endpoint's next due message (through the adversary's
    /// reorder window, if any), waiting up to `timeout` (wall clock) for
    /// one to be sent. Returns `None` on timeout — but a timeout first
    /// flushes the hold-back pens *addressed to this endpoint* (reliable
    /// channels: a held message must not read as a silent network to its
    /// own victim; pens targeting other destinations are untouched) and
    /// retries.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, M)> {
        let deadline = Instant::now() + timeout;
        let mut s = self.net.state.lock();
        loop {
            if let Some((env, flushed)) = self.net.pop_for(&mut s, self.me.zero_based()) {
                if flushed {
                    self.net.cv.notify_all();
                }
                return Some((env.from, env.payload));
            }
            match deadline.checked_duration_since(Instant::now()) {
                Some(remaining) => {
                    let _ = self.net.cv.wait_for(&mut s, remaining);
                }
                None => {
                    if !self.net.flush_pens_for(&mut s, self.me) {
                        return None;
                    }
                }
            }
        }
    }
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint { me: self.me, net: Arc::clone(&self.net) }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint({})", self.me)
    }
}

/// Builds a fully connected network of `n` nodes; returns one [`Endpoint`]
/// per node (index `i` ⇔ `p_{i+1}`).
#[must_use]
pub fn network<M: Send + 'static>(n: usize, config: NetConfig) -> Vec<Endpoint<M>> {
    adversarial_network(n, config, AdversaryPolicy::none())
}

/// Builds a fully connected network of `n` nodes scheduled under an
/// [`AdversaryPolicy`] layered over the seeded jitter of `config`.
///
/// # Panics
///
/// Panics if the policy is inconsistent for an `n`-node network (see
/// [`AdversaryPolicy::validate`]).
#[must_use]
pub fn adversarial_network<M: Send + 'static>(
    n: usize,
    config: NetConfig,
    adversary: AdversaryPolicy,
) -> Vec<Endpoint<M>> {
    let net = Net::new(n, config, adversary, false);
    (1..=n).map(|i| net.endpoint(ProcessId::new(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_with_true_sender() {
        let eps = network::<u32>(3, NetConfig::instant());
        eps[0].send(ProcessId::new(3), 42);
        let (from, msg) = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, ProcessId::new(1));
        assert_eq!(msg, 42);
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let eps = network::<&str>(3, NetConfig::instant());
        eps[1].broadcast("hello");
        for ep in &eps {
            let (from, msg) = ep.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(from, ProcessId::new(2));
            assert_eq!(msg, "hello");
        }
    }

    #[test]
    fn recv_times_out_when_quiet() {
        let eps = network::<u32>(2, NetConfig::instant());
        assert!(eps[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn links_are_fifo() {
        let eps = network::<u32>(2, NetConfig::instant());
        for i in 0..100 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..100 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(msg, i);
        }
    }

    /// The delivery schedule of `n` senders each performing `sends` sends.
    fn schedule(config: &NetConfig, n: usize, sends: u64) -> Vec<Duration> {
        (1..=n)
            .flat_map(|s| (0..sends).map(move |i| (ProcessId::new(s), i)))
            .map(|(sender, i)| config.jitter_for(sender, i))
            .collect()
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        // The guarantee of the seeded splitmix64 jitter path: two runs with
        // the same seed delay every message identically.
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let b = NetConfig::jittery(Duration::from_millis(3), 42);
        assert_eq!(schedule(&a, 4, 64), schedule(&b, 4, 64));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = NetConfig::jittery(Duration::from_millis(3), 42);
        let c = NetConfig::jittery(Duration::from_millis(3), 43);
        assert_ne!(schedule(&a, 4, 64), schedule(&c, 4, 64));
    }

    #[test]
    fn jitter_is_bounded_and_nontrivial() {
        let config = NetConfig::jittery(Duration::from_millis(2), 7);
        let sched = schedule(&config, 3, 100);
        assert!(sched.iter().all(|d| *d < Duration::from_millis(2)));
        assert!(sched.iter().any(|d| !d.is_zero()), "all-zero jitter would be a broken hash");
        assert!(
            NetConfig::instant().jitter_for(ProcessId::new(1), 0).is_zero(),
            "no jitter configured means immediate delivery"
        );
    }

    #[test]
    fn jittered_messages_still_arrive_in_link_order() {
        let eps = network::<u32>(2, NetConfig::jittery(Duration::from_millis(2), 7));
        for i in 0..20 {
            eps[0].send(ProcessId::new(2), i);
        }
        for i in 0..20 {
            let (_, msg) = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg, i, "per-link FIFO holds despite jitter");
        }
    }

    /// Drives the identical send pattern on a fresh traced network and
    /// returns the receive-side delivery order at node 3.
    fn traced_run(seed: u64) -> Vec<(ProcessId, u32)> {
        let config = NetConfig::jittery(Duration::from_millis(4), seed);
        let net = Net::<u32>::new(3, config, AdversaryPolicy::none(), true);
        let eps: Vec<_> = (1..=3).map(|i| net.endpoint(ProcessId::new(i))).collect();
        for round in 0..32u32 {
            eps[0].send(ProcessId::new(3), round);
            eps[1].send(ProcessId::new(3), 100 + round);
        }
        let mut got = Vec::new();
        while let Some(pair) = eps[2].recv_timeout(Duration::from_millis(5)) {
            got.push(pair);
        }
        assert_eq!(got.len(), 64, "reliable channels deliver everything");
        assert_eq!(net.trace().unwrap().len(), 64);
        got
    }

    #[test]
    fn same_seed_same_virtual_delivery_order() {
        // Two senders race toward one receiver: the interleaving is decided
        // entirely by the seeded virtual schedule, so equal seeds replay it.
        assert_eq!(traced_run(11), traced_run(11));
    }

    #[test]
    fn different_seeds_interleave_senders_differently() {
        assert_ne!(traced_run(11), traced_run(12));
    }

    #[test]
    fn adversarial_delay_keeps_links_fifo() {
        use crate::adversary::AdversaryPolicy;
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::jittery(Duration::from_millis(1), 5),
            AdversaryPolicy::slow_reader(ProcessId::new(2), Duration::from_millis(4), 9),
        );
        for i in 0..50 {
            eps[0].send(ProcessId::new(2), i);
            eps[2].send(ProcessId::new(2), 100 + i);
        }
        let mut from_p1 = Vec::new();
        let mut from_p3 = Vec::new();
        while let Some((from, v)) = eps[1].recv_timeout(Duration::from_millis(5)) {
            if from == ProcessId::new(1) {
                from_p1.push(v);
            } else {
                from_p3.push(v);
            }
        }
        assert_eq!(from_p1, (0..50).collect::<Vec<_>>(), "targeted link stays FIFO");
        assert_eq!(from_p3, (100..150).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_reorder_interleaves_but_keeps_links_fifo() {
        use crate::adversary::AdversaryPolicy;
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::instant(),
            AdversaryPolicy::bounded_reorder(3, 21),
        );
        for i in 0..40 {
            eps[0].send(ProcessId::new(3), i);
            eps[1].send(ProcessId::new(3), 100 + i);
        }
        let mut order = Vec::new();
        while let Some(pair) = eps[2].recv_timeout(Duration::from_millis(5)) {
            order.push(pair);
        }
        assert_eq!(order.len(), 80, "reorder must not lose messages");
        let of = |p: usize| -> Vec<u32> {
            order.iter().filter(|(f, _)| *f == ProcessId::new(p)).map(|(_, v)| *v).collect()
        };
        assert_eq!(of(1), (0..40).collect::<Vec<_>>(), "per-link FIFO under reorder");
        assert_eq!(of(2), (100..140).collect::<Vec<_>>());
        // An instant network without the adversary delivers in pure send
        // order (strict alternation); the window must have broken it.
        let senders: Vec<ProcessId> = order.iter().map(|(f, _)| *f).collect();
        let alternating: Vec<ProcessId> = (0..80).map(|i| ProcessId::new(1 + i % 2)).collect();
        assert_ne!(senders, alternating, "depth-3 window should visibly reorder");
    }

    #[test]
    fn partition_delays_crossing_traffic_until_heal() {
        use crate::adversary::AdversaryPolicy;
        // p2 is cut off for the first 2 virtual ms; p1→p3 flows normally.
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::jittery(Duration::from_micros(100), 3),
            AdversaryPolicy::split(vec![ProcessId::new(2)], Duration::from_millis(2), 0),
        );
        eps[0].send(ProcessId::new(2), 1); // crossing: held to heal instant
        eps[0].send(ProcessId::new(3), 2); // same side: immediate
        let (_, v) = eps[2].recv_timeout(Duration::from_millis(5)).unwrap();
        assert_eq!(v, 2);
        // The crossing message is still delivered (reliability) — at the
        // heal instant on the virtual clock, which pop order realizes.
        let (_, v) = eps[1].recv_timeout(Duration::from_millis(50)).unwrap();
        assert_eq!(v, 1, "partitioned traffic arrives after the heal");
    }

    #[test]
    fn hold_back_releases_after_replies_reach_the_writer() {
        use crate::adversary::AdversaryPolicy;
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::instant(),
            AdversaryPolicy::hold_back(p1, p2, 2),
        );
        eps[0].send(p2, 7); // penned until two replies reach the writer
        eps[2].send(p1, 30);
        eps[2].send(p1, 31);
        assert_eq!(eps[0].recv_timeout(Duration::from_secs(1)).unwrap(), (p3, 30));
        assert_eq!(eps[0].recv_timeout(Duration::from_secs(1)).unwrap(), (p3, 31));
        // The second delivery to the writer met the threshold: flushed.
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(1)).unwrap(),
            (p1, 7),
            "pen releases once the quorum of replies formed"
        );
    }

    #[test]
    fn writer_self_traffic_does_not_release_a_hold() {
        use crate::adversary::AdversaryPolicy;
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::instant(),
            AdversaryPolicy::hold_back(p1, p2, 1),
        );
        eps[0].send(p2, 7); // penned
                            // The SWMR writer broadcasts to itself too; a self-copy delivery
                            // must not count as a "reply" or the stale-quorum schedule would
                            // dissolve before any other process responded.
        eps[0].send(p1, 1);
        assert_eq!(eps[0].recv_timeout(Duration::from_secs(1)).unwrap(), (p1, 1));
        eps[2].send(p2, 8);
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(1)).unwrap(),
            (p3, 8),
            "pen survived the writer's self-delivery"
        );
        // One genuine third-party reply releases it.
        eps[2].send(p1, 2);
        assert_eq!(eps[0].recv_timeout(Duration::from_secs(1)).unwrap(), (p3, 2));
        assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap(), (p1, 7));
    }

    #[test]
    fn unrelated_timeouts_do_not_release_other_destinations_pens() {
        use crate::adversary::AdversaryPolicy;
        let (p1, p2, p3) = (ProcessId::new(1), ProcessId::new(2), ProcessId::new(3));
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::instant(),
            AdversaryPolicy::hold_back(p1, p2, 5),
        );
        eps[0].send(p2, 7); // penned
                            // p3's wall-clock timeout must not flush a pen addressed to p2 —
                            // otherwise any endpoint polling an empty queue (e.g. a Byzantine
                            // observer) would silently neuter hold tactics network-wide.
        assert!(eps[2].recv_timeout(Duration::from_millis(10)).is_none());
        eps[2].send(p2, 8); // direct traffic to the victim, sent later
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(1)).unwrap(),
            (p3, 8),
            "the later direct message arrives first: the pen was still intact"
        );
        assert_eq!(
            eps[1].recv_timeout(Duration::from_millis(50)).unwrap(),
            (p1, 7),
            "the victim's own timeout fallback heals its pen"
        );
    }

    #[test]
    fn held_messages_are_not_lost_when_traffic_drains() {
        use crate::adversary::AdversaryPolicy;
        let (p1, p2) = (ProcessId::new(1), ProcessId::new(2));
        let eps = adversarial_network::<u32>(
            3,
            NetConfig::instant(),
            AdversaryPolicy::hold_back(p1, p2, 5),
        );
        eps[0].send(p2, 9); // penned; no reply traffic will ever come
                            // The victim's recv timeout flushes the pens (reliability fallback).
        assert_eq!(eps[1].recv_timeout(Duration::from_millis(20)).unwrap(), (p1, 9));
    }

    #[test]
    fn jitter_reorders_across_links_but_not_within() {
        let order = traced_run(11);
        let from_p1: Vec<u32> =
            order.iter().filter(|(f, _)| *f == ProcessId::new(1)).map(|(_, v)| *v).collect();
        assert_eq!(from_p1, (0..32).collect::<Vec<_>>(), "per-link FIFO");
        let first_batch: Vec<ProcessId> = order.iter().take(8).map(|(f, _)| *f).collect();
        assert!(
            first_batch.iter().any(|f| *f == ProcessId::new(2)),
            "jitter should interleave the two senders, got {first_batch:?}"
        );
    }
}
