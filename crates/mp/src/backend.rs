//! Running the shared-memory register algorithms **over message passing**.
//!
//! [`MpFactory`] is a [`RegisterFactory`] whose base registers are
//! [`MpRegister`] emulations: every base-register access performed by
//! Algorithms 1–3 becomes a quorum protocol over the simulated network.
//! This executes the paper's §1 corollary — the three register types exist
//! in signature-free Byzantine message-passing systems with `n > 3f` —
//! rather than merely citing it (experiment E6).
//!
//! Every register spawned through one factory shares the factory's single
//! [`Reactor`]: a keyed store instantiating thousands of emulated
//! registers still runs on the factory's fixed worker pool (default
//! `min(8, parallelism)` threads), where the old design spawned `n`
//! dedicated threads *per register*.
//!
//! Process identity is threaded through automatically: a register access by
//! a thread participating as `p_k` is served by `p_k`'s protocol node.
//! Declared-Byzantine processes get no protocol client; adversaries attack
//! at the message level via [`MpRegister::byzantine_endpoint`].

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use byzreg_runtime::{
    custom_swmr, CellBackend, Env, Participation, ProcessId, ReadPort, RegisterFactory, Value,
    WritePort,
};

use crate::adversary::AdversaryPolicy;
use crate::net::NetConfig;
use crate::reactor::Reactor;
use crate::swmr::{MpClient, MpConfig, MpRegister, RegisterGroup};

thread_local! {
    /// The co-scheduling group label opened on this thread via
    /// `RegisterFactory::open_group`, if any. Thread-local because group
    /// scopes are lexical in the caller (the store opens one around each
    /// key install, under that key's shard lock).
    static CURRENT_GROUP: Cell<Option<u64>> = const { Cell::new(None) };
}

struct MpCell<T: Value> {
    owner: ProcessId,
    clients: Vec<Option<MpClient<T>>>,
    /// Serializes the owner's operations, restoring the paper's
    /// sequential-process semantics for owner RMW (cf. `register` docs).
    owner_lock: Mutex<()>,
}

impl<T: Value> MpCell<T> {
    /// Routes an access to the protocol client of the process the current
    /// thread participates as.
    ///
    /// The fallback rules are deterministic and narrow:
    ///
    /// * a thread with **no** participation (plain test code) uses the
    ///   owner's client, or — when the owner is declared Byzantine and has
    ///   none — the lowest-pid correct client;
    /// * a thread **participating** as a pid with no client is a
    ///   participation bug (a declared-Byzantine process executing
    ///   correct-process code; adversaries must attack at the message
    ///   level instead). Debug builds assert on it rather than silently
    ///   borrowing another process's client and masking the bug; release
    ///   builds degrade to the same lowest-pid fallback.
    fn client_for_current_thread(&self) -> &MpClient<T> {
        let participant = Participation::current_pid();
        let pid = participant.unwrap_or(self.owner);
        if let Some(client) = self.clients[pid.zero_based()].as_ref() {
            return client;
        }
        debug_assert!(
            participant.is_none(),
            "thread participating as {pid} has no protocol client: declared-Byzantine \
             processes must attack at the message level, not run correct-process code"
        );
        self.clients.iter().flatten().next().expect("at least one correct client")
    }

    fn owner_client(&self) -> &MpClient<T> {
        self.clients[self.owner.zero_based()]
            .as_ref()
            .expect("the owner is Byzantine: attack at the message level instead")
    }
}

impl<T: Value> CellBackend<T> for MpCell<T> {
    fn load(&self) -> T {
        self.client_for_current_thread().read().1
    }

    fn store(&self, v: T) {
        let _own = self.owner_lock.lock();
        self.owner_client().write(v);
    }

    fn rmw(&self, f: Box<dyn FnOnce(&mut T) + '_>) -> T {
        let _own = self.owner_lock.lock();
        let client = self.owner_client();
        let (_, mut v) = client.read();
        f(&mut v);
        client.write(v.clone());
        v
    }
}

/// A [`RegisterFactory`] backed by per-register message-passing emulations,
/// all multiplexed onto one shared [`Reactor`].
///
/// Keeps every spawned [`MpRegister`] alive; dropping the factory removes
/// their tasks and stops the reactor's workers.
pub struct MpFactory {
    net: NetConfig,
    /// The adversarial delivery schedule every spawned register's network
    /// runs under (inert by default; see [`MpFactory::adversarial`]).
    adversary: AdversaryPolicy,
    reactor: Arc<Reactor>,
    registers: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
    /// Co-scheduling groups by label (see `RegisterFactory::open_group`):
    /// all registers created under one label share one [`RegisterGroup`]
    /// host task, so their wake-ups coalesce.
    groups: Mutex<HashMap<u64, RegisterGroup>>,
}

impl MpFactory {
    /// Creates a factory with the given simulated-network behavior and the
    /// default worker pool: `min(8, available parallelism)` threads,
    /// regardless of how many registers are spawned.
    #[must_use]
    pub fn new(net: NetConfig) -> Self {
        let parallelism = std::thread::available_parallelism().map_or(4, usize::from);
        MpFactory::with_workers(net, parallelism.min(8))
    }

    /// Creates a factory whose reactor runs exactly `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_workers(net: NetConfig, workers: usize) -> Self {
        MpFactory {
            net,
            adversary: AdversaryPolicy::none(),
            reactor: Arc::new(Reactor::new(workers)),
            registers: Mutex::new(Vec::new()),
            groups: Mutex::new(HashMap::new()),
        }
    }

    /// Schedules every register this factory spawns under `policy` — each
    /// register's virtual-time network applies the same seeded adversarial
    /// tactics (targeted delays, bounded reorder, partitions, hold-backs).
    ///
    /// ```
    /// use byzreg_mp::{AdversaryPolicy, MpFactory, NetConfig};
    /// use byzreg_runtime::ProcessId;
    /// use std::time::Duration;
    ///
    /// let factory = MpFactory::new(NetConfig::instant())
    ///     .adversarial(AdversaryPolicy::slow_reader(
    ///         ProcessId::new(2),
    ///         Duration::from_millis(1),
    ///         7,
    ///     ));
    /// ```
    #[must_use]
    pub fn adversarial(mut self, policy: AdversaryPolicy) -> Self {
        self.adversary = policy;
        self
    }

    /// Number of emulated registers spawned so far.
    #[must_use]
    pub fn spawned(&self) -> usize {
        self.registers.lock().len()
    }

    /// Number of co-scheduling groups created so far (one per distinct
    /// `open_group` label that saw a register creation).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.lock().len()
    }

    /// Number of reactor worker threads serving every spawned register.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.reactor.worker_count()
    }
}

impl Default for MpFactory {
    fn default() -> Self {
        MpFactory::new(NetConfig::instant())
    }
}

impl Drop for MpFactory {
    fn drop(&mut self) {
        // Remove the register tasks before stopping the workers, so drop
        // order inside the reactor stays register → reactor.
        self.registers.lock().clear();
        self.reactor.shutdown();
    }
}

impl std::fmt::Debug for MpFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpFactory({} registers, {} workers)", self.spawned(), self.worker_count())
    }
}

impl RegisterFactory for MpFactory {
    fn create<T: Value>(
        &self,
        env: &Env,
        owner: ProcessId,
        name: String,
        init: T,
    ) -> (WritePort<T>, ReadPort<T>) {
        let config = MpConfig {
            n: env.n(),
            f: env.f(),
            writer: owner,
            net: self.net,
            adversary: self.adversary.clone(),
            byzantine: env.faulty(),
            trace: false,
        };
        let reg = match CURRENT_GROUP.with(Cell::get) {
            Some(label) => {
                let group = self
                    .groups
                    .lock()
                    .entry(label)
                    .or_insert_with(|| RegisterGroup::new(&self.reactor))
                    .clone();
                MpRegister::spawn_in_group(&group, &config, init)
            }
            None => MpRegister::spawn_on(&self.reactor, &config, init),
        };
        let clients: Vec<Option<MpClient<T>>> = (1..=env.n())
            .map(|i| {
                let pid = ProcessId::new(i);
                (!env.is_faulty(pid)).then(|| reg.client(pid))
            })
            .collect();
        let cell = MpCell { owner, clients, owner_lock: Mutex::new(()) };
        self.registers.lock().push(Box::new(reg));
        custom_swmr(env.gate(), owner, name, Box::new(cell))
    }

    fn open_group(&self, label: u64) {
        CURRENT_GROUP.with(|g| g.set(Some(label)));
    }

    fn close_group(&self) {
        CURRENT_GROUP.with(|g| g.set(None));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_runtime::System;

    #[test]
    fn factory_registers_behave_like_local_ones() {
        let sys = System::builder(4).build();
        let factory = MpFactory::default();
        let (w, r) = factory.create(sys.env(), ProcessId::new(1), "R".into(), 0u32);
        assert_eq!(r.read(), 0);
        w.write(9);
        assert_eq!(r.read(), 9);
        assert_eq!(w.read(), 9);
        assert_eq!(factory.spawned(), 1);
    }

    #[test]
    fn factory_update_is_owner_rmw() {
        let sys = System::builder(4).build();
        let factory = MpFactory::default();
        let (w, r) = factory.create(sys.env(), ProcessId::new(2), "S".into(), Vec::<u32>::new());
        w.update(|v| v.push(1));
        w.update(|v| v.push(2));
        assert_eq!(r.read(), vec![1, 2]);
    }

    #[test]
    fn open_group_coalesces_registers_into_shared_host_tasks() {
        let sys = System::builder(4).build();
        let factory = MpFactory::with_workers(NetConfig::instant(), 2);
        factory.open_group(7);
        let a = factory.create(sys.env(), ProcessId::new(1), "A".into(), 0u32);
        let b = factory.create(sys.env(), ProcessId::new(1), "B".into(), 0u32);
        factory.close_group();
        let c = factory.create(sys.env(), ProcessId::new(1), "C".into(), 0u32);
        factory.open_group(8);
        let d = factory.create(sys.env(), ProcessId::new(1), "D".into(), 0u32);
        factory.close_group();
        assert_eq!(factory.spawned(), 4);
        assert_eq!(factory.group_count(), 2, "labels 7 and 8; C was created ungrouped");
        for (i, (w, r)) in [a, b, c, d].into_iter().enumerate() {
            w.write(i as u32 + 1);
            assert_eq!(r.read(), i as u32 + 1, "register {i} works wherever it is hosted");
        }
    }

    #[test]
    fn group_labels_are_thread_local() {
        // A group opened on one thread must not capture registers created
        // concurrently on another (the store installs under per-shard
        // locks, each thread with its own scope).
        let sys = System::builder(4).build();
        let factory = Arc::new(MpFactory::with_workers(NetConfig::instant(), 2));
        factory.open_group(1);
        let f2 = Arc::clone(&factory);
        let env = sys.env().clone();
        let t = std::thread::spawn(move || {
            // No open_group on this thread: ungrouped.
            let (w, r) = f2.create(&env, ProcessId::new(1), "other".into(), 0u32);
            w.write(5);
            assert_eq!(r.read(), 5);
        });
        let (w, r) = factory.create(sys.env(), ProcessId::new(1), "mine".into(), 0u32);
        factory.close_group();
        t.join().unwrap();
        w.write(9);
        assert_eq!(r.read(), 9);
        assert_eq!(factory.group_count(), 1, "only the opening thread's register joined");
    }

    #[test]
    fn factory_worker_pool_is_fixed() {
        let sys = System::builder(4).build();
        let factory = MpFactory::with_workers(NetConfig::instant(), 2);
        for i in 0..24 {
            let (w, r) = factory.create(sys.env(), ProcessId::new(1), format!("R{i}"), 0u32);
            w.write(i);
            assert_eq!(r.read(), i);
        }
        assert_eq!(factory.spawned(), 24);
        assert_eq!(factory.worker_count(), 2, "24 registers, still 2 threads");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "has no protocol client")]
    fn participating_byzantine_thread_asserts_in_debug() {
        let sys = System::builder(4).byzantine(ProcessId::new(2)).build();
        let factory = MpFactory::default();
        let (_w, r) = factory.create(sys.env(), ProcessId::new(1), "R".into(), 0u32);
        // p2 is declared Byzantine, so it has no protocol client; running
        // correct-process code as p2 is exactly the participation bug the
        // debug assertion exists to surface.
        sys.env().run_as(ProcessId::new(2), || {
            let _ = r.read();
        });
    }

    #[test]
    fn unparticipating_reads_fall_back_deterministically() {
        // Owner p1 is Byzantine: a plain (non-participating) test thread
        // must still read, through the lowest-pid correct client.
        let sys = System::builder(4).byzantine(ProcessId::new(1)).build();
        let factory = MpFactory::default();
        let (_w, r) = factory.create(sys.env(), ProcessId::new(1), "R".into(), 5u32);
        assert_eq!(r.read(), 5);
    }

    #[test]
    fn concurrent_owner_updates_do_not_lose_writes_over_mp() {
        let sys = System::builder(4).build();
        let factory = MpFactory::default();
        let (w, r) = factory.create(
            sys.env(),
            ProcessId::new(1),
            "SET".into(),
            std::collections::BTreeSet::<u32>::new(),
        );
        let w2 = w.clone();
        let t = std::thread::spawn(move || {
            for i in 0..20u32 {
                w2.update(|s| {
                    s.insert(i * 2);
                });
            }
        });
        for i in 0..20u32 {
            w.update(|s| {
                s.insert(i * 2 + 1);
            });
        }
        t.join().unwrap();
        assert_eq!(r.read().len(), 40);
    }
}
