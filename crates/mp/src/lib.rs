//! # byzreg-mp
//!
//! Message-passing substrate for the `byzreg` reproduction:
//!
//! * [`net`] — a simulated asynchronous network with reliable FIFO
//!   authenticated channels and a **seeded virtual-time delivery
//!   schedule**: jitter decides the *order* messages are handed to
//!   receivers, never wall-clock sleeps, so the whole schedule replays
//!   from the seed;
//! * [`adversary`] — seeded **adversarial delivery schedules** layered
//!   over the virtual-time heap: targeted per-link delay distributions,
//!   bounded reordering, temporary partitions that heal, and
//!   hold-back-until-quorum pens — deterministic, FIFO-preserving, and
//!   composable into [`MpConfig`](swmr::MpConfig) or
//!   [`MpFactory::adversarial`](backend::MpFactory::adversarial);
//! * [`reactor`] — a fixed pool of worker threads multiplexing any number
//!   of event-driven tasks; quiet tasks cost nothing (workers park, no
//!   polling);
//! * [`swmr`] — a signature-free emulation of an atomic SWMR register for
//!   Byzantine systems with `n > 3f`, in the style of
//!   Mostéfaoui–Petrolia–Raynal–Jard (the paper's citation [11]);
//! * [`backend`] — an [`MpFactory`](backend::MpFactory) that lets
//!   Algorithms 1–3 of `byzreg-core` run **unchanged** over the emulation,
//!   executing the paper's message-passing corollary (experiment E6).
//!
//! # The state-machine/tick model
//!
//! [11] frames each protocol participant as a *message-driven state
//! machine*: a node's entire behavior is a transition function applied to
//! delivered messages. This crate takes that framing literally.
//! [`swmr::NodeStateMachine`] has exactly two entry points —
//! `on_message(from, msg)` for a delivered protocol message and
//! `on_tick()` for housekeeping (an idle node starting its next queued
//! client command) — and neither may block. All `n` nodes of one register
//! form a single [`reactor::ReactorTask`] that pops the register's virtual
//! event queue in `(delivery instant, send sequence)` order and feeds each
//! event to the destination node, running the cascade (echo, validate,
//! ack, state refresh) to quiescence.
//!
//! This is how experiment E6 maps onto the paper: every *shared-memory
//! step* taken by Algorithms 1–3 against an [`MpFactory`](backend::MpFactory)
//! register becomes one client command, which becomes a full quorum
//! exchange (`Write`/`Echo`/`Valid`/`Ack` or `Read`/`State`) executed as a
//! deterministic burst of state-machine transitions — and because nodes
//! are data, not threads, a keyed store can hold *thousands* of emulated
//! registers on one small worker pool where the previous design spent
//! `n` OS threads per register.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod backend;
pub mod net;
pub mod reactor;
pub mod swmr;

pub use adversary::{AdversaryPolicy, LinkSet, Tactic};
pub use backend::MpFactory;
pub use net::{adversarial_network, network, DeliverySchedule, Endpoint, NetConfig};
pub use reactor::{Reactor, ReactorTask, TaskId};
pub use swmr::{MpClient, MpConfig, MpRegister, Msg, NodeStateMachine, RegisterGroup};
