//! # byzreg-mp
//!
//! Message-passing substrate for the `byzreg` reproduction:
//!
//! * [`net`] — a simulated asynchronous network with reliable FIFO
//!   authenticated channels and seeded delivery jitter,
//! * [`swmr`] — a signature-free emulation of an atomic SWMR register for
//!   Byzantine systems with `n > 3f`, in the style of
//!   Mostéfaoui–Petrolia–Raynal–Jard (the paper's citation [11]),
//! * [`backend`] — an [`MpFactory`](backend::MpFactory) that lets
//!   Algorithms 1–3 of `byzreg-core` run **unchanged** over the emulation,
//!   executing the paper's message-passing corollary (experiment E6).

#![forbid(unsafe_code)]
// Thresholds are written exactly as in the paper (`>= f + 1`, `>= n - f`).
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

pub mod backend;
pub mod net;
pub mod swmr;

pub use backend::MpFactory;
pub use net::{network, Endpoint, NetConfig};
pub use swmr::{MpClient, MpConfig, MpRegister, Msg};
