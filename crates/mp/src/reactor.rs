//! The event-loop backend of the message-passing emulation: one small
//! fixed pool of worker threads drives *every* protocol node of *every*
//! emulated register registered with it.
//!
//! The unit of scheduling is a [`ReactorTask`] — for the SWMR emulation,
//! one task per [`MpRegister`](crate::swmr::MpRegister) owning all of that
//! register's node state machines and its virtual-time network. A task is
//! *scheduled* whenever new input arrives (a client command or a network
//! send); a worker then runs it to quiescence, draining everything that is
//! ready without ever blocking. A register is therefore single-threaded
//! with respect to itself (its task is guarded by a mutex) while thousands
//! of registers share a handful of OS threads — the property that lets an
//! MP-backed store hold thousands of keys where the old thread-per-node
//! design needed `keys × n` threads.
//!
//! A quiet reactor **parks**: workers sleep on a condition variable and
//! the dispatch counter stands still (see
//! [`Reactor::dispatches`] and the `quiet_reactor_parks_instead_of_spinning`
//! test). There is no polling interval anywhere — wake-ups are edge-
//! triggered by [`Reactor::schedule`].
//!
//! # Scheduling invariants (and what the adversary may touch)
//!
//! The reactor makes exactly three guarantees, and deliberately **no**
//! ordering guarantee beyond them:
//!
//! 1. **Task mutual exclusion** — a task's `run` never overlaps itself
//!    (the per-slot mutex), so a register's node state machines are
//!    single-threaded with respect to each other.
//! 2. **No lost wake-ups** — the per-task `queued` dedup flag is cleared
//!    *before* `run` executes, so input arriving mid-run re-queues the
//!    task rather than racing the drain.
//! 3. **Run-to-quiescence** — each dispatch drains everything ready at
//!    that moment; a task left with pending input is necessarily also
//!    left queued.
//!
//! *Delivery order is not the reactor's concern.* The order messages reach
//! protocol nodes is decided entirely by the virtual-time heap in
//! [`crate::net`] — its per-link FIFO floor and `(deliver_at, seq)`
//! tiebreak (see the net module docs) hold whichever worker happens to run
//! the task, which is why an [`crate::adversary::AdversaryPolicy`] plugs
//! into the *network* and never into this scheduler: reordering dispatches
//! here could not change what `next_event` hands out, and a policy that
//! respected the heap invariants there needs nothing from the reactor to
//! stay deterministic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A unit of event-driven work hosted on a [`Reactor`].
///
/// `run` must drain all currently-available input and return without
/// blocking; it is called again after every [`Reactor::schedule`] of the
/// task. The reactor guarantees `run` is never executed concurrently with
/// itself for the same task.
pub trait ReactorTask: Send {
    /// Processes everything that is ready; must not block.
    fn run(&mut self);
}

/// Identifies a task registered with a [`Reactor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskId(usize);

struct Slot {
    /// `None` once the task was removed (its owner shut down).
    task: Arc<Mutex<Option<Box<dyn ReactorTask>>>>,
    /// `true` while the task sits in the ready queue (dedup flag).
    queued: Arc<AtomicBool>,
}

struct Shared {
    ready: Mutex<VecDeque<usize>>,
    cv: Condvar,
    slots: Mutex<Vec<Slot>>,
    shutdown: AtomicBool,
    idle: AtomicUsize,
    dispatches: AtomicU64,
}

impl Shared {
    fn schedule(&self, id: usize) {
        let queued = {
            let slots = self.slots.lock();
            match slots.get(id) {
                Some(slot) => Arc::clone(&slot.queued),
                None => return,
            }
        };
        if !queued.swap(true, Ordering::AcqRel) {
            self.ready.lock().push_back(id);
            self.cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut ready = shared.ready.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = ready.pop_front() {
                    break id;
                }
                shared.idle.fetch_add(1, Ordering::SeqCst);
                shared.cv.wait(&mut ready);
                shared.idle.fetch_sub(1, Ordering::SeqCst);
            }
        };
        shared.dispatches.fetch_add(1, Ordering::Relaxed);
        let (task, queued) = {
            let slots = shared.slots.lock();
            let slot = &slots[id];
            (Arc::clone(&slot.task), Arc::clone(&slot.queued))
        };
        // Clear the dedup flag *before* running: input arriving mid-run
        // re-queues the task, so nothing is ever lost between the final
        // drain and the flag reset.
        queued.store(false, Ordering::Release);
        let mut guard = task.lock();
        if let Some(task) = guard.as_mut() {
            task.run();
        }
    }
}

/// A fixed pool of worker threads multiplexing [`ReactorTask`]s.
///
/// Shared behind an `Arc` by everything that must wake tasks (network
/// endpoints, client handles, the owning factory).
pub struct Reactor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Reactor {
    /// Starts a reactor with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a reactor needs at least one worker");
        let shared = Arc::new(Shared {
            ready: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            slots: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            idle: AtomicUsize::new(0),
            dispatches: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mp-reactor-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn reactor worker")
            })
            .collect();
        Reactor { shared, workers: Mutex::new(handles) }
    }

    /// Registers `task` and returns its id. The task is not scheduled until
    /// the first [`Reactor::schedule`].
    pub fn register(&self, task: Box<dyn ReactorTask>) -> TaskId {
        let mut slots = self.shared.slots.lock();
        slots.push(Slot {
            task: Arc::new(Mutex::new(Some(task))),
            queued: Arc::new(AtomicBool::new(false)),
        });
        TaskId(slots.len() - 1)
    }

    /// Marks `id` ready; a worker will run it (idempotent while queued).
    pub fn schedule(&self, id: TaskId) {
        self.shared.schedule(id.0);
    }

    /// A cheap clonable hook that schedules `id` — handed to network wake
    /// callbacks and client handles. Holds only a weak reference, so a
    /// dropped reactor turns the hook into a no-op instead of a leak cycle.
    #[must_use]
    pub fn waker(&self, id: TaskId) -> Arc<dyn Fn() + Send + Sync> {
        let weak: Weak<Shared> = Arc::downgrade(&self.shared);
        Arc::new(move || {
            if let Some(shared) = weak.upgrade() {
                shared.schedule(id.0);
            }
        })
    }

    /// Removes (and drops) task `id`. Channel receivers owned by the task
    /// are dropped with it, which unblocks any client waiting on a reply.
    pub fn remove(&self, id: TaskId) {
        let task = {
            let slots = self.shared.slots.lock();
            slots.get(id.0).map(|slot| Arc::clone(&slot.task))
        };
        if let Some(task) = task {
            task.lock().take();
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Number of workers currently parked on the ready-queue condvar.
    #[must_use]
    pub fn idle_workers(&self) -> usize {
        self.shared.idle.load(Ordering::SeqCst)
    }

    /// Total task dispatches so far. Constant while the reactor is quiet —
    /// the observable behind the "parks instead of spinning" guarantee.
    #[must_use]
    pub fn dispatches(&self) -> u64 {
        self.shared.dispatches.load(Ordering::Relaxed)
    }

    /// Stops the workers and drops every task. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        for slot in self.shared.slots.lock().iter() {
            slot.task.lock().take();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("workers", &self.worker_count())
            .field("tasks", &self.shared.slots.lock().len())
            .field("dispatches", &self.dispatches())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    struct Counter(Arc<AtomicU64>);

    impl ReactorTask for Counter {
        fn run(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out waiting: {what}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn scheduled_tasks_run() {
        let reactor = Reactor::new(2);
        let count = Arc::new(AtomicU64::new(0));
        let id = reactor.register(Box::new(Counter(Arc::clone(&count))));
        reactor.schedule(id);
        wait_until("first run", || count.load(Ordering::SeqCst) >= 1);
        reactor.schedule(id);
        wait_until("second run", || count.load(Ordering::SeqCst) >= 2);
        reactor.shutdown();
    }

    #[test]
    fn quiet_reactor_parks_instead_of_spinning() {
        // The satellite guarantee replacing the old idle poll backoff: with
        // no input, every worker parks on the condvar and the dispatch
        // counter stands still — no polling interval, no wake-ups.
        let reactor = Reactor::new(3);
        let count = Arc::new(AtomicU64::new(0));
        let id = reactor.register(Box::new(Counter(Arc::clone(&count))));
        reactor.schedule(id);
        wait_until("task ran", || count.load(Ordering::SeqCst) >= 1);
        wait_until("all workers parked", || reactor.idle_workers() == 3);
        let before = reactor.dispatches();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(reactor.dispatches(), before, "a quiet reactor must not spin");
        assert_eq!(reactor.idle_workers(), 3, "workers stay parked until scheduled");
        reactor.shutdown();
    }

    #[test]
    fn removed_tasks_never_run_again() {
        let reactor = Reactor::new(1);
        let count = Arc::new(AtomicU64::new(0));
        let id = reactor.register(Box::new(Counter(Arc::clone(&count))));
        reactor.schedule(id);
        wait_until("ran once", || count.load(Ordering::SeqCst) == 1);
        reactor.remove(id);
        let before = reactor.dispatches();
        reactor.schedule(id);
        wait_until("dispatch consumed", || reactor.dispatches() > before);
        assert_eq!(count.load(Ordering::SeqCst), 1, "a removed task must not run");
        reactor.shutdown();
    }

    #[test]
    fn waker_survives_reactor_drop_as_noop() {
        let reactor = Reactor::new(1);
        let id = reactor.register(Box::new(Counter(Arc::new(AtomicU64::new(0)))));
        let wake = reactor.waker(id);
        drop(reactor);
        wake(); // must not panic or deadlock
    }

    #[test]
    fn many_tasks_share_few_workers() {
        let reactor = Reactor::new(2);
        let count = Arc::new(AtomicU64::new(0));
        let ids: Vec<TaskId> =
            (0..64).map(|_| reactor.register(Box::new(Counter(Arc::clone(&count))))).collect();
        for id in &ids {
            reactor.schedule(*id);
        }
        wait_until("all 64 ran", || count.load(Ordering::SeqCst) >= 64);
        assert_eq!(reactor.worker_count(), 2);
        reactor.shutdown();
    }
}
