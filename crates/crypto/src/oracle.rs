//! An **idealized unforgeable-signature oracle**.
//!
//! The paper (footnote 1) treats digital signatures as an idealized
//! primitive: forging them "requires solving some computational problem that
//! is known to be hard". This module models exactly that ideal functionality
//! so that signature-*based* baselines can be compared against the paper's
//! signature-*free* registers without dragging in real cryptography:
//!
//! * a [`SigningKey`] can be issued **once** per process (trusted setup);
//! * [`SigningKey::sign`] produces a [`Signature`] carrying an unguessable
//!   tag recorded by the oracle;
//! * [`SignatureOracle::verify`] accepts a signature iff its tag matches the
//!   recorded one — so adversaries can *replay* genuine signatures (they are
//!   transferable, as real signatures are) but cannot *mint* signatures for
//!   values the owner never signed ([`Signature::forged`] never verifies);
//! * a configurable [`CostModel`] burns CPU per sign/verify so benchmarks
//!   can sweep realistic crypto costs (experiment B4).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use byzreg_runtime::{ProcessId, Value};

/// Simulated CPU cost of signature operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostModel {
    /// Busy-wait duration per `sign`.
    pub sign: Duration,
    /// Busy-wait duration per `verify`.
    pub verify: Duration,
}

impl CostModel {
    /// Zero-cost signatures (pure functionality).
    #[must_use]
    pub fn free() -> Self {
        CostModel::default()
    }

    /// Symmetric cost for both operations.
    #[must_use]
    pub fn uniform(d: Duration) -> Self {
        CostModel { sign: d, verify: d }
    }
}

fn burn(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// A signature over a value, attributable to a signer.
///
/// Signatures are plain data: they can be copied, stored in registers, and
/// relayed — exactly like real signature strings. Only
/// [`SignatureOracle::verify`] can tell genuine ones from forgeries.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Signature<V> {
    signer: ProcessId,
    value: V,
    tag: u64,
}

impl<V: Value> Signature<V> {
    /// The claimed signer.
    #[must_use]
    pub fn signer(&self) -> ProcessId {
        self.signer
    }

    /// The signed value.
    #[must_use]
    pub fn value(&self) -> &V {
        &self.value
    }

    /// Constructs a *forged* signature: a claim that `signer` signed
    /// `value`, with a guessed tag. Verification fails unless the signer
    /// really signed that value with that tag — mirroring the computational
    /// hardness assumption.
    #[must_use]
    pub fn forged(signer: ProcessId, value: V, guessed_tag: u64) -> Self {
        Signature { signer, value, tag: guessed_tag }
    }
}

struct OracleInner<V> {
    /// `(signer, value) -> tag` for every genuine signature.
    signed: Mutex<HashMap<(ProcessId, V), u64>>,
    issued: Mutex<HashMap<ProcessId, bool>>,
    next_tag: Mutex<u64>,
    cost: CostModel,
}

/// The trusted signature functionality shared by all processes of a system.
pub struct SignatureOracle<V> {
    inner: Arc<OracleInner<V>>,
}

impl<V> Clone for SignatureOracle<V> {
    fn clone(&self) -> Self {
        SignatureOracle { inner: Arc::clone(&self.inner) }
    }
}

impl<V: Value> SignatureOracle<V> {
    /// Creates an oracle with the given cost model.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        SignatureOracle {
            inner: Arc::new(OracleInner {
                signed: Mutex::new(HashMap::new()),
                issued: Mutex::new(HashMap::new()),
                next_tag: Mutex::new(0x5EED_0001),
                cost,
            }),
        }
    }

    /// Issues the signing key of `pid` (trusted setup).
    ///
    /// # Panics
    ///
    /// Panics if `pid`'s key was already issued: like a real private key, it
    /// exists exactly once.
    #[must_use]
    pub fn issue_key(&self, pid: ProcessId) -> SigningKey<V> {
        let mut issued = self.inner.issued.lock();
        assert!(!issued.contains_key(&pid), "signing key of {pid} already issued");
        issued.insert(pid, true);
        SigningKey { pid, oracle: self.clone() }
    }

    /// Verifies a signature; burns the configured verify cost.
    #[must_use]
    pub fn verify(&self, sig: &Signature<V>) -> bool {
        burn(self.inner.cost.verify);
        self.inner
            .signed
            .lock()
            .get(&(sig.signer, sig.value.clone()))
            .is_some_and(|tag| *tag == sig.tag)
    }

    /// The configured cost model.
    #[must_use]
    pub fn cost(&self) -> CostModel {
        self.inner.cost
    }
}

impl<V: Value> std::fmt::Debug for SignatureOracle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SignatureOracle(cost = {:?})", self.inner.cost)
    }
}

/// The private signing capability of one process.
pub struct SigningKey<V> {
    pid: ProcessId,
    oracle: SignatureOracle<V>,
}

impl<V: Value> SigningKey<V> {
    /// The key owner.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Signs `value`; burns the configured sign cost.
    #[must_use]
    pub fn sign(&self, value: V) -> Signature<V> {
        burn(self.oracle.inner.cost.sign);
        let mut signed = self.oracle.inner.signed.lock();
        let tag = *signed.entry((self.pid, value.clone())).or_insert_with(|| {
            let mut next = self.oracle.inner.next_tag.lock();
            *next = next.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            *next
        });
        Signature { signer: self.pid, value, tag }
    }
}

impl<V: Value> std::fmt::Debug for SigningKey<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genuine_signatures_verify() {
        let oracle = SignatureOracle::new(CostModel::free());
        let key = oracle.issue_key(ProcessId::new(1));
        let sig = key.sign(42u32);
        assert!(oracle.verify(&sig));
        assert_eq!(sig.signer(), ProcessId::new(1));
        assert_eq!(*sig.value(), 42);
    }

    #[test]
    fn forgeries_do_not_verify() {
        let oracle = SignatureOracle::new(CostModel::free());
        let _key = oracle.issue_key(ProcessId::new(1));
        for guess in [0u64, 1, u64::MAX, 0x5EED_0001] {
            let forged = Signature::forged(ProcessId::new(1), 42u32, guess);
            assert!(!oracle.verify(&forged), "guess {guess:#x} must fail");
        }
    }

    #[test]
    fn replayed_signatures_verify_like_real_ones() {
        // Transferability: a relayed copy of a genuine signature is valid.
        let oracle = SignatureOracle::new(CostModel::free());
        let key = oracle.issue_key(ProcessId::new(1));
        let sig = key.sign(7u32);
        let relayed = sig.clone();
        assert!(oracle.verify(&relayed));
    }

    #[test]
    fn signatures_bind_signer_and_value() {
        let oracle = SignatureOracle::new(CostModel::free());
        let k1 = oracle.issue_key(ProcessId::new(1));
        let _k2 = oracle.issue_key(ProcessId::new(2));
        let sig = k1.sign(7u32);
        // Same tag claimed for a different signer or value fails.
        let cross = Signature::forged(ProcessId::new(2), 7u32, sig.tag);
        assert!(!oracle.verify(&cross));
        let other = Signature::forged(ProcessId::new(1), 8u32, sig.tag);
        assert!(!oracle.verify(&other));
    }

    #[test]
    #[should_panic(expected = "already issued")]
    fn keys_are_issued_once() {
        let oracle: SignatureOracle<u32> = SignatureOracle::new(CostModel::free());
        let _a = oracle.issue_key(ProcessId::new(1));
        let _b = oracle.issue_key(ProcessId::new(1));
    }

    #[test]
    fn cost_model_burns_time() {
        let oracle = SignatureOracle::new(CostModel::uniform(Duration::from_micros(200)));
        let key = oracle.issue_key(ProcessId::new(1));
        let t0 = Instant::now();
        let sig = key.sign(1u32);
        let _ = oracle.verify(&sig);
        assert!(t0.elapsed() >= Duration::from_micros(400));
    }

    #[test]
    fn resigning_the_same_value_is_stable() {
        let oracle = SignatureOracle::new(CostModel::free());
        let key = oracle.issue_key(ProcessId::new(1));
        let a = key.sign(5u32);
        let b = key.sign(5u32);
        assert_eq!(a, b, "idempotent signing keeps one canonical tag");
        assert!(oracle.verify(&a) && oracle.verify(&b));
    }
}
