//! # byzreg-crypto
//!
//! Idealized signature machinery for the `byzreg` reproduction:
//!
//! * [`oracle`] — an ideal unforgeable-signature functionality with a
//!   configurable CPU cost model (the paper's footnote 1 assumption, made
//!   executable),
//! * [`signed`] — signature-**based** register baselines that the
//!   signature-free Algorithms 1–2 are benchmarked against (experiment B4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod signed;

pub use oracle::{CostModel, Signature, SignatureOracle, SigningKey};
pub use signed::{SignedReader, SignedVerifiableRegister, SignedWriter};
