//! Signature-**based** register baselines.
//!
//! These are the constructions the paper positions itself against (§1, §2):
//! when unforgeable signatures are available, verifiable/authenticated
//! registers are easy — a reader that sees a validly signed value copies the
//! signature into its *own* register (evidence), which makes the relay
//! property trivial. With ideal signatures the resilience is `n > f` (even
//! better than the `n > 2f` of the signature-using algorithms in
//! Cohen & Keidar [5], which need quorums for other objects); the price is a
//! cryptographic operation on every step, which experiment **B4** sweeps to
//! find the crossover against the signature-free Algorithms 1–2.
//!
//! Faithfulness notes: the writer's registers can be erased by a Byzantine
//! writer, but evidence registers of correct readers persist — exactly the
//! standard argument for why signatures defeat denial.

use parking_lot::Mutex;

use byzreg_runtime::{
    register, Env, HistoryLog, ProcessId, ReadPort, Result, System, Value, WritePort,
};
use byzreg_spec::registers::{VerInv, VerResp};

use crate::oracle::{Signature, SignatureOracle, SigningKey};

/// Evidence set stored by each reader: valid signatures it has seen.
pub type Evidence<V> = std::collections::BTreeSet<Signature<V>>;

/// The writer's port bundle: current-value register, published-signature
/// register, and the private signing key.
pub type WriterPorts<V> = (WritePort<(u64, V)>, WritePort<Evidence<V>>, SigningKey<V>);

/// A signature-based SWMR verifiable register (baseline for Algorithm 1).
///
/// Registers: the writer's current-value register `CUR`, the writer's
/// published-signature register `SIGS`, and one evidence register per
/// reader.
pub struct SignedVerifiableRegister<V: Ord> {
    env: Env,
    oracle: SignatureOracle<V>,
    cur_r: ReadPort<(u64, V)>,
    sigs_r: ReadPort<Evidence<V>>,
    evidence_r: Vec<ReadPort<Evidence<V>>>,
    writer_ports: Mutex<Option<WriterPorts<V>>>,
    reader_ports: Mutex<Vec<Option<WritePort<Evidence<V>>>>>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> SignedVerifiableRegister<V> {
    /// Installs the baseline register on `system` with initial value `v0`,
    /// using `oracle` for signatures.
    ///
    /// Unlike Algorithm 1 this needs no helping and works for any `n > f`.
    #[must_use]
    pub fn install(system: &System, v0: V, oracle: &SignatureOracle<V>) -> Self {
        let env = system.env().clone();
        let n = env.n();
        let gate = env.gate();
        let (cur_w, cur_r) =
            register::swmr(gate.clone(), ProcessId::new(1), "CUR", (0u64, v0.clone()));
        let (sigs_w, sigs_r) =
            register::swmr(gate.clone(), ProcessId::new(1), "SIGS", Evidence::<V>::new());
        let mut evidence_w = Vec::with_capacity(n - 1);
        let mut evidence_r = Vec::with_capacity(n - 1);
        for k in 2..=n {
            let (w, r) = register::swmr(
                gate.clone(),
                ProcessId::new(k),
                format!("EV[{k}]"),
                Evidence::new(),
            );
            evidence_w.push(w);
            evidence_r.push(r);
        }
        let key = oracle.issue_key(ProcessId::new(1));
        SignedVerifiableRegister {
            env: env.clone(),
            oracle: oracle.clone(),
            cur_r,
            sigs_r,
            evidence_r,
            writer_ports: Mutex::new(Some((cur_w, sigs_w, key))),
            reader_ports: Mutex::new(evidence_w.into_iter().map(Some).collect()),
            log: HistoryLog::new(env.clock()),
        }
    }

    /// The recorded operation history.
    #[must_use]
    pub fn history(&self) -> HistoryLog<VerInv<V>, VerResp<V>> {
        self.log.clone()
    }

    /// The unique writer handle.
    ///
    /// # Panics
    ///
    /// Panics if taken twice or `p1` is declared Byzantine.
    #[must_use]
    pub fn writer(&self) -> SignedWriter<V> {
        assert!(!self.env.is_faulty(ProcessId::new(1)), "p1 is Byzantine");
        let (cur_w, sigs_w, key) = self.writer_ports.lock().take().expect("writer already taken");
        SignedWriter {
            env: self.env.clone(),
            cur_w,
            sigs_w,
            key,
            seq: 0,
            written: std::collections::BTreeSet::new(),
            log: self.log.clone(),
        }
    }

    /// The reader handle for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer, taken twice, or declared Byzantine.
    #[must_use]
    pub fn reader(&self, pid: ProcessId) -> SignedReader<V> {
        assert!(!pid.is_writer(), "p1 is the writer");
        assert!(!self.env.is_faulty(pid), "{pid} is Byzantine");
        let port = self.reader_ports.lock()[pid.index() - 2]
            .take()
            .unwrap_or_else(|| panic!("reader {pid} already taken"));
        SignedReader {
            env: self.env.clone(),
            pid,
            oracle: self.oracle.clone(),
            cur_r: self.cur_r.clone(),
            sigs_r: self.sigs_r.clone(),
            evidence_r: self.evidence_r.clone(),
            evidence_w: port,
            log: self.log.clone(),
        }
    }

    /// Write ports of a declared-Byzantine **writer** (readers' evidence
    /// registers are not interesting to attack: forged signatures never
    /// verify).
    ///
    /// # Panics
    ///
    /// Panics if `p1` is correct or the ports were taken.
    #[must_use]
    pub fn writer_attack_ports(&self) -> WriterPorts<V> {
        assert!(self.env.is_faulty(ProcessId::new(1)), "p1 is correct");
        self.writer_ports.lock().take().expect("writer ports already taken")
    }
}

impl<V: Value> std::fmt::Debug for SignedVerifiableRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SignedVerifiableRegister(n = {})", self.env.n())
    }
}

/// The signature-based writer handle.
pub struct SignedWriter<V: Ord> {
    env: Env,
    cur_w: WritePort<(u64, V)>,
    sigs_w: WritePort<Evidence<V>>,
    key: SigningKey<V>,
    seq: u64,
    written: std::collections::BTreeSet<V>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> SignedWriter<V> {
    /// `Write(v)`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write(&mut self, v: V) -> Result<()> {
        self.env.check_running()?;
        let op = self.log.invoke(ProcessId::new(1), VerInv::Write(v.clone()));
        self.seq += 1;
        let seq = self.seq;
        self.env.run_as(ProcessId::new(1), || self.cur_w.write((seq, v.clone())));
        self.written.insert(v);
        self.log.respond(op, ProcessId::new(1), VerResp::Done);
        Ok(())
    }

    /// `Sign(v)` — signs with the oracle and publishes the signature.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn sign(&mut self, v: &V) -> Result<bool> {
        self.env.check_running()?;
        let op = self.log.invoke(ProcessId::new(1), VerInv::Sign(v.clone()));
        let success = self.written.contains(v);
        if success {
            let sig = self.key.sign(v.clone());
            self.env.run_as(ProcessId::new(1), || {
                self.sigs_w.update(|set| {
                    set.insert(sig.clone());
                });
            });
        }
        self.log.respond(op, ProcessId::new(1), VerResp::SignResult(success));
        Ok(success)
    }
}

/// The signature-based reader handle.
pub struct SignedReader<V: Ord> {
    env: Env,
    pid: ProcessId,
    oracle: SignatureOracle<V>,
    cur_r: ReadPort<(u64, V)>,
    sigs_r: ReadPort<Evidence<V>>,
    evidence_r: Vec<ReadPort<Evidence<V>>>,
    evidence_w: WritePort<Evidence<V>>,
    log: HistoryLog<VerInv<V>, VerResp<V>>,
}

impl<V: Value> SignedReader<V> {
    /// `Read()` — plain register read of the writer's current value.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn read(&mut self) -> Result<V> {
        self.env.check_running()?;
        let op = self.log.invoke(self.pid, VerInv::Read);
        let (_, v) = self.env.run_as(self.pid, || self.cur_r.read());
        self.log.respond(op, self.pid, VerResp::ReadValue(v.clone()));
        Ok(v)
    }

    /// `Verify(v)` — scans the writer's published signatures and every
    /// reader's evidence register for a *valid* signature on `v`; on success
    /// copies it into this reader's evidence register (that copy is what
    /// makes relay work under a denying writer).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn verify(&mut self, v: &V) -> Result<bool> {
        self.env.check_running()?;
        let op = self.log.invoke(self.pid, VerInv::Verify(v.clone()));
        let found = self.env.run_as(self.pid, || {
            let mut candidate: Option<Signature<V>> = None;
            let sets = std::iter::once(self.sigs_r.read())
                .chain(self.evidence_r.iter().map(ReadPort::read));
            'scan: for set in sets {
                for sig in set {
                    if sig.value() == v
                        && sig.signer() == ProcessId::new(1)
                        && self.oracle.verify(&sig)
                    {
                        candidate = Some(sig);
                        break 'scan;
                    }
                }
            }
            match candidate {
                Some(sig) => {
                    self.evidence_w.update(|set| {
                        set.insert(sig);
                    });
                    true
                }
                None => false,
            }
        });
        self.log.respond(op, self.pid, VerResp::VerifyResult(found));
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CostModel;
    use byzreg_runtime::System;

    #[test]
    fn baseline_validity_and_relay() {
        let system = System::builder(4).build();
        let oracle = SignatureOracle::new(CostModel::free());
        let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
        let mut w = reg.writer();
        let mut r2 = reg.reader(ProcessId::new(2));
        let mut r3 = reg.reader(ProcessId::new(3));
        w.write(5).unwrap();
        assert!(!r2.verify(&5).unwrap());
        assert!(w.sign(&5).unwrap());
        assert!(r2.verify(&5).unwrap());
        assert!(r3.verify(&5).unwrap());
        system.shutdown();
    }

    #[test]
    fn baseline_survives_denial() {
        // Byzantine writer signs, lets a reader verify, then erases SIGS.
        let system = System::builder(4).byzantine(ProcessId::new(1)).build();
        let oracle = SignatureOracle::new(CostModel::free());
        let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
        let (cur_w, sigs_w, key) = reg.writer_attack_ports();
        cur_w.write((1, 9));
        let sig = key.sign(9);
        sigs_w.update(|s| {
            s.insert(sig);
        });
        let mut r2 = reg.reader(ProcessId::new(2));
        assert!(r2.verify(&9).unwrap());
        // Deny.
        sigs_w.write(Evidence::new());
        // r2's evidence copy keeps the signature alive for everyone.
        let mut r3 = reg.reader(ProcessId::new(3));
        assert!(r3.verify(&9).unwrap(), "relay via evidence registers");
        system.shutdown();
    }

    #[test]
    fn baseline_rejects_forgeries() {
        let system = System::builder(4).byzantine(ProcessId::new(3)).build();
        let oracle = SignatureOracle::new(CostModel::free());
        let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
        let _w = reg.writer();
        // Byzantine reader p3 plants a forged signature in its evidence set.
        // (Attack through the raw register: p3 owns EV[3].)
        // We simulate by verifying against a value nobody signed.
        let mut r2 = reg.reader(ProcessId::new(2));
        assert!(!r2.verify(&666).unwrap());
        system.shutdown();
    }

    #[test]
    fn baseline_works_even_at_n_2() {
        // With ideal signatures the resilience is n > f: no quorums needed.
        let system = System::builder(2).resilience(1).build();
        let oracle = SignatureOracle::new(CostModel::free());
        let reg = SignedVerifiableRegister::install(&system, 0u32, &oracle);
        let mut w = reg.writer();
        let mut r = reg.reader(ProcessId::new(2));
        w.write(1).unwrap();
        w.sign(&1).unwrap();
        assert!(r.verify(&1).unwrap());
        system.shutdown();
    }
}
