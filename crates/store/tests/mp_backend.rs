//! The store over the E6 message-passing backend: every key's register is
//! built from `MpRegister` emulations sourced from **one** shared
//! `MpFactory` (factory reuse is what makes a thousand-key store hold one
//! backend handle instead of one per key).

use byzreg_core::VerifiableRegister;
use byzreg_mp::MpFactory;
use byzreg_runtime::{ProcessId, System};
use byzreg_store::store::{ByzStore, StoreConfig};

#[test]
fn store_over_message_passing_reuses_one_factory() {
    let system = System::builder(4).build();
    let factory = MpFactory::default();
    let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
        ByzStore::new(&system, &factory, 0, StoreConfig { shards: 2 });

    store.write(1, 10).unwrap();
    let after_one = factory.spawned();
    assert!(after_one > 0, "key 1 spawned its emulated base registers");

    store.write(2, 20).unwrap();
    assert_eq!(
        factory.spawned(),
        2 * after_one,
        "each key spawns the same fabric from the same shared factory"
    );

    let p2 = ProcessId::new(2);
    assert_eq!(store.read(p2, &1).unwrap(), Some(10));
    let got = store.verify_many(p2, &[(1, 10), (2, 20), (1, 20), (2, 20)]).unwrap();
    assert_eq!(got, vec![true, true, false, true]);
    system.shutdown();
}
