//! The store over the E6 message-passing backend: every key's register is
//! built from `MpRegister` emulations sourced from **one** shared
//! `MpFactory` — and every emulation runs as an event-driven task on the
//! factory's single reactor, so hundreds of keys cost a fixed worker pool
//! instead of `keys × fabric × n` node threads.

use byzreg_core::VerifiableRegister;
use byzreg_mp::{MpFactory, NetConfig};
use byzreg_runtime::{ProcessId, System};
use byzreg_store::store::{ByzStore, StoreConfig};

#[test]
fn store_over_message_passing_reuses_one_factory() {
    let system = System::builder(4).build();
    let factory = MpFactory::default();
    let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
        ByzStore::new(&system, &factory, 0, StoreConfig { shards: 2 });

    store.write(1, 10).unwrap();
    let after_one = factory.spawned();
    assert!(after_one > 0, "key 1 spawned its emulated base registers");

    store.write(2, 20).unwrap();
    assert_eq!(
        factory.spawned(),
        2 * after_one,
        "each key spawns the same fabric from the same shared factory"
    );

    let p2 = ProcessId::new(2);
    assert_eq!(store.read(p2, &1).unwrap(), Some(10));
    let got = store.verify_many(p2, &[(1, 10), (2, 20), (1, 20), (2, 20)]).unwrap();
    assert_eq!(got, vec![true, true, false, true]);
    system.shutdown();
}

/// The OS threads of this process, from `/proc/self/status` (`None` where
/// procfs is unavailable — the budget assertion is then skipped, the
/// completion of the workload itself is still the point).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn mp_store_with_500_keys_stays_within_a_fixed_thread_budget() {
    const KEYS: u64 = 500;
    // Old design: 500 keys × ~20 base registers × 4 node threads ≈ 40 000
    // OS threads — unspawnable. New design: a 4-worker reactor, full stop.
    // The budget leaves room for the test harness, the system's help
    // engines, and sibling tests running concurrently in this binary.
    const BUDGET: usize = 64;

    let system = System::builder(4).build();
    let factory = MpFactory::with_workers(NetConfig::instant(), 4);
    let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
        ByzStore::new(&system, &factory, 0, StoreConfig { shards: 16 });

    for key in 0..KEYS {
        store.write(key, key * 3 + 1).unwrap();
    }
    assert_eq!(store.len() as u64, KEYS, "all 500 registers are live at once");
    assert!(factory.spawned() as u64 >= KEYS, "each key holds a full emulated fabric");
    assert_eq!(factory.worker_count(), 4);

    if let Some(threads) = os_thread_count() {
        assert!(
            threads <= BUDGET,
            "{threads} OS threads for a 500-key MP store; the reactor budget is {BUDGET}"
        );
    }

    // The store stays serviceable at this scale.
    let p2 = ProcessId::new(2);
    assert_eq!(store.read(p2, &123).unwrap(), Some(123 * 3 + 1));
    assert_eq!(store.read(p2, &499).unwrap(), Some(499 * 3 + 1));
    system.shutdown();
}

#[test]
fn store_over_adversarial_mp_stays_correct() {
    // The full keyed-store surface (writes, reads, batched verifies) over
    // an MpFactory whose every register is scheduled by the composite
    // stress policy: slow-reader delays, a depth-3 reorder window, and a
    // hold-back pen on the reading pid p2.
    use byzreg_mp::AdversaryPolicy;
    use std::time::Duration;

    let system = System::builder(4).build();
    let factory = MpFactory::new(NetConfig::jittery(Duration::from_micros(200), 7))
        .adversarial(AdversaryPolicy::stress(ProcessId::new(1), ProcessId::new(2), 2, 23));
    let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
        ByzStore::new(&system, &factory, 0, StoreConfig { shards: 4 });

    for key in 0..24u64 {
        store.write(key, key + 100).unwrap();
    }
    let p2 = ProcessId::new(2);
    for key in 0..24u64 {
        assert_eq!(store.read(p2, &key).unwrap(), Some(key + 100), "key {key} under stress");
    }
    let checks: Vec<(u64, u64)> = (0..24u64).flat_map(|k| [(k, k + 100), (k, k + 999)]).collect();
    let got = store.verify_many(p2, &checks).unwrap();
    for (i, ok) in got.iter().enumerate() {
        assert_eq!(*ok, i % 2 == 0, "check {i}: genuine values verify, bogus ones do not");
    }
    system.shutdown();
}
