//! Workload measurement aggregation and its machine-readable rendering.
//!
//! The driver records one latency sample per operation item — a batched
//! item completes when its batch does, so it records the batch's full
//! latency (amortization shows up in throughput, not latency) — and
//! summarizes them as [`OpStats`]. A [`WorkloadReport`] bundles the per-kind stats
//! with the run's configuration fingerprint and renders as a JSON object —
//! the row format of the committed `BENCH_store.json` baseline.

/// Latency summary of one operation kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Number of items measured.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
}

impl OpStats {
    /// Summarizes raw per-item samples (nanoseconds). An empty sample set
    /// yields all-zero stats.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return OpStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|s| u128::from(*s)).sum();
        OpStats {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile(&samples, 50),
            p99_ns: percentile(&samples, 99),
        }
    }

    /// Renders as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}}",
            self.count, self.mean_ns, self.p50_ns, self.p99_ns
        )
    }
}

/// The `q`-th percentile of an ascending-sorted sample set: nearest-rank,
/// `sorted[⌈q·N/100⌉ − 1]`, so `q = 99` over few samples reports the
/// actual tail (the maximum) instead of the second-largest.
fn percentile(sorted: &[u64], q: u64) -> u64 {
    let rank = (sorted.len() as u64 * q).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// The outcome of one workload run: configuration fingerprint, throughput,
/// and per-kind latency stats.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Register family label (`verifiable` / `authenticated` / `sticky`).
    pub family: String,
    /// Backend label (`shm` / `mp`).
    pub backend: String,
    /// Key-space size.
    pub keys: u64,
    /// Shard count.
    pub shards: usize,
    /// Total operation items performed.
    pub ops: u64,
    /// Batch size used by the batched read/verify paths (≤ 1 = per-key).
    pub batch: usize,
    /// Writer thread count.
    pub writers: usize,
    /// Reader thread count.
    pub readers: usize,
    /// System size `n`.
    pub n: usize,
    /// Declared-Byzantine process count.
    pub byzantine: usize,
    /// Workload seed.
    pub seed: u64,
    /// Keys actually touched (and therefore instantiated).
    pub distinct_keys: usize,
    /// Wall-clock duration of the run, nanoseconds.
    pub elapsed_ns: u64,
    /// Items per second over the whole run.
    pub ops_per_sec: f64,
    /// Write latencies.
    pub write: OpStats,
    /// Read latencies.
    pub read: OpStats,
    /// Verify latencies.
    pub verify: OpStats,
}

impl WorkloadReport {
    /// Renders as a JSON object (one row of `BENCH_store.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"family\":\"{}\",\"backend\":\"{}\",\"keys\":{},\"shards\":{},\"ops\":{},\
             \"batch\":{},\"writers\":{},\"readers\":{},\"n\":{},\"byzantine\":{},\"seed\":{},\
             \"distinct_keys\":{},\"elapsed_ns\":{},\"ops_per_sec\":{:.1},\
             \"write\":{},\"read\":{},\"verify\":{}}}",
            self.family,
            self.backend,
            self.keys,
            self.shards,
            self.ops,
            self.batch,
            self.writers,
            self.readers,
            self.n,
            self.byzantine,
            self.seed,
            self.distinct_keys,
            self.elapsed_ns,
            self.ops_per_sec,
            self.write.to_json(),
            self.read.to_json(),
            self.verify.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_empty_samples_are_zero() {
        assert_eq!(OpStats::from_samples(Vec::new()), OpStats::default());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let stats = OpStats::from_samples(samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_ns, 50);
        assert_eq!(stats.p99_ns, 99);
        assert!((stats.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn p99_over_few_samples_is_the_tail() {
        // Nearest-rank: ⌈0.99·10⌉ = 10th element — the max, not the
        // second-largest.
        let stats = OpStats::from_samples((1..=10).collect());
        assert_eq!(stats.p99_ns, 10);
        assert_eq!(stats.p50_ns, 5);
        let one = OpStats::from_samples(vec![7]);
        assert_eq!((one.p50_ns, one.p99_ns), (7, 7));
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let stats = OpStats::from_samples(vec![10, 20, 30]);
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"p50_ns\":20"));
    }
}
