//! The seeded store workload driver.
//!
//! One run drives a [`ByzStore`] with a reproducible mixed workload:
//!
//! * **mix** — a read/write/verify percentage split over `ops` items;
//! * **skew** — Zipf-like key sampling (`u^(1+skew)` over the key space),
//!   so a nonzero skew concentrates traffic on a hot set of low keys, the
//!   regime where the batched store paths shine;
//! * **concurrency** — `writers` writer threads (each owning a disjoint
//!   key partition, preserving single-writer-per-register) and `readers`
//!   reader threads (round-robined over the correct non-writer pids);
//! * **faults** — the top `byzantine` pids are declared Byzantine: they
//!   run no help tasks, so every quorum decision must succeed with `f`
//!   processes missing.
//!
//! Everything is derived from `seed`: the set of keys touched — and hence
//! the number of registers instantiated — is identical across runs with
//! the same configuration.

use std::time::Instant;

use byzreg_core::api::SignatureRegister;
use byzreg_runtime::{ProcessId, RegisterFactory, Result, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{OpStats, WorkloadReport};
use crate::store::{ByzStore, StoreConfig};

/// Parameters of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Key-space size (keys are `0..keys`).
    pub keys: u64,
    /// Store shard count.
    pub shards: usize,
    /// Total operation items across all worker threads.
    pub ops: u64,
    /// Percentage of items that are reads.
    pub read_pct: u8,
    /// Percentage of items that are writes; the remainder are verifies.
    pub write_pct: u8,
    /// Batch size for the batched read/verify paths; `<= 1` uses the
    /// per-key loop instead.
    pub batch: usize,
    /// Zipf-like skew exponent: `0.0` is uniform, larger values
    /// concentrate traffic on low keys.
    pub skew: f64,
    /// Writer thread count (each owns the keys `k` with
    /// `k % writers == index`).
    pub writers: usize,
    /// Reader thread count.
    pub readers: usize,
    /// System size `n`.
    pub n: usize,
    /// Number of top pids declared Byzantine (must stay `<= ⌊(n−1)/3⌋` so
    /// quorums remain live).
    pub byzantine: usize,
    /// Write every key once before the timed run, so all `keys` registers
    /// are instantiated regardless of skew — the shape of the MP-scale
    /// scenario, where the point is *how many live registers* one backend
    /// holds, not which keys the sampler happens to hit.
    pub prepopulate: bool,
    /// Master seed; all per-thread streams derive from it.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The smoke-test shape of the acceptance workload: 1024 keys over 8
    /// shards, a mixed 40/30/30 read/write/verify split, Zipf-like skew,
    /// two writer and two reader threads, and one Byzantine process out of
    /// five.
    #[must_use]
    pub fn smoke() -> Self {
        WorkloadConfig {
            keys: 1024,
            shards: 8,
            ops: 384,
            read_pct: 40,
            write_pct: 30,
            batch: 16,
            skew: 0.8,
            writers: 2,
            readers: 2,
            n: 5,
            byzantine: 1,
            prepopulate: false,
            seed: 7,
        }
    }

    /// The adversarial-MP scenario shape (the `mp-adversary` /
    /// `mp-partition` rows of `BENCH_store.json`): the hot-key MP mix —
    /// every base-register access is a quorum protocol over a simulated
    /// network scheduled by an `AdversaryPolicy` — sized so the timed
    /// window clears the regression gate's noise floor. The reading pid is
    /// `p2`, which is exactly the victim every canned policy targets: the
    /// measured path is the adversarially-delayed one.
    #[must_use]
    pub fn mp_adversary() -> Self {
        WorkloadConfig {
            keys: 1024,
            shards: 8,
            ops: 96,
            read_pct: 40,
            write_pct: 35,
            batch: 8,
            skew: 0.95,
            writers: 1,
            readers: 1,
            n: 4,
            byzantine: 1,
            prepopulate: false,
            seed: 7,
        }
    }

    /// The help-scale probe shape: `keys` live (prepopulated) registers
    /// and a verify-only, unbatched timed phase with uniform key sampling.
    /// Run at increasing `keys`, it measures whether per-operation verify
    /// latency scales with the number of *live* keys — the cost the
    /// per-shard demand-driven help engines are designed to flatten: only
    /// the keys with a pending quorum round are ticked, so p99 should not
    /// grow with the key count.
    #[must_use]
    pub fn verify_probe(keys: u64) -> Self {
        WorkloadConfig {
            keys,
            shards: 16,
            ops: 256,
            read_pct: 0,
            write_pct: 0,
            batch: 1,
            skew: 0.0,
            writers: 1,
            readers: 1,
            n: 4,
            byzantine: 1,
            prepopulate: true,
            seed: 7,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any inconsistent setting.
    pub fn validate(&self) {
        assert!(self.keys >= 1, "empty key space");
        assert!(self.shards >= 1, "a store needs at least one shard");
        assert!(
            usize::from(self.read_pct) + usize::from(self.write_pct) <= 100,
            "read_pct + write_pct must not exceed 100"
        );
        assert!(self.writers >= 1 && self.readers >= 1, "need at least one thread of each kind");
        assert!(self.keys >= self.writers as u64, "more writer threads than keys");
        assert!(self.n >= 2, "a register system needs a writer and a reader");
        assert!(
            self.byzantine <= (self.n - 1) / 3,
            "byzantine = {} exceeds f = ⌊(n−1)/3⌋ = {}; quorums would not be live",
            self.byzantine,
            (self.n - 1) / 3
        );
        assert!(
            self.n - self.byzantine >= 2,
            "need at least one correct reader pid besides the writer"
        );
    }
}

/// Builds the hosting system for `cfg`: `n` processes with the top
/// `byzantine` pids declared faulty (the writer `p1` stays correct).
///
/// # Panics
///
/// Panics if `cfg` is inconsistent (see [`WorkloadConfig::validate`]).
#[must_use]
pub fn build_system(cfg: &WorkloadConfig) -> System {
    cfg.validate();
    let mut builder = System::builder(cfg.n);
    for i in 0..cfg.byzantine {
        builder = builder.byzantine(ProcessId::new(cfg.n - i));
    }
    builder.build()
}

/// The value the workload writes under `key` (deterministic per key, so
/// sticky registers see consistent first writes and verifies know what to
/// expect).
#[must_use]
pub fn value_of(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// A value never written under any key (the negative-verify probe).
#[must_use]
pub fn bogus_value_of(key: u64) -> u64 {
    value_of(key) ^ 0xDEAD_0000
}

/// Samples a key with Zipf-like skew.
///
/// `skew` plays the role of the Zipf exponent `s` in `p(k) ∝ 1/k^s`: the
/// sampler inverts the continuous CDF approximation `F(k) ∝ k^(1−s)`,
/// i.e. draws `⌊keys · u^(1/(1−s))⌋`. `skew <= 0` is uniform; values are
/// clamped just below `1` (where the approximation degenerates). At
/// `skew = 0.8`, roughly three quarters of the traffic lands on the
/// lowest quarter of the key space.
///
/// # Panics
///
/// Panics if `keys == 0`.
#[must_use]
pub fn sample_key(rng: &mut StdRng, keys: u64, skew: f64) -> u64 {
    assert!(keys >= 1, "cannot sample from an empty key space");
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let frac = if skew <= 0.0 { u } else { u.powf(1.0 / (1.0 - skew.min(0.99))) };
    ((frac * keys as f64) as u64).min(keys - 1)
}

/// Builds a skewed batch of verify checks — the traffic shape the batched
/// store paths are optimized for: keys Zipf-sampled (hot keys repeat
/// within the batch), values split between each key's genuine value and a
/// never-written probe. Shared by the store bench and the `BENCH_store`
/// baseline driver.
pub fn build_check_batch(rng: &mut StdRng, keys: u64, skew: f64, len: usize) -> Vec<(u64, u64)> {
    (0..len)
        .map(|_| {
            let key = sample_key(rng, keys, skew);
            let v = if rng.random_bool(0.5) { value_of(key) } else { bogus_value_of(key) };
            (key, v)
        })
        .collect()
}

/// Remaps `raw` into writer `w`'s partition (`key % writers == w`),
/// preserving the skew shape.
fn partition_key(raw: u64, keys: u64, writers: u64, w: u64) -> u64 {
    let base = raw - (raw % writers) + w;
    if base >= keys {
        w
    } else {
        base
    }
}

/// `part`'s share when `total` items are split over `parts` workers.
fn share(part: usize, total: u64, parts: usize) -> u64 {
    total / parts as u64 + u64::from((part as u64) < total % parts as u64)
}

#[derive(Default)]
struct ThreadSamples {
    write: Vec<u64>,
    read: Vec<u64>,
    verify: Vec<u64>,
}

/// Every item in a batch completes when the batch does, so each item
/// records the batch's **full** latency — batching buys throughput, not
/// per-item latency, and the percentiles must say so (a slow batch is a
/// genuine tail event across its items).
fn record_batch(samples: &mut Vec<u64>, elapsed_ns: u64, items: usize) {
    samples.extend(std::iter::repeat(elapsed_ns.max(1)).take(items));
}

/// Runs the workload against a store of family `R` over backend `factory`
/// on `system` (built compatibly with `cfg`, e.g. by [`build_system`]).
/// `backend` is the label recorded in the report (`"shm"` / `"mp"`).
///
/// # Errors
///
/// [`byzreg_runtime::Error::Shutdown`] if the system shuts down mid-run.
///
/// # Panics
///
/// Panics if `cfg` is inconsistent or `system` declares a Byzantine
/// writer.
pub fn run_workload<R, F>(
    system: &System,
    factory: F,
    backend: &str,
    cfg: &WorkloadConfig,
) -> Result<WorkloadReport>
where
    R: SignatureRegister<u64>,
    F: RegisterFactory,
{
    cfg.validate();
    let reader_pids: Vec<ProcessId> =
        system.env().correct().into_iter().filter(|p| !p.is_writer()).collect();
    assert!(!reader_pids.is_empty(), "no correct reader pids");

    let store: ByzStore<'_, u64, u64, R, F> =
        ByzStore::new(system, factory, 0, StoreConfig { shards: cfg.shards });

    if cfg.prepopulate {
        // Outside the timed window: instantiation cost is a property of
        // the backend (the MP-scale scenario measures *holding* thousands
        // of live registers), while `ops_per_sec` measures steady state.
        for key in 0..cfg.keys {
            store.write(key, value_of(key))?;
        }
    }

    let writes = cfg.ops * u64::from(cfg.write_pct) / 100;
    let reads = cfg.ops * u64::from(cfg.read_pct) / 100;
    let verifies = cfg.ops - writes - reads;

    let start = Instant::now();
    let results: Vec<Result<ThreadSamples>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..cfg.writers {
            let store = &store;
            let quota = share(w, writes, cfg.writers);
            handles.push(scope.spawn(move || writer_thread(store, cfg, w, quota)));
        }
        for r in 0..cfg.readers {
            let store = &store;
            let pid = reader_pids[r % reader_pids.len()];
            let quotas = (share(r, reads, cfg.readers), share(r, verifies, cfg.readers));
            handles.push(scope.spawn(move || reader_thread(store, cfg, r, pid, quotas)));
        }
        handles.into_iter().map(|h| h.join().expect("workload thread panicked")).collect()
    });
    let elapsed = start.elapsed();

    let mut merged = ThreadSamples::default();
    for result in results {
        let samples = result?;
        merged.write.extend(samples.write);
        merged.read.extend(samples.read);
        merged.verify.extend(samples.verify);
    }

    let total_items = writes + reads + verifies;
    let elapsed_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    Ok(WorkloadReport {
        family: R::FAMILY.label().to_string(),
        backend: backend.to_string(),
        keys: cfg.keys,
        shards: cfg.shards,
        ops: total_items,
        batch: cfg.batch,
        writers: cfg.writers,
        readers: cfg.readers,
        n: cfg.n,
        byzantine: cfg.byzantine,
        seed: cfg.seed,
        distinct_keys: store.len(),
        elapsed_ns,
        ops_per_sec: total_items as f64 / (elapsed_ns as f64 / 1e9),
        write: OpStats::from_samples(merged.write),
        read: OpStats::from_samples(merged.read),
        verify: OpStats::from_samples(merged.verify),
    })
}

fn writer_thread<R: SignatureRegister<u64>, F: RegisterFactory>(
    store: &ByzStore<'_, u64, u64, R, F>,
    cfg: &WorkloadConfig,
    w: usize,
    quota: u64,
) -> Result<ThreadSamples> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5752_0000 + w as u64));
    let mut samples = ThreadSamples::default();
    for _ in 0..quota {
        let raw = sample_key(&mut rng, cfg.keys, cfg.skew);
        let key = partition_key(raw, cfg.keys, cfg.writers as u64, w as u64);
        let t0 = Instant::now();
        store.write(key, value_of(key))?;
        samples.write.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(samples)
}

fn reader_thread<R: SignatureRegister<u64>, F: RegisterFactory>(
    store: &ByzStore<'_, u64, u64, R, F>,
    cfg: &WorkloadConfig,
    r: usize,
    pid: ProcessId,
    (reads, verifies): (u64, u64),
) -> Result<ThreadSamples> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5244_0000 + r as u64));
    let mut samples = ThreadSamples::default();
    let batching = cfg.batch > 1;
    let mut pending_reads: Vec<u64> = Vec::new();
    let mut pending_checks: Vec<(u64, u64)> = Vec::new();
    let (mut reads_left, mut verifies_left) = (reads, verifies);
    while reads_left + verifies_left > 0 {
        let is_read = rng.random_range(0..reads_left + verifies_left) < reads_left;
        let key = sample_key(&mut rng, cfg.keys, cfg.skew);
        if is_read {
            reads_left -= 1;
            if batching {
                pending_reads.push(key);
                if pending_reads.len() >= cfg.batch {
                    flush_reads(store, pid, &mut pending_reads, &mut samples.read)?;
                }
            } else {
                let t0 = Instant::now();
                store.read(pid, &key)?;
                samples.read.push(t0.elapsed().as_nanos() as u64);
            }
        } else {
            verifies_left -= 1;
            // Half the probes check the key's genuine value (true once the
            // key was written), half a value nobody ever wrote (false).
            let v = if rng.random_bool(0.5) { value_of(key) } else { bogus_value_of(key) };
            if batching {
                pending_checks.push((key, v));
                if pending_checks.len() >= cfg.batch {
                    flush_checks(store, pid, &mut pending_checks, &mut samples.verify)?;
                }
            } else {
                let t0 = Instant::now();
                store.verify(pid, &key, &v)?;
                samples.verify.push(t0.elapsed().as_nanos() as u64);
            }
        }
    }
    flush_reads(store, pid, &mut pending_reads, &mut samples.read)?;
    flush_checks(store, pid, &mut pending_checks, &mut samples.verify)?;
    Ok(samples)
}

fn flush_reads<R: SignatureRegister<u64>, F: RegisterFactory>(
    store: &ByzStore<'_, u64, u64, R, F>,
    pid: ProcessId,
    pending: &mut Vec<u64>,
    samples: &mut Vec<u64>,
) -> Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let t0 = Instant::now();
    store.read_many(pid, pending)?;
    record_batch(samples, t0.elapsed().as_nanos() as u64, pending.len());
    pending.clear();
    Ok(())
}

fn flush_checks<R: SignatureRegister<u64>, F: RegisterFactory>(
    store: &ByzStore<'_, u64, u64, R, F>,
    pid: ProcessId,
    pending: &mut Vec<(u64, u64)>,
    samples: &mut Vec<u64>,
) -> Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let t0 = Instant::now();
    store.verify_many(pid, pending)?;
    record_batch(samples, t0.elapsed().as_nanos() as u64, pending.len());
    pending.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
    use byzreg_runtime::LocalFactory;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            keys: 64,
            shards: 4,
            ops: 60,
            read_pct: 40,
            write_pct: 30,
            batch: 4,
            skew: 0.6,
            writers: 2,
            readers: 2,
            n: 4,
            byzantine: 1,
            prepopulate: false,
            seed: 11,
        }
    }

    fn drive<R: SignatureRegister<u64>>(cfg: &WorkloadConfig) -> WorkloadReport {
        let system = build_system(cfg);
        let report = run_workload::<R, _>(&system, LocalFactory, "shm", cfg).unwrap();
        system.shutdown();
        report
    }

    #[test]
    fn tiny_workload_runs_for_all_families() {
        let cfg = tiny();
        for report in [
            drive::<VerifiableRegister<u64>>(&cfg),
            drive::<AuthenticatedRegister<u64>>(&cfg),
            drive::<StickyRegister<u64>>(&cfg),
        ] {
            assert_eq!(report.ops, 60, "{}", report.family);
            assert_eq!(
                report.write.count + report.read.count + report.verify.count,
                60,
                "{}: every item must be sampled",
                report.family
            );
            assert!(report.distinct_keys > 0 && report.distinct_keys <= 64);
            assert!(report.ops_per_sec > 0.0);
            let json = report.to_json();
            assert!(json.contains("\"backend\":\"shm\"") && json.contains("\"ops\":60"));
        }
    }

    #[test]
    fn same_seed_touches_the_same_keys() {
        let cfg = tiny();
        let a = drive::<VerifiableRegister<u64>>(&cfg);
        let b = drive::<VerifiableRegister<u64>>(&cfg);
        assert_eq!(a.distinct_keys, b.distinct_keys, "key sampling must be seed-deterministic");
    }

    #[test]
    fn unbatched_mode_exercises_the_per_key_loop() {
        let mut cfg = tiny();
        cfg.batch = 1;
        cfg.ops = 30;
        let report = drive::<AuthenticatedRegister<u64>>(&cfg);
        assert_eq!(report.ops, 30);
        assert_eq!(report.batch, 1);
    }

    #[test]
    fn prepopulate_instantiates_every_key() {
        let mut cfg = tiny();
        cfg.prepopulate = true;
        let report = drive::<VerifiableRegister<u64>>(&cfg);
        assert_eq!(report.distinct_keys, 64, "every key written once before the timed run");
        assert_eq!(report.ops, 60, "prepopulation writes are not measured items");
    }

    #[test]
    fn partition_keys_stay_in_range_and_partition() {
        for raw in 0..64u64 {
            for w in 0..3u64 {
                let key = partition_key(raw, 64, 3, w);
                assert!(key < 64);
                assert_eq!(key % 3, w);
            }
        }
    }

    #[test]
    fn skewed_sampling_prefers_low_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0u32;
        for _ in 0..1000 {
            if sample_key(&mut rng, 1024, 0.8) < 256 {
                low += 1;
            }
        }
        assert!(low > 700, "skew 0.8 should put >70% of traffic on the low quarter, got {low}");
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0u32;
        for _ in 0..1000 {
            if sample_key(&mut rng, 1024, 0.0) < 256 {
                low += 1;
            }
        }
        assert!((150..350).contains(&low), "skew 0 must stay uniform, got {low}");
    }

    #[test]
    #[should_panic(expected = "quorums would not be live")]
    fn too_many_byzantine_processes_are_rejected() {
        let mut cfg = tiny();
        cfg.byzantine = 2;
        cfg.validate();
    }
}
