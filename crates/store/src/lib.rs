//! # byzreg-store
//!
//! From *one* register to a keyed *store* of many: a sharded map from keys
//! to lazily-instantiated [`SignatureRegister`] instances — any family,
//! over any [`RegisterFactory`] backend (in-process shared memory or the
//! message-passing emulation of `byzreg-mp`) — plus a seeded workload
//! driver that measures it under realistic mixed traffic.
//!
//! [`SignatureRegister`]: byzreg_core::api::SignatureRegister
//! [`RegisterFactory`]: byzreg_runtime::RegisterFactory
//!
//! Three layers:
//!
//! * [`store`] — [`ByzStore`](store::ByzStore): shard-level routing (keys
//!   in different shards never contend on store metadata), per-key
//!   register instantiation on first touch, and batched
//!   [`verify_many`](store::ByzStore::verify_many) /
//!   [`read_many`](store::ByzStore::read_many) paths — `verify_many`
//!   dedupes per key and then fuses **all** engine-backed keys into one
//!   cross-register §5.1 round sequence sharing a single logical asker
//!   counter per reader;
//! * [`workload`] — a deterministic, seeded driver: read/write/verify mix,
//!   Zipf-like key skew, configurable writer/reader thread counts and
//!   Byzantine fraction;
//! * [`report`] — throughput and latency-percentile aggregation with a
//!   machine-readable JSON rendering (the `BENCH_store.json` baseline).
//!
//! # Example
//!
//! ```
//! use byzreg_core::VerifiableRegister;
//! use byzreg_runtime::{LocalFactory, ProcessId, System};
//! use byzreg_store::store::{ByzStore, StoreConfig};
//!
//! # fn main() -> byzreg_runtime::Result<()> {
//! let system = System::builder(4).build();
//! let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
//!     ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
//!
//! store.write(7, 700)?;
//! store.write(9, 900)?;
//! let p2 = ProcessId::new(2);
//! assert_eq!(store.read(p2, &7)?, Some(700));
//! // One batched call: key 7 pays a single quorum round sequence for
//! // both of its checks.
//! let got = store.verify_many(p2, &[(7, 700), (9, 900), (7, 123)])?;
//! assert_eq!(got, vec![true, true, false]);
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod store;
pub mod workload;

pub use report::{OpStats, WorkloadReport};
pub use store::{ByzStore, StoreConfig};
pub use workload::{run_workload, WorkloadConfig};
