//! The sharded multi-register store.
//!
//! A [`ByzStore`] maps keys to independent [`SignatureRegister`] instances
//! of one family, instantiated lazily on first touch. Routing is
//! shard-level: a key's shard is a stable hash of the key, and all store
//! metadata (the key → register map) is locked per shard, so operations on
//! keys in different shards never contend on the store itself — only the
//! hosting [`System`]'s help engines are shared.
//!
//! The batched paths are where the store earns its keep under load:
//! [`ByzStore::verify_many`] groups a batch of `(key, value)` checks by
//! key, dedupes identical checks, and **fuses** every engine-backed key
//! into one cross-register §5.1 round sequence — a single logical asker
//! counter per reader drives all touched registers' voting loops in
//! lockstep ([`verify_quorum_groups`]), so a batch spanning many keys
//! costs the slowest key's rounds, not the sum of every key's rounds.
//! [`ByzStore::read_many`] likewise answers duplicate keys from a single
//! quorum read. Under skewed (Zipf-like) traffic the dedupe amortizes hot
//! keys; under spread-out traffic the fusion amortizes the cold ones.
//!
//! **Helping is partitioned by shard**: each store shard owns one
//! demand-driven help shard of the hosting [`System`], and every key's
//! `Help()` tasks are registered under its shard. A shard with no pending
//! quorum round parks its engine entirely — so background helping cost
//! (and, over the MP backend, background quorum traffic) scales with the
//! *actively used* keys of the touched shards instead of with every
//! instantiated key, and the help-engine thread budget is the shard count
//! regardless of how many keys are live. On backends that support it
//! (`byzreg-mp`), a shard's keys additionally share one scheduler task, so
//! a fused cross-key batch wakes one task per touched shard instead of one
//! per base register.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use byzreg_core::api::{SignatureRegister, SignatureSigner, SignatureVerifier};
use byzreg_core::quorum::{verify_quorum_groups, VerifyGroup};
use byzreg_runtime::{HelpShard, ProcessId, RegisterFactory, Result, System, Value};

/// Store-level tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Number of shards the key space is routed over. More shards means
    /// less metadata contention between unrelated keys.
    pub shards: usize,
}

impl Default for StoreConfig {
    /// Eight shards — enough to keep a handful of worker threads off each
    /// other's locks without bloating per-store state.
    fn default() -> Self {
        StoreConfig { shards: 8 }
    }
}

/// One key's slot: the register instance plus its operation handles.
///
/// The signer is taken at install time (each register has a unique
/// writer); verifier handles are taken once per reader pid and shared
/// behind a mutex, since handles apply their process's operations
/// sequentially.
struct Entry<V: Value, R: SignatureRegister<V>> {
    register: R,
    signer: Mutex<R::Signer>,
    verifiers: Mutex<HashMap<ProcessId, Arc<Mutex<R::Verifier>>>>,
    _values: PhantomData<fn() -> V>,
}

impl<V: Value, R: SignatureRegister<V>> Entry<V, R> {
    fn verifier(&self, pid: ProcessId) -> Arc<Mutex<R::Verifier>> {
        let mut map = self.verifiers.lock();
        Arc::clone(
            map.entry(pid).or_insert_with(|| Arc::new(Mutex::new(self.register.verifier(pid)))),
        )
    }
}

struct Shard<K: Value, V: Value, R: SignatureRegister<V>> {
    entries: Mutex<HashMap<K, Arc<Entry<V, R>>>>,
}

/// A sharded map from keys to lazily-instantiated signature registers.
///
/// Generic over the key type `K`, the stored value type `V`, the register
/// family `R`, and the base-register backend `F` — pass `LocalFactory`
/// for in-process shared memory or (a reference to) `byzreg_mp::MpFactory`
/// to run every key's register over the message-passing emulation.
///
/// Any operation on a key instantiates its register on first touch; a
/// read of a never-written key therefore returns the family's initial
/// value (`v0` for verifiable/authenticated, `None` for sticky).
pub struct ByzStore<'s, K: Value, V: Value, R: SignatureRegister<V>, F: RegisterFactory> {
    system: &'s System,
    factory: F,
    v0: V,
    shards: Vec<Shard<K, V, R>>,
    /// One help shard per store shard: key `k`'s help tasks live on
    /// `help[shard_of(k)]`, demand-gated (see module docs).
    help: Vec<HelpShard>,
}

impl<'s, K: Value, V: Value, R: SignatureRegister<V>, F: RegisterFactory> ByzStore<'s, K, V, R, F> {
    /// Creates an empty store over `system`, sourcing every register's base
    /// registers from the shared `factory`.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    #[must_use]
    pub fn new(system: &'s System, factory: F, v0: V, config: StoreConfig) -> Self {
        assert!(config.shards >= 1, "a store needs at least one shard");
        let shards =
            (0..config.shards).map(|_| Shard { entries: Mutex::new(HashMap::new()) }).collect();
        let help = (0..config.shards).map(|_| system.new_help_shard()).collect();
        ByzStore { system, factory, v0, shards, help }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to (stable across the process lifetime).
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Number of keys whose registers have been instantiated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// `true` if no key has been touched yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantiated keys per shard (routing-balance diagnostics).
    #[must_use]
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.entries.lock().len()).collect()
    }

    /// The entry for `key`, installing its register on first touch. Only
    /// `key`'s shard is locked; installation happens under that lock so a
    /// key can never get two competing register instances.
    ///
    /// Installation registers the key's help tasks on the shard's help
    /// shard (demand-driven) and hints the backend that the key's base
    /// registers belong to the shard's co-scheduling group.
    fn entry(&self, key: &K) -> Arc<Entry<V, R>> {
        let idx = self.shard_of(key);
        let shard = &self.shards[idx];
        let mut entries = shard.entries.lock();
        if let Some(e) = entries.get(key) {
            return Arc::clone(e);
        }
        let help = &self.help[idx];
        // Close the backend group even if the install panics (n <= 3f).
        struct GroupScope<'f, G: RegisterFactory>(&'f G);
        impl<G: RegisterFactory> Drop for GroupScope<'_, G> {
            fn drop(&mut self) {
                self.0.close_group();
            }
        }
        self.factory.open_group(help.id() as u64);
        let scope = GroupScope(&self.factory);
        let register = R::install_in_shard(self.system, self.v0.clone(), &self.factory, help);
        drop(scope);
        let signer = Mutex::new(register.signer());
        let e = Arc::new(Entry {
            register,
            signer,
            verifiers: Mutex::new(HashMap::new()),
            _values: PhantomData,
        });
        entries.insert(key.clone(), Arc::clone(&e));
        e
    }

    /// Writes `v` under `key` and signs it (one atomic writer-side step
    /// pair; families with implicitly-signed writes make the sign a no-op).
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    pub fn write(&self, key: K, v: V) -> Result<()> {
        let entry = self.entry(&key);
        let mut signer = entry.signer.lock();
        signer.write_value(v.clone())?;
        let signed = signer.sign_value(&v)?;
        debug_assert!(signed, "signing a just-written value always succeeds");
        Ok(())
    }

    /// Reads `key`'s register as reader `pid`. `None` is the sticky `⊥`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer or declared Byzantine.
    pub fn read(&self, pid: ProcessId, key: &K) -> Result<Option<V>> {
        self.entry(key).verifier(pid).lock().read_value()
    }

    /// Checks `v`'s signature property under `key` as reader `pid`.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer or declared Byzantine.
    pub fn verify(&self, pid: ProcessId, key: &K, v: &V) -> Result<bool> {
        self.entry(key).verifier(pid).lock().verify_value(v)
    }

    /// Reads a batch of keys, answering duplicate keys from one quorum
    /// read. Results are in input order; semantically equivalent to
    /// calling [`read`](ByzStore::read) once per key.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer or declared Byzantine.
    pub fn read_many(&self, pid: ProcessId, keys: &[K]) -> Result<Vec<Option<V>>> {
        let mut cache: HashMap<&K, Option<V>> = HashMap::with_capacity(keys.len());
        for key in keys {
            if !cache.contains_key(key) {
                let got = self.read(pid, key)?;
                cache.insert(key, got);
            }
        }
        Ok(keys.iter().map(|k| cache[k].clone()).collect())
    }

    /// Verifies a batch of `(key, value)` checks, amortizing the quorum
    /// machinery across the **whole batch, across keys**: checks are
    /// grouped by key, identical checks are deduped, and every
    /// engine-backed key (verifiable/authenticated) joins one **fused**
    /// cross-register round sequence driven by a single logical asker
    /// counter per reader ([`verify_quorum_groups`]) — one shared round
    /// cursor fanned out to every touched register, so a batch spanning
    /// `m` keys waits for the slowest key's rounds instead of the sum of
    /// all keys' rounds. Engine-less keys (sticky) answer their checks
    /// from one quorum read each, as before. Results are in input order;
    /// semantically equivalent to calling [`verify`](ByzStore::verify)
    /// once per check.
    ///
    /// # Errors
    ///
    /// [`byzreg_runtime::Error::Shutdown`] if the system is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is the writer or declared Byzantine.
    pub fn verify_many(&self, pid: ProcessId, checks: &[(K, V)]) -> Result<Vec<bool>> {
        enum Plan {
            /// Outcomes come from fused group `i` of the cross-key run.
            Fused(usize),
            /// Outcomes were answered by the key's own batched verifier.
            Done(Vec<bool>),
        }

        let mut results = vec![false; checks.len()];
        // Sorted key grouping: the verifier locks below are taken in this
        // global order, so concurrent batches can never deadlock.
        let mut by_key: BTreeMap<&K, Vec<usize>> = BTreeMap::new();
        for (i, (key, _)) in checks.iter().enumerate() {
            by_key.entry(key).or_default().push(i);
        }
        type KeyHandle<X> = (Vec<usize>, Arc<Mutex<X>>);
        let handles: Vec<KeyHandle<R::Verifier>> =
            by_key.into_iter().map(|(key, idxs)| (idxs, self.entry(key).verifier(pid))).collect();

        // Engine-backed verifiers stay locked for the whole fused run (the
        // shared cursor owns each key's asker counter until the batch is
        // decided); engine-less ones (sticky) answer their checks and
        // release their lock immediately — holding only one key's lock at
        // a time, exactly like the unfused per-key path. Acquisition stays
        // in sorted-key order throughout, so no deadlock either way.
        let mut fused_guards = Vec::new();
        let mut fused: Vec<VerifyGroup<V>> = Vec::new();
        let mut plans = Vec::with_capacity(handles.len());
        for (idxs, verifier) in &handles {
            let mut guard = verifier.lock();
            // Dedupe identical values for this key: verify once, fan the
            // answer back out to every duplicate check.
            let mut slot_of_value: HashMap<&V, usize> = HashMap::new();
            let mut distinct: Vec<V> = Vec::new();
            let mut slots = Vec::with_capacity(idxs.len());
            for &i in idxs {
                let v = &checks[i].1;
                let slot = *slot_of_value.entry(v).or_insert_with(|| {
                    distinct.push(v.clone());
                    distinct.len() - 1
                });
                slots.push(slot);
            }
            let plan = match guard.engine_parts() {
                Some(parts) => {
                    fused.push(VerifyGroup { parts, vs: distinct });
                    fused_guards.push(guard);
                    Plan::Fused(fused.len() - 1)
                }
                None => Plan::Done(guard.verify_many(&distinct)?),
            };
            plans.push((idxs, slots, plan));
        }

        let fused_outcomes = if fused.is_empty() {
            Vec::new()
        } else {
            let env = self.system.env();
            env.run_as(pid, || verify_quorum_groups(env, &fused))?
        };
        drop(fused_guards);
        for (idxs, slots, plan) in plans {
            let outcomes = match plan {
                Plan::Fused(group) => &fused_outcomes[group],
                Plan::Done(ref outcomes) => outcomes,
            };
            for (&i, &slot) in idxs.iter().zip(&slots) {
                results[i] = outcomes[slot];
            }
        }
        Ok(results)
    }
}

impl<K: Value, V: Value, R: SignatureRegister<V>, F: RegisterFactory> std::fmt::Debug
    for ByzStore<'_, K, V, R, F>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzStore")
            .field("family", &R::FAMILY)
            .field("shards", &self.shard_count())
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzreg_core::{AuthenticatedRegister, StickyRegister, VerifiableRegister};
    use byzreg_runtime::LocalFactory;

    fn roundtrip<R: SignatureRegister<u64>>() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, R, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
        assert!(store.is_empty());
        store.write(1, 100).unwrap();
        store.write(2, 200).unwrap();
        assert_eq!(store.len(), 2, "{}: lazily instantiated on write", R::FAMILY);
        let p2 = ProcessId::new(2);
        assert_eq!(store.read(p2, &1).unwrap(), Some(100), "{}", R::FAMILY);
        assert!(store.verify(p2, &1, &100).unwrap(), "{}", R::FAMILY);
        assert!(!store.verify(p2, &1, &200).unwrap(), "{}: 200 lives under key 2", R::FAMILY);
        system.shutdown();
    }

    #[test]
    fn write_read_verify_roundtrip_all_families() {
        roundtrip::<VerifiableRegister<u64>>();
        roundtrip::<AuthenticatedRegister<u64>>();
        roundtrip::<StickyRegister<u64>>();
    }

    #[test]
    fn sticky_store_keys_are_first_write_wins() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, StickyRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
        store.write(5, 50).unwrap();
        store.write(5, 99).unwrap(); // no-op: key 5 is stuck on 50
        let p3 = ProcessId::new(3);
        assert_eq!(store.read(p3, &5).unwrap(), Some(50));
        assert!(store.verify(p3, &5, &50).unwrap());
        assert!(!store.verify(p3, &5, &99).unwrap());
        system.shutdown();
    }

    #[test]
    fn verify_many_matches_per_check_loop_and_dedupes() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
        store.write(1, 10).unwrap();
        store.write(2, 20).unwrap();
        let p2 = ProcessId::new(2);
        // Hot key 1 appears four times (twice with an identical check).
        let checks = vec![(1u64, 10u64), (2, 20), (1, 11), (1, 10), (3, 30), (1, 12), (2, 21)];
        let batched = store.verify_many(p2, &checks).unwrap();
        let looped: Vec<bool> =
            checks.iter().map(|(k, v)| store.verify(p2, k, v).unwrap()).collect();
        assert_eq!(batched, looped);
        assert_eq!(batched, vec![true, true, false, true, false, false, false]);
        system.shutdown();
    }

    #[test]
    fn verify_many_fused_across_keys_matches_loop_for_all_families() {
        // Verifiable/authenticated route through the fused cross-key
        // engine (one logical asker counter per reader); sticky takes the
        // engine-less one-read-per-key path. All must agree with the
        // per-check loop.
        fn drive<R: SignatureRegister<u64>>() {
            let system = System::builder(4).build();
            let store: ByzStore<'_, u64, u64, R, _> =
                ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
            for key in 1..=4u64 {
                store.write(key, key * 10).unwrap();
            }
            let p3 = ProcessId::new(3);
            let checks: Vec<(u64, u64)> =
                vec![(1, 10), (4, 40), (2, 99), (3, 30), (1, 11), (2, 20), (4, 40)];
            let batched = store.verify_many(p3, &checks).unwrap();
            let looped: Vec<bool> =
                checks.iter().map(|(k, v)| store.verify(p3, k, v).unwrap()).collect();
            assert_eq!(batched, looped, "{}", R::FAMILY);
            assert_eq!(batched, vec![true, true, false, true, false, true, true], "{}", R::FAMILY);
            system.shutdown();
        }
        drive::<VerifiableRegister<u64>>();
        drive::<AuthenticatedRegister<u64>>();
        drive::<StickyRegister<u64>>();
    }

    #[test]
    fn read_many_answers_duplicates_from_one_read() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, AuthenticatedRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig::default());
        store.write(7, 70).unwrap();
        let p2 = ProcessId::new(2);
        let got = store.read_many(p2, &[7, 8, 7, 7, 8]).unwrap();
        assert_eq!(got, vec![Some(70), Some(0), Some(70), Some(70), Some(0)]);
        system.shutdown();
    }

    #[test]
    fn shard_routing_is_stable_and_spreads_keys() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 8 });
        assert_eq!(store.shard_count(), 8);
        for key in 0u64..64 {
            assert_eq!(store.shard_of(&key), store.shard_of(&key), "stable routing");
            store.write(key, key).unwrap();
        }
        let loads = store.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 64);
        let used = loads.iter().filter(|l| **l > 0).count();
        assert!(used >= 4, "64 keys should spread over most of 8 shards, got {loads:?}");
        system.shutdown();
    }

    #[test]
    fn reads_instantiate_with_the_initial_value() {
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 42, StoreConfig::default());
        let p2 = ProcessId::new(2);
        assert_eq!(store.read(p2, &999).unwrap(), Some(42), "v0 of a never-written key");
        assert_eq!(store.len(), 1, "the read instantiated the key");
        system.shutdown();
    }

    #[test]
    fn help_engine_threads_stay_within_the_shard_budget_at_512_keys() {
        // The partitioning guarantee: a store's help-engine thread count is
        // its shard count, independent of how many keys are instantiated.
        // (Pre-partitioning, helping also cost only n threads, but every
        // engine round looped over all keys; now a key costs engine work
        // only while its shard has pending demand.)
        let system = System::builder(4).build();
        let store: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 8 });
        for key in 0..512u64 {
            store.write(key, key).unwrap();
        }
        assert_eq!(store.len(), 512);
        assert!(
            system.help_engine_threads() <= 8,
            "512 keys must share the 8 shard engines, got {}",
            system.help_engine_threads()
        );
        // The store stays serviceable: quorum verifies wake the right shard.
        let p2 = ProcessId::new(2);
        assert!(store.verify(p2, &17, &17).unwrap());
        assert!(!store.verify(p2, &17, &99).unwrap());
        system.shutdown();
    }

    #[test]
    fn sharded_helping_serves_all_families_with_byzantine_processes() {
        // Per-shard helping must preserve liveness with f processes silent:
        // every quorum decision below succeeds although the declared-
        // Byzantine pid contributes no help tasks to any shard.
        fn drive<R: SignatureRegister<u64>>() {
            let system = System::builder(4).byzantine(ProcessId::new(4)).build();
            let store: ByzStore<'_, u64, u64, R, _> =
                ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 4 });
            for key in 0..16u64 {
                store.write(key, key + 100).unwrap();
            }
            let p2 = ProcessId::new(2);
            for key in 0..16u64 {
                assert_eq!(store.read(p2, &key).unwrap(), Some(key + 100), "{}", R::FAMILY);
                assert!(store.verify(p2, &key, &(key + 100)).unwrap(), "{}", R::FAMILY);
            }
            system.shutdown();
        }
        drive::<VerifiableRegister<u64>>();
        drive::<AuthenticatedRegister<u64>>();
        drive::<StickyRegister<u64>>();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let system = System::builder(4).build();
        let _: ByzStore<'_, u64, u64, VerifiableRegister<u64>, _> =
            ByzStore::new(&system, LocalFactory, 0, StoreConfig { shards: 0 });
    }
}
